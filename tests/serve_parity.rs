//! Train/serve parity: the frozen, unquantized scorer must reproduce the
//! training-path forward pass **bit-for-bit** at every thread count, and
//! quantized artifacts are only accepted behind the AUC-delta gate.
//!
//! This is the contract that makes the serving tier trustworthy: an
//! artifact that scores even one ULP differently from the trainer would
//! make offline AUC numbers meaningless for the deployed model.

use optinter_core::net::DataDims;
use optinter_core::{Architecture, FactFn, Method, OptInterConfig, OptInterNet};
use optinter_data::{Batch, BatchIter, DatasetBundle, Profile};
use optinter_nn::StoreKind;
use optinter_serve::{freeze, freeze_gated, FreezeError, FrozenModel, FrozenScorer, Quant};

const THREADS: [usize; 3] = [1, 2, 4];

fn bundle() -> DatasetBundle {
    Profile::Tiny.bundle_with_rows(1_500, 23)
}

/// A short mixed-architecture training run (Memorize/Factorize/Naive all
/// present) so embeddings, cross table and MLP all hold trained values.
fn trained_net(bundle: &DatasetBundle, fact_fn: FactFn) -> OptInterNet {
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 11,
        num_threads: 1,
        fact_fn,
        ..OptInterConfig::test_small()
    };
    let mut net = OptInterNet::new(cfg, dims, arch);
    for epoch in 0..2u64 {
        for batch in BatchIter::new(&bundle.data, 0..1_000, 128, Some(epoch)) {
            let loss = net.train_batch(&batch);
            assert!(loss.is_finite(), "training loss {loss}");
        }
    }
    net
}

fn bits(probs: &[f32]) -> Vec<u32> {
    probs.iter().map(|p| p.to_bits()).collect()
}

/// Scores `rows` through the training path and through a frozen scorer at
/// each thread count, asserting bitwise equality batch by batch.
fn assert_bit_parity(net: &mut OptInterNet, bundle: &DatasetBundle, batch_size: usize) {
    let frozen = freeze(net, &bundle.data, Quant::F32);
    for &threads in &THREADS {
        let mut scorer = FrozenScorer::new(&frozen, threads).expect("frozen model loads");
        let mut iter = BatchIter::new(&bundle.data, 1_000..1_400, batch_size, None);
        let mut batch = Batch::empty();
        let mut probs = Vec::new();
        let mut batches = 0;
        while iter.next_into(&mut batch) {
            let expected = net.predict(&batch);
            scorer
                .score_into(&batch, &mut probs)
                .expect("valid batch scores");
            assert_eq!(
                bits(&expected),
                bits(&probs),
                "frozen scorer diverges from training forward \
                 (threads {threads}, batch_size {batch_size}, batch {batches})"
            );
            batches += 1;
        }
        assert!(batches > 0);
    }
}

#[test]
fn frozen_f32_scorer_is_bit_identical_to_training_forward() {
    let bundle = bundle();
    let mut net = trained_net(&bundle, FactFn::Generalized);
    // Large batches, micro-batch-sized batches, and single requests.
    assert_bit_parity(&mut net, &bundle, 400);
    assert_bit_parity(&mut net, &bundle, 32);
    assert_bit_parity(&mut net, &bundle, 1);
}

#[test]
fn parity_holds_for_hadamard_and_pointwise_add_factorization() {
    let bundle = bundle();
    for fact_fn in [FactFn::Hadamard, FactFn::PointwiseAdd] {
        let mut net = trained_net(&bundle, fact_fn);
        assert_bit_parity(&mut net, &bundle, 64);
    }
}

#[test]
fn f16_artifact_passes_the_default_auc_gate() {
    let bundle = bundle();
    let mut net = trained_net(&bundle, FactFn::Generalized);
    let (frozen, delta) = freeze_gated(&mut net, &bundle.data, 1_000..1_400, Quant::F16, 0.001)
        .expect("f16 quantization within the default AUC gate");
    assert_eq!(frozen.quant, Quant::F16);
    assert!((0.0..=0.001).contains(&delta), "reported delta {delta}");
    // The gated artifact still scores: finite probabilities in (0, 1).
    let mut scorer = FrozenScorer::new(&frozen, 2).expect("loads");
    let batch = BatchIter::new(&bundle.data, 1_000..1_100, 100, None)
        .next()
        .expect("batch");
    let mut probs = Vec::new();
    scorer
        .score_into(&batch, &mut probs)
        .expect("valid batch scores");
    assert_eq!(probs.len(), 100);
    assert!(probs.iter().all(|p| p.is_finite() && *p > 0.0 && *p < 1.0));
}

#[test]
fn int8_artifact_is_gated_by_auc_delta() {
    let bundle = bundle();
    let mut net = trained_net(&bundle, FactFn::Generalized);
    // A generous ceiling accepts the artifact and reports the true delta.
    let (frozen, delta) = freeze_gated(&mut net, &bundle.data, 1_000..1_400, Quant::Int8, 1.0)
        .expect("int8 freeze under a permissive gate");
    assert_eq!(frozen.quant, Quant::Int8);
    assert!(delta >= 0.0);
    // An impossible ceiling must reject with the typed gate error carrying
    // both AUCs — delta is never negative, so -1.0 always fires.
    match freeze_gated(&mut net, &bundle.data, 1_000..1_400, Quant::Int8, -1.0) {
        Err(FreezeError::AucGate {
            base_auc,
            frozen_auc,
            delta,
            max_delta,
        }) => {
            assert!((0.0..=1.0).contains(&base_auc));
            assert!((0.0..=1.0).contains(&frozen_auc));
            assert!(delta >= 0.0);
            assert_eq!(max_delta, -1.0);
        }
        other => panic!("expected AucGate rejection, got {other:?}"),
    }
}

#[test]
fn unquantized_gate_reports_zero_delta() {
    // Bit parity implies the F32 gate sees *exactly* equal AUCs.
    let bundle = bundle();
    let mut net = trained_net(&bundle, FactFn::Generalized);
    let (_, delta) = freeze_gated(&mut net, &bundle.data, 1_000..1_400, Quant::F32, 0.0)
        .expect("f32 freeze is lossless");
    assert_eq!(delta, 0.0);
}

/// A short training run over hashed embedding stores.
fn trained_hashed_net(
    bundle: &DatasetBundle,
    orig_store: StoreKind,
    cross_store: StoreKind,
) -> OptInterNet {
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 11,
        ..OptInterConfig::test_small()
    }
    .with_stores(orig_store, cross_store);
    let mut net = OptInterNet::new(cfg, dims, arch);
    for epoch in 0..2u64 {
        for batch in BatchIter::new(&bundle.data, 0..1_000, 128, Some(epoch)) {
            let loss = net.train_batch(&batch);
            assert!(loss.is_finite(), "training loss {loss}");
        }
    }
    net
}

#[test]
fn hashed_store_artifacts_round_trip_and_score_bit_identically() {
    // The serving side must recompose hashed rows exactly as training
    // did — through the serialized artifact, at every thread count.
    let bundle = bundle();
    for (orig_store, cross_store) in [
        (StoreKind::HashedQr { bucket: 13 }, StoreKind::Dense),
        (
            StoreKind::HashedDouble { rows: 37 },
            StoreKind::HashedQr { bucket: 7 },
        ),
    ] {
        let mut net = trained_hashed_net(&bundle, orig_store, cross_store);
        let frozen = freeze(&mut net, &bundle.data, Quant::F32);
        assert_eq!(frozen.orig_store.is_hashed(), true);
        assert!(
            frozen.row_map.is_empty(),
            "hashed orig store keeps no row_map"
        );
        let bytes = frozen.to_bytes();
        let reloaded = FrozenModel::from_bytes(&bytes).expect("hashed artifact loads");
        assert_eq!(bytes, reloaded.to_bytes(), "byte round trip");
        for &threads in &THREADS {
            let mut scorer = FrozenScorer::new(&reloaded, threads).expect("scorer loads");
            let mut iter = BatchIter::new(&bundle.data, 1_000..1_400, 64, None);
            let mut batch = Batch::empty();
            let mut probs = Vec::new();
            let mut batches = 0;
            while iter.next_into(&mut batch) {
                let expected = net.predict(&batch);
                scorer
                    .score_into(&batch, &mut probs)
                    .expect("in-vocab batch scores");
                assert_eq!(
                    bits(&expected),
                    bits(&probs),
                    "hashed frozen scorer diverges ({orig_store:?}/{cross_store:?}, threads {threads})"
                );
                batches += 1;
            }
            assert!(batches > 0);
        }
    }
}
