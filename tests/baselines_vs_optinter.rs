//! Integration tests spanning the model zoo and the OptInter core: relative
//! orderings that the paper's Table V shapes predict on planted data.

use optinter::core::{train_fixed, Architecture, Method, OptInterConfig};
use optinter::data::{PlantedKind, Profile};
use optinter::models::{build_model, run_model, BaselineConfig, ModelKind};

fn bundle() -> optinter::data::DatasetBundle {
    Profile::Tiny.bundle_with_rows(5_000, 123)
}

fn bcfg() -> BaselineConfig {
    BaselineConfig {
        seed: 3,
        epochs: 4,
        ..BaselineConfig::test_small()
    }
}

#[test]
fn every_baseline_beats_chance() {
    let b = bundle();
    let c = bcfg();
    for kind in ModelKind::all() {
        let mut model = build_model(kind, &c, &b.data);
        let report = run_model(model.as_mut(), &b, &c);
        assert!(
            report.auc > 0.55,
            "{} AUC {} does not beat chance",
            report.model,
            report.auc
        );
        assert!(report.log_loss.is_finite());
    }
}

#[test]
fn deep_memorized_beats_deep_naive_on_planted_data() {
    // OptInter-M sees strictly more information than the all-naive network
    // (same original embeddings plus the cross features); on data with
    // planted memorized pairs it must win.
    let b = bundle();
    let cfg = OptInterConfig {
        seed: 3,
        ..OptInterConfig::test_small()
    };
    let (_, mem) = train_fixed(
        &b,
        &cfg,
        Architecture::uniform(Method::Memorize, b.data.num_pairs),
    );
    let (_, naive) = train_fixed(
        &b,
        &cfg,
        Architecture::uniform(Method::Naive, b.data.num_pairs),
    );
    assert!(
        mem.auc > naive.auc,
        "OptInter-M ({}) should beat all-naive ({}) on memorization-heavy data",
        mem.auc,
        naive.auc
    );
}

#[test]
fn memorizing_only_planted_pairs_matches_full_memorization() {
    // The oracle architecture memorizes only the planted-memorized pairs;
    // it should be competitive with memorizing everything while using
    // fewer parameters (the paper's efficiency claim).
    let b = bundle();
    let cfg = OptInterConfig {
        seed: 3,
        ..OptInterConfig::test_small()
    };
    let (_, oracle) = train_fixed(&b, &cfg, Architecture::oracle(&b.planted));
    let (_, full) = train_fixed(
        &b,
        &cfg,
        Architecture::uniform(Method::Memorize, b.data.num_pairs),
    );
    assert!(oracle.num_params < full.num_params);
    assert!(
        oracle.auc > full.auc - 0.02,
        "oracle ({}) should be competitive with OptInter-M ({})",
        oracle.auc,
        full.auc
    );
}

#[test]
fn planted_memorized_pairs_have_highest_mutual_information() {
    // The Figure 5 mechanism: memorized planted pairs should carry more
    // label information than no-interaction pairs.
    let b = bundle();
    let train = b.split.train.clone();
    let labels: Vec<f32> = b.data.labels[train.clone()].to_vec();
    let mi_of = |p: usize| {
        let ids: Vec<u32> = train.clone().map(|n| b.data.row_cross(n)[p]).collect();
        optinter::metrics::mutual_information(&ids, &labels)
    };
    let mean_mi = |kind: PlantedKind| {
        let pairs: Vec<usize> = b
            .planted
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == kind)
            .map(|(p, _)| p)
            .collect();
        pairs.iter().map(|&p| mi_of(p)).sum::<f64>() / pairs.len().max(1) as f64
    };
    let mem = mean_mi(PlantedKind::Memorized);
    let none = mean_mi(PlantedKind::None);
    assert!(
        mem > none,
        "memorized pairs (MI {mem}) should be more informative than none pairs (MI {none})"
    );
}

#[test]
fn autofis_selection_is_subset_of_factorize_naive() {
    let b = bundle();
    let c = bcfg();
    let (report, counts) = optinter::models::autofis::run_autofis(&b, &c);
    assert_eq!(counts[0], 0, "AutoFIS must never memorize");
    assert_eq!(counts[1] + counts[2], b.data.num_pairs);
    assert!(report.auc > 0.55);
}
