//! Property-based tests (proptest) on cross-crate invariants.

use optinter::data::generator::SyntheticSpec;
use optinter::data::{DatasetBundle, PairIndexer, PlantedKind};
use optinter::metrics::{auc, log_loss, mutual_information};
use optinter::tensor::ops::{argmax, softmax_slice};
use optinter::tensor::{Matrix, Pool};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix for the parallel-vs-serial cases
/// (entries vary with the proptest-chosen salt).
fn salted_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let x = (r * 31 + c * 17) as f32 + salt as f32 * 0.13;
        (x * 0.7).sin() * 1.5
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(
        a in proptest::collection::vec(-2.0f32..2.0, 6),
        b in proptest::collection::vec(-2.0f32..2.0, 6),
        c in proptest::collection::vec(-2.0f32..2.0, 6),
    ) {
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(3, 2, b);
        let mc = Matrix::from_vec(2, 3, c);
        let left = ma.matmul(&mb).matmul(&mc);
        let right = ma.matmul(&mb.matmul(&mc));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn softmax_is_a_distribution(
        xs in proptest::collection::vec(-30.0f32..30.0, 1..10),
        tau in 0.01f32..10.0,
    ) {
        let p = softmax_slice(&xs, tau);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Softmax preserves the argmax.
        prop_assert_eq!(argmax(&xs), argmax(&p));
    }

    #[test]
    fn auc_is_invariant_to_positive_affine_transforms(
        scores in proptest::collection::vec(0.0f32..1.0, 10..50),
        scale in 0.1f32..10.0,
        shift in -5.0f32..5.0,
    ) {
        let labels: Vec<f32> = scores.iter().enumerate()
            .map(|(i, _)| ((i * 7) % 3 == 0) as u8 as f32).collect();
        let transformed: Vec<f32> = scores.iter().map(|&s| s * scale + shift).collect();
        let a = auc(&scores, &labels);
        let b = auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn auc_of_flipped_scores_is_complement(
        scores in proptest::collection::vec(0.0f32..1.0, 10..50),
    ) {
        let labels: Vec<f32> = scores.iter().enumerate()
            .map(|(i, _)| ((i * 5) % 2 == 0) as u8 as f32).collect();
        let flipped: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let a = auc(&scores, &labels);
        let b = auc(&flipped, &labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    #[test]
    fn log_loss_is_nonnegative(
        probs in proptest::collection::vec(0.0f32..1.0, 1..40),
    ) {
        let labels: Vec<f32> = probs.iter().enumerate()
            .map(|(i, _)| (i % 2) as f32).collect();
        prop_assert!(log_loss(&probs, &labels) >= 0.0);
    }

    #[test]
    fn mutual_information_bounded_by_ln2(
        ids in proptest::collection::vec(0u32..8, 20..100),
    ) {
        let labels: Vec<f32> = ids.iter().enumerate()
            .map(|(i, _)| ((i * 11) % 3 == 0) as u8 as f32).collect();
        let mi = mutual_information(&ids, &labels);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= std::f64::consts::LN_2 + 1e-9);
    }

    #[test]
    fn pair_indexer_roundtrip(m in 2usize..12) {
        let idx = PairIndexer::new(m);
        for p in 0..idx.num_pairs() {
            let (i, j) = idx.pair_at(p);
            prop_assert!(i < j && j < m);
            prop_assert_eq!(idx.index_of(i, j), p);
        }
    }

    #[test]
    fn pooled_matmul_equals_serial_exactly(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        threads in 1usize..8,
        salt in 0u64..1000,
    ) {
        // The determinism guarantee is exact: for any shape and any thread
        // count, the data-parallel kernel must be bit-identical to the
        // serial one (not just close).
        let a = salted_matrix(m, k, salt);
        let b = salted_matrix(k, n, salt.wrapping_add(1));
        let pool = Pool::new(threads);
        let serial = a.matmul(&b);
        let pooled = a.matmul_pooled(&b, &pool);
        prop_assert_eq!(serial.shape(), pooled.shape());
        for (s, p) in serial.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(s.to_bits(), p.to_bits(), "{} vs {}", s, p);
        }
    }

    #[test]
    fn pooled_matmul_at_b_equals_serial_exactly(
        rows in 1usize..48,
        m in 1usize..32,
        n in 1usize..32,
        threads in 1usize..8,
        salt in 0u64..1000,
    ) {
        let a = salted_matrix(rows, m, salt);
        let g = salted_matrix(rows, n, salt.wrapping_add(2));
        let pool = Pool::new(threads);
        let serial = a.matmul_at_b(&g);
        let pooled = a.matmul_at_b_pooled(&g, &pool);
        prop_assert_eq!(serial.shape(), pooled.shape());
        for (s, p) in serial.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(s.to_bits(), p.to_bits(), "{} vs {}", s, p);
        }
    }

    #[test]
    fn generated_labels_respect_target_rate(target in 0.05f64..0.5) {
        let spec = SyntheticSpec {
            name: "prop".into(),
            seed: 5,
            cardinalities: vec![8, 8, 8],
            zipf_exponent: 0.8,
            planted: PlantedKind::assign(1, 1, 1, 3, 5),
            field_weight_std: 0.3,
            memorized_std: 0.8,
            factorized_std: 0.8,
            latent_dim: 2,
            nonlinear_std: 0.0,
            noise_std: 0.1,
            target_pos_ratio: target,
        };
        let bundle = DatasetBundle::from_spec(spec, 4000, 1, 9);
        let ratio = bundle.data.pos_ratio(0..bundle.len());
        prop_assert!((ratio - target).abs() < 0.08,
            "target {target}, got {ratio}");
    }
}
