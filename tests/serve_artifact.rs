//! Artifact robustness: freeze → serialize → load → serialize must be
//! byte-identical, and *any* corruption — truncation, a single flipped
//! bit, a wrong version — must come back as a typed [`ArtifactError`],
//! never a panic. A serving tier loads artifacts it did not write; the
//! loader's error surface is part of the format.

use optinter_core::net::DataDims;
use optinter_core::{Architecture, Method, OptInterConfig, OptInterNet};
use optinter_data::{DatasetBundle, Profile};
use optinter_nn::StoreKind;
use optinter_serve::{freeze, ArtifactError, FrozenModel, Quant, StoreDesc};

fn frozen_with_stores(quant: Quant, orig: StoreKind, cross: StoreKind) -> FrozenModel {
    let bundle: DatasetBundle = Profile::Tiny.bundle_with_rows(300, 7);
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 4,
        ..OptInterConfig::test_small()
    }
    .with_stores(orig, cross);
    let mut net = OptInterNet::new(cfg, dims, arch);
    freeze(&mut net, &bundle.data, quant)
}

fn frozen(quant: Quant) -> FrozenModel {
    frozen_with_stores(quant, StoreKind::Dense, StoreKind::Dense)
}

#[test]
fn freeze_load_freeze_is_byte_identical_for_every_quantization() {
    for quant in [Quant::F32, Quant::F16, Quant::Int8] {
        let model = frozen(quant);
        let bytes = model.to_bytes();
        let reloaded = FrozenModel::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{quant:?}: fresh artifact failed to load: {e}"));
        assert_eq!(
            bytes,
            reloaded.to_bytes(),
            "{quant:?}: re-serialized artifact differs from the original bytes"
        );
    }
}

#[test]
fn hashed_store_artifacts_round_trip_and_reject_corruption() {
    let model = frozen_with_stores(
        Quant::F16,
        StoreKind::HashedQr { bucket: 9 },
        StoreKind::HashedDouble { rows: 23 },
    );
    assert!(matches!(
        model.orig_store,
        StoreDesc::HashedQr { bucket: 9, .. }
    ));
    assert!(matches!(
        model.cross_store,
        StoreDesc::HashedDouble { rows: 23, .. }
    ));
    assert!(model.row_map.is_empty());
    let bytes = model.to_bytes();
    let reloaded = FrozenModel::from_bytes(&bytes).expect("hashed artifact loads");
    assert_eq!(reloaded.orig_store, model.orig_store);
    assert_eq!(reloaded.cross_store, model.cross_store);
    assert_eq!(bytes, reloaded.to_bytes());

    // The store descriptors sit inside the checksummed payload, so the
    // truncation and bit-flip sweeps below cover them too; spot-check a
    // targeted flip of each payload byte region still errors.
    let step = (bytes.len() / 211).max(1);
    for i in (20..bytes.len()).step_by(step) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x04;
        assert!(
            FrozenModel::from_bytes(&corrupt).is_err(),
            "flip at byte {i} went undetected"
        );
    }
}

#[test]
fn file_round_trip_preserves_bytes() {
    let dir = std::env::temp_dir().join("optinter-serve-artifact-test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("model.osa");
    let model = frozen(Quant::F16);
    model.write_file(&path).expect("write artifact");
    let reloaded = FrozenModel::read_file(&path).expect("read artifact");
    assert_eq!(model.to_bytes(), reloaded.to_bytes());
    std::fs::remove_file(&path).ok();

    match FrozenModel::read_file(&dir.join("does-not-exist.osa")) {
        Err(ArtifactError::Io(_)) => {}
        other => panic!("missing file must be an Io error, got {other:?}"),
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = frozen(Quant::Int8).to_bytes();
    // Every prefix around the header plus a coarse sweep of the payload.
    let mut lengths: Vec<usize> = (0..64.min(bytes.len())).collect();
    let step = (bytes.len() / 97).max(1);
    lengths.extend((64..bytes.len()).step_by(step));
    for len in lengths {
        match FrozenModel::from_bytes(&bytes[..len]) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} of {} bytes decoded", bytes.len()),
        }
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let bytes = frozen(Quant::F32).to_bytes();
    for (i, _) in bytes.iter().enumerate() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1 << (i % 8);
        match FrozenModel::from_bytes(&corrupt) {
            Err(_) => {}
            Ok(_) => panic!("bit flip at byte {i} went undetected"),
        }
    }
}

#[test]
fn corruption_errors_are_classified() {
    let bytes = frozen(Quant::F32).to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        FrozenModel::from_bytes(&bad_magic),
        Err(ArtifactError::BadMagic)
    ));

    // Version lives at bytes 8..12 (little-endian u32).
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        FrozenModel::from_bytes(&future),
        Err(ArtifactError::UnsupportedVersion(99))
    ));

    // A payload flip passes magic + version and dies on the checksum.
    let mut payload = bytes.clone();
    let last = payload.len() - 1;
    payload[last] ^= 0x10;
    assert!(matches!(
        FrozenModel::from_bytes(&payload),
        Err(ArtifactError::Corrupt(_))
    ));

    assert!(matches!(
        FrozenModel::from_bytes(&[]),
        Err(ArtifactError::Truncated(_))
    ));
}
