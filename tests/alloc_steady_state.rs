//! Runtime cross-check of the `hot-path-alloc` lint rule: a counting
//! global allocator proves that steady-state training performs **zero**
//! heap allocations per batch — for the fixed-architecture OptInterNet,
//! the search-stage Supernet, and the LR baseline, with the prefetching
//! pipeline on and off.
//!
//! The static rule (`optinter-lint`, DESIGN.md §10) can only flag
//! allocation *tokens* it can see; this test closes the loop by counting
//! what the allocator actually does. Together they make the zero-alloc
//! claim in `crates/data/src/prefetch.rs` and `optinter_nn::Workspace`
//! enforceable instead of aspirational.
//!
//! Everything runs inside a single `#[test]` so no concurrent test can
//! pollute the global counter.

use optinter_core::net::DataDims;
use optinter_core::{Architecture, FactFn, Method, OptInterConfig, OptInterNet, Supernet};
use optinter_data::{Batch, BatchStream, DatasetBundle, Profile};
use optinter_models::{BaselineConfig, CtrModel, Lr};
use optinter_nn::{EmbedOptimizerMode, StoreKind};
use optinter_serve::{freeze, serve, FrozenScorer, ManualClock, MicroBatchOptions, Quant};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of heap acquisitions (alloc + realloc) since process start.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A pass-through allocator that counts every heap acquisition.
/// Deallocations are free to happen (dropping moves no new memory), so
/// only `alloc` and `realloc` bump the counter. `alloc_zeroed` falls back
/// to the default impl, which routes through `alloc`.
struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; the counter update has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: layout is forwarded unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: ptr/layout come from a matching `alloc` and are forwarded
    // unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: ptr/layout/new_size are forwarded unchanged to
    // `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ROWS: usize = 1_920;
const BATCH: usize = 128; // divides ROWS: every batch has the same size
const NUM_BATCHES: usize = ROWS / BATCH;

/// Batches to exclude from the zero-alloc assertion at the start of the
/// measurement epoch. With prefetching the producer's `NUM_BUFFERS` (4)
/// recycled buffers plus the `QUEUE_SLOTS` (2) in-flight batches grow to
/// full size while the consumer works through the first few batches;
/// inline, a single recycled buffer reaches full size immediately.
const WARMUP_PREFETCH: usize = 6;
const WARMUP_INLINE: usize = 2;

fn bundle() -> DatasetBundle {
    Profile::Tiny.bundle_with_rows(ROWS, 29)
}

/// Runs one warm-up epoch (grows every scratch buffer to its working-set
/// maximum), then a measurement epoch asserting that each post-warm-up
/// batch triggered zero heap acquisitions — anywhere in the process,
/// producer thread included.
fn assert_zero_alloc_epoch(
    name: &str,
    bundle: &DatasetBundle,
    prefetch: bool,
    train: &mut dyn FnMut(&Batch),
) {
    let warmup = if prefetch {
        WARMUP_PREFETCH
    } else {
        WARMUP_INLINE
    };
    BatchStream::new(&bundle.data, 0..ROWS, BATCH, Some(0))
        .prefetch(prefetch)
        .for_each(|b| train(b));

    let mut marks: Vec<u64> = Vec::with_capacity(NUM_BATCHES + 1);
    BatchStream::new(&bundle.data, 0..ROWS, BATCH, Some(1))
        .prefetch(prefetch)
        .for_each(|b| {
            marks.push(ALLOCS.load(Ordering::Relaxed));
            train(b);
        });
    marks.push(ALLOCS.load(Ordering::Relaxed));

    assert_eq!(
        marks.len(),
        NUM_BATCHES + 1,
        "{name}: unexpected batch count"
    );
    for (k, pair) in marks.windows(2).enumerate().skip(warmup) {
        assert_eq!(
            pair[1] - pair[0],
            0,
            "{name} (prefetch={prefetch}): batch {k} of the measurement epoch \
             performed {} heap allocation(s); steady-state training must not \
             touch the heap",
            pair[1] - pair[0],
        );
    }
}

#[test]
fn steady_state_training_performs_zero_heap_allocations() {
    // Sanity: the counter actually observes allocations.
    let before = ALLOCS.load(Ordering::Relaxed);
    let probe: Vec<u8> = Vec::with_capacity(64);
    std::hint::black_box(&probe);
    assert!(
        ALLOCS.load(Ordering::Relaxed) > before,
        "counting allocator is not installed"
    );
    drop(probe);

    let bundle = bundle();
    let dims = DataDims::of(&bundle.data);

    for prefetch in [false, true] {
        // Fixed-architecture OptInterNet with a mix of all three methods,
        // on the 2-thread pool so the worker hand-off path is covered.
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        let cfg = OptInterConfig {
            seed: 7,
            num_threads: 2,
            fact_fn: FactFn::Generalized,
            ..OptInterConfig::test_small()
        };
        let mut net = OptInterNet::new(cfg, dims.clone(), arch);
        let mut loss_sum = 0.0f32;
        assert_zero_alloc_epoch("OptInterNet", &bundle, prefetch, &mut |b| {
            loss_sum += net.train_batch(b);
        });
        assert!(loss_sum.is_finite(), "OptInterNet loss diverged");

        // Hashed-store OptInterNet with the lazy embedding optimizer: the
        // compositional lookup/compose scratch, the sub-table gradient
        // arenas and the lazy catch-up bookkeeping must all reach their
        // working-set maximum during warm-up, exactly like the dense path.
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        let cfg = OptInterConfig {
            seed: 7,
            num_threads: 2,
            fact_fn: FactFn::Generalized,
            ..OptInterConfig::test_small()
        }
        .with_stores(
            StoreKind::HashedQr { bucket: 13 },
            StoreKind::HashedDouble { rows: 37 },
        )
        .with_embed_opt(EmbedOptimizerMode::LazyCatchUp);
        let mut net = OptInterNet::new(cfg, dims.clone(), arch);
        let mut loss_sum = 0.0f32;
        assert_zero_alloc_epoch("OptInterNet(hashed,lazy)", &bundle, prefetch, &mut |b| {
            loss_sum += net.train_batch(b);
        });
        assert!(loss_sum.is_finite(), "hashed OptInterNet loss diverged");

        // Search-stage Supernet: Gumbel draws, relaxed mixing, arch grads.
        let cfg = OptInterConfig {
            seed: 11,
            num_threads: 2,
            fact_fn: FactFn::Generalized,
            ..OptInterConfig::test_small()
        };
        let mut supernet = Supernet::new(cfg, dims.clone());
        let mut loss_sum = 0.0f32;
        assert_zero_alloc_epoch("Supernet", &bundle, prefetch, &mut |b| {
            loss_sum += supernet.train_batch(b, 0.7);
        });
        assert!(loss_sum.is_finite(), "Supernet loss diverged");

        // A paper baseline: logistic regression through the CtrModel trait.
        let cfg = BaselineConfig::test_small();
        let mut lr = Lr::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let mut loss_sum = 0.0f32;
        assert_zero_alloc_epoch("LR", &bundle, prefetch, &mut |b| {
            loss_sum += lr.train_batch(b);
        });
        assert!(loss_sum.is_finite(), "LR loss diverged");
    }

    // ------------------------------------------------------------------
    // Serving path. Same allocator, same bar: after warm-up, neither the
    // single-request scorer nor the micro-batching front door may touch
    // the heap per request.

    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 13,
        num_threads: 2,
        fact_fn: FactFn::Generalized,
        ..OptInterConfig::test_small()
    };
    let mut net = OptInterNet::new(cfg, dims.clone(), arch);
    let frozen = freeze(&mut net, &bundle.data, Quant::F32);
    let mut scorer = FrozenScorer::new(&frozen, 2).expect("frozen model loads");

    // Single-request scorer: warm the scratch buffers, then count.
    let mut batch = Batch::empty();
    let mut probs = Vec::new();
    for row in 0..8 {
        batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
        batch.push_row(bundle.data.row_fields(row), bundle.data.row_cross(row), 0.0);
        scorer
            .score_into(&batch, &mut probs)
            .expect("valid batch scores");
    }
    for row in 0..64 {
        batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
        batch.push_row(bundle.data.row_fields(row), bundle.data.row_cross(row), 0.0);
        let before = ALLOCS.load(Ordering::Relaxed);
        scorer
            .score_into(&batch, &mut probs)
            .expect("valid batch scores");
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "single-request scorer: request {row} performed {} heap \
             allocation(s); serving must not touch the heap",
            after - before
        );
    }

    // Mutation control: the counter must catch an allocation on this very
    // path — scoring into a *fresh* (capacity-0) output vector has to
    // grow it on the heap. If this stops tripping, the assertions above
    // are vacuous.
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut fresh_probs = Vec::new();
    scorer
        .score_into(&batch, &mut fresh_probs)
        .expect("valid batch scores");
    assert!(
        ALLOCS.load(Ordering::Relaxed) > before,
        "negative control failed: fresh output vector did not allocate"
    );
    drop(fresh_probs);

    // Micro-batching front door: ManualClock never advances, so batches
    // flush purely on max_batch; request buffers, the pending queue and
    // the gather batch all reach steady-state size within the first few
    // full buffer cycles.
    const REQUESTS: usize = 512;
    const SERVE_WARMUP: usize = 64;
    let clock = ManualClock::new();
    let opts = MicroBatchOptions {
        queue_slots: 8,
        max_batch: 8,
        deadline_ns: u64::MAX / 2,
    };
    let mut serve_marks: Vec<u64> = Vec::with_capacity(REQUESTS + 1);
    serve(
        &mut scorer,
        &clock,
        &opts,
        |mut submitter| {
            for k in 0..REQUESTS {
                let row = k % ROWS;
                assert!(submitter.submit(
                    k as u64,
                    bundle.data.row_fields(row),
                    bundle.data.row_cross(row),
                ));
            }
        },
        |resp| {
            assert!(resp.prob.is_finite());
            serve_marks.push(ALLOCS.load(Ordering::Relaxed));
        },
    );
    assert_eq!(serve_marks.len(), REQUESTS, "micro-batcher lost responses");
    for (k, pair) in serve_marks.windows(2).enumerate().skip(SERVE_WARMUP) {
        assert_eq!(
            pair[1] - pair[0],
            0,
            "micro-batch front door: response {k} performed {} heap \
             allocation(s) at steady state",
            pair[1] - pair[0]
        );
    }
}
