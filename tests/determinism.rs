//! Thread-count determinism: the data-parallel execution layer must be
//! bit-identical to the serial path for any worker count. These tests train
//! the search-stage supernet and a fixed-architecture network with 1, 2 and
//! 4 threads from the same seed and compare predicted probabilities,
//! architecture probabilities and the final AUC **bitwise** — not within a
//! tolerance. See `optinter_tensor::pool` and DESIGN.md for why this holds.

use optinter_core::net::DataDims;
use optinter_core::{
    search_architecture, Architecture, FactFn, Method, OptInterConfig, OptInterNet, SearchStrategy,
    Supernet,
};
use optinter_data::{Batch, BatchIter, BatchStream, DatasetBundle, Profile};
use optinter_nn::{EmbedOptimizerMode, StoreKind};
use optinter_tensor::kernels::{self, Backend};
use std::sync::Mutex;

const THREADS: [usize; 3] = [1, 2, 4];

/// Every test in this binary takes this lock: the backend-parameterized
/// test below mutates the process-wide kernel backend with
/// `kernels::set_active`, and the bitwise comparisons in all the other
/// tests assume the backend stays fixed while they run.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn backend_lock() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn bundle() -> DatasetBundle {
    Profile::Tiny.bundle_with_rows(1_500, 23)
}

fn test_batch(bundle: &DatasetBundle) -> Batch {
    BatchIter::new(&bundle.data, 1_000..1_400, 400, None)
        .next()
        .expect("test batch")
}

fn bits(probs: &[f32]) -> Vec<u32> {
    probs.iter().map(|p| p.to_bits()).collect()
}

/// Trains the supernet and returns (predicted probs, alpha probs, AUC).
fn train_supernet(bundle: &DatasetBundle, threads: usize) -> (Vec<f32>, Vec<[f32; 3]>, f64) {
    let dims = DataDims::of(&bundle.data);
    let cfg = OptInterConfig {
        seed: 3,
        num_threads: threads,
        fact_fn: FactFn::Generalized,
        ..OptInterConfig::test_small()
    };
    let mut net = Supernet::new(cfg, dims);
    for epoch in 0..2u64 {
        for batch in BatchIter::new(&bundle.data, 0..1_000, 128, Some(epoch)) {
            let loss = net.train_batch(&batch, 0.7);
            assert!(loss.is_finite(), "threads={threads}: loss {loss}");
        }
    }
    let test = test_batch(bundle);
    let probs = net.predict(&test, 0.7);
    let auc = optinter_metrics::auc(&probs, &test.labels);
    (probs, net.arch_probs(), auc)
}

#[test]
fn supernet_training_is_bit_identical_across_thread_counts() {
    let _guard = backend_lock();
    let bundle = bundle();
    let (ref_probs, ref_alpha, ref_auc) = train_supernet(&bundle, THREADS[0]);
    assert!(ref_auc > 0.5, "reference run did not learn: AUC {ref_auc}");
    for &threads in &THREADS[1..] {
        let (probs, alpha, auc) = train_supernet(&bundle, threads);
        assert_eq!(
            bits(&ref_probs),
            bits(&probs),
            "predicted logits diverge at {threads} threads"
        );
        for (p, (a, b)) in ref_alpha.iter().zip(alpha.iter()).enumerate() {
            assert_eq!(
                bits(a),
                bits(b),
                "alpha probabilities diverge at pair {p}, {threads} threads"
            );
        }
        assert_eq!(
            ref_auc.to_bits(),
            auc.to_bits(),
            "final AUC diverges at {threads} threads"
        );
    }
}

/// Trains a fixed mixed architecture and returns predicted probabilities.
fn train_fixed_arch(bundle: &DatasetBundle, threads: usize) -> Vec<f32> {
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 5,
        num_threads: threads,
        fact_fn: FactFn::Generalized,
        ..OptInterConfig::test_small()
    };
    let mut net = OptInterNet::new(cfg, dims, arch);
    for epoch in 0..2u64 {
        for batch in BatchIter::new(&bundle.data, 0..1_000, 128, Some(epoch)) {
            let loss = net.train_batch(&batch);
            assert!(loss.is_finite(), "threads={threads}: loss {loss}");
        }
    }
    net.predict(&test_batch(bundle))
}

#[test]
fn fixed_architecture_training_is_bit_identical_across_thread_counts() {
    let _guard = backend_lock();
    let bundle = bundle();
    let reference = train_fixed_arch(&bundle, THREADS[0]);
    for &threads in &THREADS[1..] {
        let probs = train_fixed_arch(&bundle, threads);
        assert_eq!(
            bits(&reference),
            bits(&probs),
            "fixed-arch predictions diverge at {threads} threads"
        );
    }
}

/// Trains a fixed mixed architecture over configurable embedding stores
/// and optimizer mode; returns (per-batch loss bits, predicted probs).
fn train_fixed_stores(
    bundle: &DatasetBundle,
    threads: usize,
    orig_store: StoreKind,
    cross_store: StoreKind,
    embed_opt: EmbedOptimizerMode,
) -> (Vec<u32>, Vec<f32>) {
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 5,
        num_threads: threads,
        fact_fn: FactFn::Generalized,
        ..OptInterConfig::test_small()
    }
    .with_stores(orig_store, cross_store)
    .with_embed_opt(embed_opt);
    let mut net = OptInterNet::new(cfg, dims, arch);
    let mut losses = Vec::new();
    for epoch in 0..2u64 {
        for batch in BatchIter::new(&bundle.data, 0..1_000, 128, Some(epoch)) {
            let loss = net.train_batch(&batch);
            assert!(loss.is_finite(), "threads={threads}: loss {loss}");
            losses.push(loss.to_bits());
        }
    }
    (losses, net.predict(&test_batch(bundle)))
}

#[test]
fn hashed_stores_and_lazy_adam_are_bit_identical_across_thread_counts() {
    let _guard = backend_lock();
    let bundle = bundle();
    // Every store kind × optimizer-mode combination the config exposes
    // must satisfy the same owner-computes contract as the dense path:
    // losses and predictions bitwise equal at 1, 2 and 4 threads.
    let cases = [
        (
            StoreKind::HashedQr { bucket: 13 },
            StoreKind::HashedDouble { rows: 31 },
            EmbedOptimizerMode::Sparse,
        ),
        (
            StoreKind::HashedQr { bucket: 13 },
            StoreKind::Dense,
            EmbedOptimizerMode::LazyCatchUp,
        ),
        (
            StoreKind::Dense,
            StoreKind::Dense,
            EmbedOptimizerMode::LazyCatchUp,
        ),
    ];
    for (orig, cross, mode) in cases {
        let (ref_losses, ref_probs) = train_fixed_stores(&bundle, THREADS[0], orig, cross, mode);
        assert!(!ref_losses.is_empty());
        for &threads in &THREADS[1..] {
            let (losses, probs) = train_fixed_stores(&bundle, threads, orig, cross, mode);
            assert_eq!(
                ref_losses, losses,
                "per-batch losses diverge at {threads} threads ({orig:?}/{cross:?}, {mode:?})"
            );
            assert_eq!(
                bits(&ref_probs),
                bits(&probs),
                "predictions diverge at {threads} threads ({orig:?}/{cross:?}, {mode:?})"
            );
        }
    }
}

/// Trains a fixed mixed architecture through `BatchStream` with prefetching
/// toggled and returns (per-batch loss bits, predicted probabilities).
fn train_fixed_stream(
    bundle: &DatasetBundle,
    threads: usize,
    prefetch: bool,
) -> (Vec<u32>, Vec<f32>) {
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 5,
        num_threads: threads,
        fact_fn: FactFn::Generalized,
        ..OptInterConfig::test_small()
    };
    let mut net = OptInterNet::new(cfg, dims, arch);
    let mut losses = Vec::new();
    for epoch in 0..2u64 {
        BatchStream::new(&bundle.data, 0..1_000, 128, Some(epoch))
            .prefetch(prefetch)
            .for_each(|batch| {
                losses.push(net.train_batch(batch).to_bits());
            });
    }
    (losses, net.predict(&test_batch(bundle)))
}

#[test]
fn fixed_arch_prefetch_toggle_is_bit_identical_across_thread_counts() {
    let _guard = backend_lock();
    let bundle = bundle();
    for &threads in &THREADS {
        let (loss_off, probs_off) = train_fixed_stream(&bundle, threads, false);
        let (loss_on, probs_on) = train_fixed_stream(&bundle, threads, true);
        assert!(!loss_off.is_empty());
        assert_eq!(
            loss_off, loss_on,
            "per-batch losses diverge with prefetching at {threads} threads"
        );
        assert_eq!(
            bits(&probs_off),
            bits(&probs_on),
            "predictions diverge with prefetching at {threads} threads"
        );
    }
}

/// Trains the supernet through `BatchStream` with prefetching toggled and
/// returns (per-batch loss bits, predicted probabilities, alpha probs).
fn train_supernet_stream(
    bundle: &DatasetBundle,
    threads: usize,
    prefetch: bool,
) -> (Vec<u32>, Vec<f32>, Vec<[f32; 3]>) {
    let dims = DataDims::of(&bundle.data);
    let cfg = OptInterConfig {
        seed: 3,
        num_threads: threads,
        fact_fn: FactFn::Generalized,
        ..OptInterConfig::test_small()
    };
    let mut net = Supernet::new(cfg, dims);
    let mut losses = Vec::new();
    for epoch in 0..2u64 {
        BatchStream::new(&bundle.data, 0..1_000, 128, Some(epoch))
            .prefetch(prefetch)
            .for_each(|batch| {
                losses.push(net.train_batch(batch, 0.7).to_bits());
            });
    }
    let probs = net.predict(&test_batch(bundle), 0.7);
    let alpha = net.arch_probs();
    (losses, probs, alpha)
}

#[test]
fn supernet_prefetch_toggle_is_bit_identical_across_thread_counts() {
    let _guard = backend_lock();
    let bundle = bundle();
    for &threads in &THREADS {
        let (loss_off, probs_off, alpha_off) = train_supernet_stream(&bundle, threads, false);
        let (loss_on, probs_on, alpha_on) = train_supernet_stream(&bundle, threads, true);
        assert_eq!(
            loss_off, loss_on,
            "supernet per-batch losses diverge with prefetching at {threads} threads"
        );
        assert_eq!(
            bits(&probs_off),
            bits(&probs_on),
            "supernet predictions diverge with prefetching at {threads} threads"
        );
        for (p, (a, b)) in alpha_off.iter().zip(alpha_on.iter()).enumerate() {
            assert_eq!(
                bits(a),
                bits(b),
                "alpha probabilities diverge with prefetching at pair {p}, {threads} threads"
            );
        }
    }
}

/// The full search pipelines must also be unaffected by the prefetch flag:
/// the selected architecture and final loss are compared bitwise through
/// the public `search_architecture` entry point.
#[test]
fn search_is_bit_identical_with_and_without_prefetching() {
    let _guard = backend_lock();
    let bundle = bundle();
    for strategy in [SearchStrategy::Joint, SearchStrategy::BiLevel] {
        let cfg = OptInterConfig {
            seed: 11,
            search_epochs: 1,
            ..OptInterConfig::test_small()
        };
        let on = search_architecture(&bundle, &cfg.with_prefetch(true), strategy);
        let off = search_architecture(&bundle, &cfg.with_prefetch(false), strategy);
        assert_eq!(
            on.architecture, off.architecture,
            "{strategy:?}: selected architecture diverges with prefetching"
        );
        assert_eq!(
            on.final_loss.to_bits(),
            off.final_loss.to_bits(),
            "{strategy:?}: final loss diverges with prefetching"
        );
    }
}

/// Per-backend thread-count determinism: for each kernel backend the host
/// supports, 1/2/4-thread training runs must be bitwise identical — the
/// owner-computes contract holds *per backend*. Results differ *across*
/// backends (the AVX backend fuses multiply-add pairs), which is exactly
/// why the comparison is grouped by backend here.
#[test]
fn training_is_bit_identical_across_thread_counts_per_backend() {
    let _guard = backend_lock();
    let bundle = bundle();
    let mut backends = vec![Backend::Scalar];
    if Backend::AvxFma.is_supported() {
        backends.push(Backend::AvxFma);
    }
    let prev = kernels::set_active(backends[0]);
    for &backend in &backends {
        kernels::set_active(backend);
        let (ref_probs, ref_alpha, ref_auc) = train_supernet(&bundle, THREADS[0]);
        assert!(
            ref_auc > 0.5,
            "[{}] reference run did not learn: AUC {ref_auc}",
            backend.name()
        );
        for &threads in &THREADS[1..] {
            let (probs, alpha, auc) = train_supernet(&bundle, threads);
            assert_eq!(
                bits(&ref_probs),
                bits(&probs),
                "[{}] supernet logits diverge at {threads} threads",
                backend.name()
            );
            for (p, (a, b)) in ref_alpha.iter().zip(alpha.iter()).enumerate() {
                assert_eq!(
                    bits(a),
                    bits(b),
                    "[{}] alpha probabilities diverge at pair {p}, {threads} threads",
                    backend.name()
                );
            }
            assert_eq!(
                ref_auc.to_bits(),
                auc.to_bits(),
                "[{}] final AUC diverges at {threads} threads",
                backend.name()
            );
        }
        let fixed_ref = train_fixed_arch(&bundle, THREADS[0]);
        for &threads in &THREADS[1..] {
            let probs = train_fixed_arch(&bundle, threads);
            assert_eq!(
                bits(&fixed_ref),
                bits(&probs),
                "[{}] fixed-arch predictions diverge at {threads} threads",
                backend.name()
            );
        }
    }
    kernels::set_active(prev);
}
