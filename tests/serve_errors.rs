//! Typed error surface of the serving tier: a scorer fed ids it did not
//! mint must reject them with a [`ScoreError`] — never panic — for both
//! dense and hashed embedding stores, and the micro-batching front door
//! must keep serving valid requests around a malformed one.

use optinter_core::net::DataDims;
use optinter_core::{Architecture, Method, OptInterConfig, OptInterNet};
use optinter_data::{Batch, DatasetBundle, Profile};
use optinter_nn::StoreKind;
use optinter_serve::{
    freeze, serve, FrozenScorer, MicroBatchOptions, MonotonicClock, Quant, ScoreError,
};

fn bundle() -> DatasetBundle {
    Profile::Tiny.bundle_with_rows(600, 5)
}

fn scorer_for(
    bundle: &DatasetBundle,
    orig_store: StoreKind,
    cross_store: StoreKind,
) -> FrozenScorer {
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 3,
        ..OptInterConfig::test_small()
    }
    .with_stores(orig_store, cross_store);
    let mut net = OptInterNet::new(cfg, dims, arch);
    let frozen = freeze(&mut net, &bundle.data, Quant::F32);
    FrozenScorer::new(&frozen, 1).expect("frozen model loads")
}

fn stores() -> [(StoreKind, StoreKind); 2] {
    [
        (StoreKind::Dense, StoreKind::Dense),
        (
            StoreKind::HashedQr { bucket: 11 },
            StoreKind::HashedDouble { rows: 17 },
        ),
    ]
}

#[test]
fn out_of_range_field_id_is_a_typed_error_not_a_panic() {
    let bundle = bundle();
    for (orig, cross) in stores() {
        let mut scorer = scorer_for(&bundle, orig, cross);
        let vocab = scorer.dims().orig_vocab;
        let mut fields = bundle.data.row_fields(0).to_vec();
        fields[2] = vocab + 41; // beyond the frozen key space
        let mut batch = Batch::empty();
        batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
        batch.push_row(&fields, bundle.data.row_cross(0), 0.0);
        let mut probs = vec![0.5];
        match scorer.score_into(&batch, &mut probs) {
            Err(ScoreError::FieldIdOutOfRange {
                row,
                field,
                id,
                key_space,
            }) => {
                assert_eq!((row, field), (0, 2));
                assert_eq!(id, vocab + 41);
                assert_eq!(key_space, vocab);
            }
            other => panic!("expected FieldIdOutOfRange ({orig:?}), got {other:?}"),
        }
        assert!(probs.is_empty(), "rejected batch must leave out cleared");
        // The scorer survives the rejection and still scores valid rows.
        batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
        batch.push_row(bundle.data.row_fields(0), bundle.data.row_cross(0), 0.0);
        scorer
            .score_into(&batch, &mut probs)
            .expect("valid batch scores after a rejection");
        assert_eq!(probs.len(), 1);
        assert!(probs[0].is_finite());
    }
}

#[test]
fn cross_id_outside_its_pair_block_is_a_typed_error() {
    let bundle = bundle();
    for (orig, cross_kind) in stores() {
        let mut scorer = scorer_for(&bundle, orig, cross_kind);
        // Find a memorized pair (arch cycles M/F/N, so pair 0 memorizes).
        let dims = scorer.dims().clone();
        let mut cross = bundle.data.row_cross(0).to_vec();
        cross[0] = dims.pair_offsets[0] + dims.pair_vocab_sizes[0]; // one past the block
        let mut batch = Batch::empty();
        batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
        batch.push_row(bundle.data.row_fields(0), &cross, 0.0);
        let mut probs = Vec::new();
        match scorer.score_into(&batch, &mut probs) {
            Err(ScoreError::CrossIdOutOfRange {
                row,
                pair,
                id,
                lo,
                hi,
            }) => {
                assert_eq!((row, pair), (0, 0));
                assert_eq!(id, hi);
                assert!(lo < hi);
            }
            other => panic!("expected CrossIdOutOfRange, got {other:?}"),
        }
    }
}

#[test]
fn missing_cross_and_bad_arity_are_typed_errors() {
    let bundle = bundle();
    let mut scorer = scorer_for(&bundle, StoreKind::Dense, StoreKind::Dense);
    assert!(scorer.requires_cross());
    let mut probs = Vec::new();

    // No cross features while the architecture memorizes pairs.
    let mut batch = Batch::empty();
    batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
    batch.push_row(bundle.data.row_fields(0), &[], 0.0);
    assert_eq!(
        scorer.score_into(&batch, &mut probs),
        Err(ScoreError::MissingCross)
    );

    // Wrong field arity.
    let mut batch = Batch::empty();
    batch.begin(bundle.data.num_fields + 1, bundle.data.num_pairs);
    assert_eq!(
        scorer.score_into(&batch, &mut probs),
        Err(ScoreError::FieldCountMismatch {
            got: bundle.data.num_fields + 1,
            expected: bundle.data.num_fields,
        })
    );
}

#[test]
fn microbatch_degrades_to_nan_for_malformed_requests_only() {
    let bundle = bundle();
    let mut scorer = scorer_for(&bundle, StoreKind::Dense, StoreKind::Dense);
    let vocab = scorer.dims().orig_vocab;
    let clock = MonotonicClock::new();
    // One flush holds all three requests, so the malformed middle one
    // forces the degraded per-request path for the whole batch.
    let opts = MicroBatchOptions {
        queue_slots: 8,
        max_batch: 3,
        deadline_ns: 50_000_000,
    };
    let mut responses = Vec::new();
    serve(
        &mut scorer,
        &clock,
        &opts,
        |mut submitter| {
            let good = bundle.data.row_fields(1).to_vec();
            let mut bad = good.clone();
            bad[0] = vocab + 7;
            assert!(submitter.submit(0, &good, bundle.data.row_cross(1)));
            assert!(submitter.submit(1, &bad, bundle.data.row_cross(1)));
            assert!(submitter.submit(2, &good, bundle.data.row_cross(1)));
        },
        |r| responses.push(r),
    );
    assert_eq!(responses.len(), 3);
    assert!(responses[0].prob.is_finite(), "valid request still scores");
    assert!(responses[1].prob.is_nan(), "malformed request answers NaN");
    assert!(responses[2].prob.is_finite(), "valid request still scores");
    assert_eq!(
        responses[0].prob.to_bits(),
        responses[2].prob.to_bits(),
        "identical requests score identically through the degraded path"
    );
}
