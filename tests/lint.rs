//! Tier-1 enforcement of the static invariants (DESIGN.md §7).
//!
//! The determinism harness (`tests/determinism.rs`) proves the invariants
//! dynamically for the configurations it runs; this test proves the
//! *static* side for every source file on every `cargo test`: no hash
//! iteration in determinism-critical crates, `unsafe` confined to the
//! audited kernel modules with SAFETY comments, no wall-clock/entropy
//! outside the bench crate, and the panic ratchet against
//! `lint-baseline.toml`.

use std::path::Path;

#[test]
fn workspace_satisfies_static_invariants() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = optinter_lint::check_workspace(root).expect("lint run failed");
    assert!(
        report.files_checked > 20,
        "lint walker found only {} files — walker is likely broken",
        report.files_checked
    );
    if !report.is_clean() {
        let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        panic!(
            "{} static-invariant violation(s):\n{}\n\nSee DESIGN.md §7 for the rules and \
             the `// lint: allow(<rule>, reason=\"...\")` waiver convention.",
            rendered.len(),
            rendered.join("\n")
        );
    }
}
