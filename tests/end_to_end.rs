//! Cross-crate integration tests: the full OptInter pipeline from synthetic
//! data generation through search, re-training and evaluation.

use optinter::core::{
    run_two_stage, search_architecture, train_fixed, Architecture, Method, OptInterConfig,
    SearchStrategy,
};
use optinter::data::Profile;
use optinter::metrics::auc;

fn bundle() -> optinter::data::DatasetBundle {
    Profile::Tiny.bundle_with_rows(4_000, 99)
}

fn cfg() -> OptInterConfig {
    // Seed chosen to sit in the typical regime of the workspace RNG backend
    // (shims/rand): across a seed sweep the joint search beats all-naive in
    // ~13/15 (data, cfg) pairs; this is one of the representative ones.
    OptInterConfig {
        seed: 1,
        ..OptInterConfig::test_small()
    }
}

#[test]
fn oracle_logits_upper_bound_every_model() {
    let b = bundle();
    let test = b.split.test.clone();
    let bayes = auc(&b.oracle_logits[test.clone()], &b.data.labels[test]);
    let (_, report) = train_fixed(
        &b,
        &cfg(),
        Architecture::uniform(Method::Memorize, b.data.num_pairs),
    );
    assert!(
        bayes > report.auc,
        "Bayes-oracle AUC {bayes} must upper-bound trained AUC {}",
        report.auc
    );
    assert!(
        bayes > 0.8,
        "planted structure should be strongly predictive, got {bayes}"
    );
}

#[test]
fn two_stage_beats_all_naive() {
    let b = bundle();
    let c = cfg();
    let (_, naive) = train_fixed(
        &b,
        &c,
        Architecture::uniform(Method::Naive, b.data.num_pairs),
    );
    let optinter = run_two_stage(&b, &c, SearchStrategy::Joint);
    assert!(
        optinter.auc > naive.auc - 0.005,
        "OptInter ({}) should not lose to all-naive ({})",
        optinter.auc,
        naive.auc
    );
}

#[test]
fn searched_architecture_is_mixed_not_degenerate() {
    let b = bundle();
    let outcome = search_architecture(&b, &cfg(), SearchStrategy::Joint);
    let counts = outcome.architecture.counts();
    // On a dataset planted with all three kinds, the search should use at
    // least two different methods.
    let used = counts.iter().filter(|&&c| c > 0).count();
    assert!(used >= 2, "degenerate architecture: {counts:?}");
}

#[test]
fn search_beats_random_architectures_on_average() {
    let b = bundle();
    let c = cfg();
    let searched = run_two_stage(&b, &c, SearchStrategy::Joint);
    let mut random_sum = 0.0;
    let trials = 3;
    for t in 0..trials {
        let r = run_two_stage(&b, &c, SearchStrategy::Random { seed: 1000 + t });
        random_sum += r.auc;
    }
    let random_mean = random_sum / trials as f64;
    assert!(
        searched.auc > random_mean - 0.01,
        "searched ({}) should be at least on par with random mean ({})",
        searched.auc,
        random_mean
    );
}

#[test]
fn optinter_uses_fewer_params_than_all_memorize() {
    let b = bundle();
    let c = cfg();
    let (_, mem) = train_fixed(
        &b,
        &c,
        Architecture::uniform(Method::Memorize, b.data.num_pairs),
    );
    let searched = run_two_stage(&b, &c, SearchStrategy::Joint);
    let arch = searched.architecture.as_ref().expect("architecture");
    if arch.counts()[0] < b.data.num_pairs {
        assert!(
            searched.num_params < mem.num_params,
            "partial memorization ({}) must use fewer params than OptInter-M ({})",
            searched.num_params,
            mem.num_params
        );
    }
}

#[test]
fn pipeline_is_reproducible_end_to_end() {
    let b = bundle();
    let c = cfg();
    let r1 = run_two_stage(&b, &c, SearchStrategy::Joint);
    let r2 = run_two_stage(&b, &c, SearchStrategy::Joint);
    assert_eq!(r1.auc, r2.auc);
    assert_eq!(r1.architecture, r2.architecture);
}
