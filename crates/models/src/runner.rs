//! Shared training / evaluation loops for the model zoo.

use crate::traits::{BaselineConfig, CtrModel};
use optinter_data::{BatchStream, DatasetBundle};
use optinter_metrics::{evaluate, EvalResult};
use std::ops::Range;

/// Result of a full train-and-evaluate run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Test AUC.
    pub auc: f64,
    /// Test log-loss.
    pub log_loss: f64,
    /// Trainable parameter count.
    pub num_params: usize,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f32,
}

/// Trains a model on the bundle's training split. Returns the mean training
/// loss of the final epoch.
pub fn train_model(model: &mut dyn CtrModel, bundle: &DatasetBundle, cfg: &BaselineConfig) -> f32 {
    let mut final_loss = 0.0f32;
    for epoch in 0..cfg.epochs.max(1) {
        let mut sum = 0.0f32;
        let mut count = 0usize;
        BatchStream::new(
            &bundle.data,
            bundle.split.train.clone(),
            cfg.batch_size,
            Some(cfg.seed.wrapping_add(0xE90C + epoch as u64)),
        )
        .with_cross(model.needs_cross())
        .prefetch(cfg.prefetch)
        .for_each(|batch| {
            sum += model.train_batch(batch);
            count += 1;
        });
        final_loss = sum / count.max(1) as f32;
        model.end_epoch(epoch);
    }
    final_loss
}

/// Evaluates a model over a row range.
pub fn evaluate_model(
    model: &mut dyn CtrModel,
    bundle: &DatasetBundle,
    range: Range<usize>,
    batch_size: usize,
) -> EvalResult {
    let mut probs = Vec::with_capacity(range.len());
    let mut labels = Vec::with_capacity(range.len());
    // No config reaches this signature, so evaluation stays on the caller
    // thread (the recycled-buffer serial path of the stream).
    BatchStream::new(&bundle.data, range, batch_size, None)
        .with_cross(model.needs_cross())
        .prefetch(false)
        .for_each(|batch| {
            probs.extend(model.predict(batch));
            labels.extend_from_slice(&batch.labels);
        });
    evaluate(&probs, &labels)
}

/// Trains on the training split with epoch-level early stopping on the
/// validation split (patience 2), reporting the test metrics of the
/// best-validation epoch. `cfg.epochs` is the epoch budget.
pub fn run_model(
    model: &mut dyn CtrModel,
    bundle: &DatasetBundle,
    cfg: &BaselineConfig,
) -> RunReport {
    let mut final_train_loss = 0.0f32;
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = None;
    let mut since_best = 0usize;
    for epoch in 0..cfg.epochs.max(1) {
        let mut sum = 0.0f32;
        let mut count = 0usize;
        BatchStream::new(
            &bundle.data,
            bundle.split.train.clone(),
            cfg.batch_size,
            Some(cfg.seed.wrapping_add(0xE90C + epoch as u64)),
        )
        .with_cross(model.needs_cross())
        .prefetch(cfg.prefetch)
        .for_each(|batch| {
            sum += model.train_batch(batch);
            count += 1;
        });
        final_train_loss = sum / count.max(1) as f32;
        model.end_epoch(epoch);
        let val = evaluate_model(model, bundle, bundle.split.val.clone(), cfg.batch_size);
        if val.auc > best_val {
            best_val = val.auc;
            best_test = Some(evaluate_model(
                model,
                bundle,
                bundle.split.test.clone(),
                cfg.batch_size,
            ));
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= 2 {
                break;
            }
        }
    }
    let eval = best_test.unwrap_or_else(|| {
        evaluate_model(model, bundle, bundle.split.test.clone(), cfg.batch_size)
    });
    RunReport {
        model: model.name().to_string(),
        auc: eval.auc,
        log_loss: eval.log_loss,
        num_params: model.num_params(),
        final_train_loss,
    }
}
