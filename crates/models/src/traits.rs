//! The common interface every CTR model implements, plus the taxonomy
//! metadata of paper Table III.

use optinter_data::Batch;

/// The interaction-method category a model belongs to (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// No explicit feature interactions (LR, FNN).
    Naive,
    /// Interactions memorized as new features (Poly2, Wide&Deep).
    Memorized,
    /// Interactions modelled by factorization functions (FM family, PNNs).
    Factorized,
    /// Method chosen per interaction (AutoFIS, OptInter).
    Hybrid,
}

impl Category {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Naive => "naive",
            Category::Memorized => "memorized",
            Category::Factorized => "factorized",
            Category::Hybrid => "hybrid",
        }
    }
}

/// Table III row: how a model fits into the OptInter framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taxonomy {
    /// Interaction category.
    pub category: Category,
    /// Methods the model can use, as a display string (e.g. `{n,m,f}`).
    pub methods: &'static str,
    /// Factorization function, `-` when not applicable.
    pub factorization_fn: &'static str,
    /// Classifier: `Shallow`, `Deep` or `S&D`.
    pub classifier: &'static str,
}

/// A trainable CTR prediction model.
pub trait CtrModel {
    /// Model name as reported in the paper's tables.
    fn name(&self) -> &'static str;

    /// Where the model sits in the OptInter taxonomy (Table III).
    fn taxonomy(&self) -> Taxonomy;

    /// One optimizer step on a mini-batch; returns the mean batch loss.
    fn train_batch(&mut self, batch: &Batch) -> f32;

    /// Predicted click probabilities for a batch.
    fn predict(&mut self, batch: &Batch) -> Vec<f32>;

    /// Number of trainable scalar parameters.
    fn num_params(&mut self) -> usize;

    /// Whether the model consumes cross-product features (memorized ones
    /// do; the batcher can skip the cross gather otherwise).
    fn needs_cross(&self) -> bool {
        false
    }

    /// Hook run once after each epoch (AutoFIS uses it for gate bookkeeping).
    fn end_epoch(&mut self, _epoch: usize) {}
}

/// Hyper-parameters shared by the baseline zoo.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Embedding size for original features (Table IV: `s1`).
    pub embed_dim: usize,
    /// MLP hidden widths for deep models (Table IV: `net`).
    pub hidden: Vec<usize>,
    /// Apply LayerNorm in deep classifiers.
    pub layer_norm: bool,
    /// Learning rate.
    pub lr: f32,
    /// Adam epsilon.
    pub adam_eps: f32,
    /// L2 weight decay on embeddings.
    pub l2: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Init / shuffle seed.
    pub seed: u64,
    /// PIN micro-network hidden widths (Table IV: `sub-net`).
    pub subnet: Vec<usize>,
    /// AutoFIS GRDA `c` (Table IV).
    pub grda_c: f32,
    /// AutoFIS GRDA `mu` (Table IV).
    pub grda_mu: f32,
    /// Intra-batch data-parallel threads for deep classifiers (1 = serial).
    /// Any value produces bit-identical results; see `optinter_tensor::pool`.
    pub num_threads: usize,
    /// Overlap batch assembly with compute via the prefetching
    /// `optinter_data::BatchStream` (default on). Either value produces
    /// bit-identical results.
    pub prefetch: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            hidden: vec![64, 32],
            layer_norm: true,
            lr: 5e-3,
            adam_eps: 1e-8,
            l2: 0.0,
            batch_size: 128,
            epochs: 8,
            seed: 0,
            subnet: vec![16, 4],
            grda_c: 5e-4,
            grda_mu: 0.8,
            num_threads: 1,
            prefetch: true,
        }
    }
}

impl BaselineConfig {
    /// A shrunk configuration for unit tests.
    pub fn test_small() -> Self {
        Self {
            embed_dim: 6,
            hidden: vec![16],
            batch_size: 64,
            lr: 1e-2,
            epochs: 2,
            subnet: vec![8, 3],
            ..Self::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        Self {
            seed,
            ..self.clone()
        }
    }

    /// Returns a copy with a different data-parallel thread count.
    pub fn with_threads(&self, num_threads: usize) -> Self {
        Self {
            num_threads,
            ..self.clone()
        }
    }

    /// Returns a copy with input prefetching toggled (the bench
    /// `--no-prefetch` A/B switch).
    pub fn with_prefetch(&self, prefetch: bool) -> Self {
        Self {
            prefetch,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names() {
        assert_eq!(Category::Naive.name(), "naive");
        assert_eq!(Category::Hybrid.name(), "hybrid");
    }

    #[test]
    fn default_config_sane() {
        let c = BaselineConfig::default();
        assert!(c.embed_dim > 0 && c.batch_size > 0 && c.epochs > 0);
    }
}
