//! FNN (Zhang et al. 2016): original-feature embeddings fed directly into
//! an MLP — the deep naïve method (paper Fig. 1a).

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::Batch;
use optinter_nn::{
    bce_with_logits_into, loss, Adam, DenseOptimizer, EmbeddingTable, Layer, Mlp, MlpConfig,
};
use optinter_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deep neural network over concatenated original-feature embeddings.
pub struct Fnn {
    emb: EmbeddingTable,
    mlp: Mlp,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    // Persistent step buffers: overwritten in full every batch so the
    // steady-state train step reuses their capacity.
    input: Matrix,
    logits: Matrix,
    grad: Matrix,
    dinput: Matrix,
}

impl Fnn {
    /// Creates an FNN for the dataset's vocabulary.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF44);
        let emb = EmbeddingTable::new(&mut rng, orig_vocab as usize, cfg.embed_dim);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: num_fields * cfg.embed_dim,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        mlp.set_pool(&optinter_tensor::Pool::new(cfg.num_threads));
        Self {
            emb,
            mlp,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            grad: Matrix::zeros(0, 0),
            dinput: Matrix::zeros(0, 0),
        }
    }
}

impl CtrModel for Fnn {
    fn name(&self) -> &'static str {
        "FNN"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Naive,
            methods: "{n}",
            factorization_fn: "-",
            classifier: "Deep",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        self.emb
            .lookup_fields_into(&batch.fields, m, &mut self.input);
        self.mlp.forward_into(&self.input, &mut self.logits);
        let loss_value = bce_with_logits_into(&self.logits, &batch.labels, &mut self.grad);
        self.mlp
            .backward_into(&self.input, &self.grad, &mut self.dinput);
        self.emb
            .accumulate_grad_fields(&batch.fields, m, &self.dinput);
        self.adam.begin_step();
        let mut adam = self.adam;
        self.mlp.visit_params(&mut |p| adam.step(p, 0.0));
        self.adam = adam;
        self.emb.apply_adam(&self.adam, self.l2);
        loss_value
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.emb
            .lookup_fields_into(&batch.fields, self.num_fields, &mut self.input);
        self.mlp.forward_into(&self.input, &mut self.logits);
        loss::probabilities(&self.logits)
    }

    fn num_params(&mut self) -> usize {
        self.emb.num_params() + self.mlp.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::Lr;
    use crate::runner::run_model;
    use optinter_data::Profile;

    #[test]
    fn fnn_beats_lr() {
        let bundle = Profile::Tiny.bundle_with_rows(6000, 13);
        let cfg = BaselineConfig::test_small();
        let mut lr = Lr::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let lr_report = run_model(&mut lr, &bundle, &cfg);
        let mut fnn = Fnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let fnn_report = run_model(&mut fnn, &bundle, &cfg);
        // On the tiny profile the two are close; FNN must at least be
        // competitive (the full-size comparison lives in the harness).
        assert!(
            fnn_report.auc > lr_report.auc - 0.02,
            "FNN ({}) should be competitive with LR ({})",
            fnn_report.auc,
            lr_report.auc
        );
        assert!(fnn_report.auc > 0.6, "FNN AUC {}", fnn_report.auc);
    }

    #[test]
    fn does_not_need_cross_features() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 14);
        let cfg = BaselineConfig::test_small();
        let fnn = Fnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        assert!(!fnn.needs_cross());
    }

    #[test]
    fn param_count_embeddings_plus_mlp() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 15);
        let cfg = BaselineConfig::test_small();
        let mut fnn = Fnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let emb = bundle.data.orig_vocab as usize * cfg.embed_dim;
        assert!(fnn.num_params() > emb);
    }
}
