//! The factorization-machine family: FM, FwFM, FmFM (paper Table III).
//!
//! All three are shallow factorized models sharing the structure
//! `logit = b + Σ_f w[x_f] + Σ_(i<j) pair_term(e_i, e_j)` and differing only
//! in the factorization function:
//!
//! - **FM**: `<e_i, e_j>` — computed with Rendle's O(Mk) identity;
//! - **FwFM**: `<e_i, e_j> · w_(i,j)` with a learnable scalar per pair;
//! - **FmFM**: `e_i W_(i,j) e_j^T` with a learnable matrix per pair.

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::{Batch, PairIndexer};
use optinter_nn::{Adam, DenseOptimizer, EmbeddingTable, Parameter};
use optinter_tensor::{numerics, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which member of the FM family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Plain,
    FieldWeighted,
    FieldMatrixed,
}

/// Shared implementation of the FM family.
pub struct FmFamily {
    variant: Variant,
    linear: EmbeddingTable,
    emb: EmbeddingTable,
    bias: Parameter,
    /// FwFM: pair weights `[P, 1]`; FmFM: pair matrices `[P, k*k]` (each row
    /// a flattened `k x k` matrix). Unused for plain FM.
    pair_params: Parameter,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    dim: usize,
    pairs: PairIndexer,
    /// Recycled per-field id buffer for the linear-term sparse update.
    ids_scratch: Vec<u32>,
}

impl FmFamily {
    fn new(variant: Variant, cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF2);
        let k = cfg.embed_dim;
        let pairs = PairIndexer::new(num_fields);
        let pair_params = match variant {
            Variant::Plain => Parameter::zeros(1, 1),
            // Pair weights start at 1: FwFM reduces to FM initially.
            Variant::FieldWeighted => Parameter::new(Matrix::filled(pairs.num_pairs(), 1, 1.0)),
            // Pair matrices start at identity: FmFM reduces to FM initially.
            Variant::FieldMatrixed => {
                let mut m = Matrix::zeros(pairs.num_pairs(), k * k);
                for p in 0..pairs.num_pairs() {
                    for c in 0..k {
                        m.set(p, c * k + c, 1.0);
                    }
                }
                Parameter::new(m)
            }
        };
        Self {
            variant,
            linear: EmbeddingTable::zeros(orig_vocab as usize, 1),
            emb: EmbeddingTable::new(&mut rng, orig_vocab as usize, k),
            bias: Parameter::zeros(1, 1),
            pair_params,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            dim: k,
            pairs,
            ids_scratch: Vec::new(),
        }
    }

    /// Forward producing logits plus the cached embedding matrix.
    fn forward(&self, batch: &Batch) -> (Vec<f32>, Matrix) {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        let emb = self.emb.lookup_fields(&batch.fields, m);
        let bias = self.bias.value.get(0, 0);
        // lint: allow(hot-path-alloc, reason="offline baseline model: per-batch buffer beside train_batch's other allocations; measured by the alloc-counter harness, not the serving path")
        let mut logits = Vec::with_capacity(b);
        for r in 0..b {
            let mut z = bias;
            for f in 0..m {
                z += self.linear.row(batch.fields[r * m + f])[0];
            }
            let row = emb.row(r);
            match self.variant {
                Variant::Plain => {
                    // Rendle's identity: sum of pair inner products =
                    // 0.5 * sum_c [ (sum_i v_ic)^2 - sum_i v_ic^2 ].
                    for c in 0..k {
                        let mut s = 0.0f32;
                        let mut q = 0.0f32;
                        for f in 0..m {
                            let v = row[f * k + c];
                            s += v;
                            q += v * v;
                        }
                        z += 0.5 * (s * s - q);
                    }
                }
                Variant::FieldWeighted => {
                    for (p, (i, j)) in self.pairs.iter().enumerate() {
                        let mut dot = 0.0f32;
                        for c in 0..k {
                            dot += row[i * k + c] * row[j * k + c];
                        }
                        z += self.pair_params.value.get(p, 0) * dot;
                    }
                }
                Variant::FieldMatrixed => {
                    for (p, (i, j)) in self.pairs.iter().enumerate() {
                        let w = self.pair_params.value.row(p);
                        let vi = &row[i * k..(i + 1) * k];
                        let vj = &row[j * k..(j + 1) * k];
                        let mut term = 0.0f32;
                        for a in 0..k {
                            let mut acc = 0.0f32;
                            for c in 0..k {
                                acc += w[a * k + c] * vj[c];
                            }
                            term += vi[a] * acc;
                        }
                        z += term;
                    }
                }
            }
            logits.push(z);
        }
        (logits, emb)
    }
}

impl CtrModel for FmFamily {
    fn name(&self) -> &'static str {
        match self.variant {
            Variant::Plain => "FM",
            Variant::FieldWeighted => "FwFM",
            Variant::FieldMatrixed => "FmFM",
        }
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Factorized,
            methods: "{f}",
            factorization_fn: match self.variant {
                Variant::Plain => "<e_i, e_j>",
                Variant::FieldWeighted => "<e_i, e_j> w_(i,j)",
                Variant::FieldMatrixed => "e_i W_(i,j) e_j^T",
            },
            classifier: "Shallow",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        let (logits, emb) = self.forward(batch);
        let inv_b = 1.0 / b as f32;
        let mut loss = 0.0f32;
        let mut d_emb = Matrix::zeros(b, m * k);
        let mut grad_rows = Matrix::zeros(b, 1);
        let mut dbias = 0.0f32;
        for (r, &z) in logits.iter().enumerate().take(b) {
            let y = batch.labels[r];
            loss += numerics::stable_bce(z, y);
            let g = numerics::stable_bce_grad(z, y) * inv_b;
            grad_rows.set(r, 0, g);
            dbias += g;
            let row = emb.row(r);
            let d_row = d_emb.row_mut(r);
            match self.variant {
                Variant::Plain => {
                    for c in 0..k {
                        let mut s = 0.0f32;
                        for f in 0..m {
                            s += row[f * k + c];
                        }
                        for f in 0..m {
                            d_row[f * k + c] += g * (s - row[f * k + c]);
                        }
                    }
                }
                Variant::FieldWeighted => {
                    for (p, (i, j)) in self.pairs.iter().enumerate() {
                        let w = self.pair_params.value.get(p, 0);
                        let mut dot = 0.0f32;
                        for c in 0..k {
                            let (vi, vj) = (row[i * k + c], row[j * k + c]);
                            dot += vi * vj;
                            d_row[i * k + c] += g * w * vj;
                            d_row[j * k + c] += g * w * vi;
                        }
                        self.pair_params.grad.row_mut(p)[0] += g * dot;
                    }
                }
                Variant::FieldMatrixed => {
                    for (p, (i, j)) in self.pairs.iter().enumerate() {
                        let w = self.pair_params.value.row(p);
                        let dw = self.pair_params.grad.row_mut(p);
                        let vi = &row[i * k..(i + 1) * k];
                        let vj = &row[j * k..(j + 1) * k];
                        for a in 0..k {
                            let mut wvj = 0.0f32;
                            for c in 0..k {
                                wvj += w[a * k + c] * vj[c];
                                dw[a * k + c] += g * vi[a] * vj[c];
                            }
                            d_row[i * k + a] += g * wvj;
                        }
                        for c in 0..k {
                            let mut wt_vi = 0.0f32;
                            for a in 0..k {
                                wt_vi += w[a * k + c] * vi[a];
                            }
                            d_row[j * k + c] += g * wt_vi;
                        }
                    }
                }
            }
        }
        // Linear part.
        for f in 0..m {
            self.ids_scratch.clear();
            self.ids_scratch
                .extend((0..b).map(|r| batch.fields[r * m + f]));
            self.linear.accumulate_grad(&self.ids_scratch, &grad_rows);
        }
        self.emb.accumulate_grad_fields(&batch.fields, m, &d_emb);
        self.bias.grad.set(0, 0, dbias);
        self.adam.begin_step();
        self.linear.apply_adam(&self.adam, 0.0);
        self.emb.apply_adam(&self.adam, self.l2);
        let mut adam = self.adam;
        adam.step(&mut self.bias, 0.0);
        if self.variant != Variant::Plain {
            adam.step(&mut self.pair_params, 0.0);
        }
        loss * inv_b
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.forward(batch)
            .0
            .iter()
            .map(|&z| numerics::sigmoid(z))
            .collect()
    }

    fn num_params(&mut self) -> usize {
        let pair = match self.variant {
            Variant::Plain => 0,
            _ => self.pair_params.len(),
        };
        self.linear.num_params() + self.emb.num_params() + 1 + pair
    }
}

/// Plain factorization machine (Rendle 2010).
pub struct Fm(FmFamily);

impl Fm {
    /// Creates an FM.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        Self(FmFamily::new(Variant::Plain, cfg, orig_vocab, num_fields))
    }
}

/// Field-weighted FM (Pan et al. 2018).
pub struct FwFm(FmFamily);

impl FwFm {
    /// Creates an FwFM.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        Self(FmFamily::new(
            Variant::FieldWeighted,
            cfg,
            orig_vocab,
            num_fields,
        ))
    }
}

/// Field-matrixed FM (Sun et al. 2021).
pub struct FmFm(FmFamily);

impl FmFm {
    /// Creates an FmFM.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        Self(FmFamily::new(
            Variant::FieldMatrixed,
            cfg,
            orig_vocab,
            num_fields,
        ))
    }
}

macro_rules! delegate_ctr {
    ($t:ty) => {
        impl CtrModel for $t {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn taxonomy(&self) -> Taxonomy {
                self.0.taxonomy()
            }
            fn train_batch(&mut self, batch: &Batch) -> f32 {
                self.0.train_batch(batch)
            }
            fn predict(&mut self, batch: &Batch) -> Vec<f32> {
                self.0.predict(batch)
            }
            fn num_params(&mut self) -> usize {
                self.0.num_params()
            }
        }
    };
}

delegate_ctr!(Fm);
delegate_ctr!(FwFm);
delegate_ctr!(FmFm);

/// Sanity helper used by tests: the brute-force pairwise inner-product sum,
/// to validate Rendle's identity.
#[doc(hidden)]
pub fn bruteforce_pair_sum(row: &[f32], m: usize, k: usize) -> f32 {
    let mut total = 0.0f32;
    for i in 0..m {
        for j in i + 1..m {
            for c in 0..k {
                total += row[i * k + c] * row[j * k + c];
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{evaluate_model, run_model};
    use optinter_data::Profile;

    #[test]
    fn rendle_identity_matches_bruteforce() {
        let m = 4;
        let k = 3;
        let row: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let brute = bruteforce_pair_sum(&row, m, k);
        let mut fast = 0.0f32;
        for c in 0..k {
            let mut s = 0.0f32;
            let mut q = 0.0f32;
            for f in 0..m {
                let v = row[f * k + c];
                s += v;
                q += v * v;
            }
            fast += 0.5 * (s * s - q);
        }
        assert!((brute - fast).abs() < 1e-5, "{brute} vs {fast}");
    }

    #[test]
    fn fm_learns_factorized_structure() {
        let bundle = Profile::Tiny.bundle_with_rows(4000, 7);
        let cfg = BaselineConfig::test_small();
        let mut fm = Fm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let report = run_model(&mut fm, &bundle, &cfg);
        assert!(report.auc > 0.6, "FM AUC {}", report.auc);
    }

    #[test]
    fn fwfm_initialises_to_fm() {
        // With pair weights at 1, FwFM's prediction equals FM's given the
        // same seed (identical embeddings).
        let bundle = Profile::Tiny.bundle_with_rows(300, 8);
        let cfg = BaselineConfig::test_small();
        let mut fm = Fm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let mut fwfm = FwFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let batch = optinter_data::BatchIter::new(&bundle.data, 0..16, 16, None)
            .next()
            .unwrap();
        let a = fm.predict(&batch);
        let b = fwfm.predict(&batch);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn fmfm_initialises_to_fm() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 8);
        let cfg = BaselineConfig::test_small();
        let mut fm = Fm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let mut fmfm = FmFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let batch = optinter_data::BatchIter::new(&bundle.data, 0..16, 16, None)
            .next()
            .unwrap();
        let a = fm.predict(&batch);
        let b = fmfm.predict(&batch);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn param_counts_ordered_by_expressiveness() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 9);
        let cfg = BaselineConfig::test_small();
        let mut fm = Fm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let mut fwfm = FwFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let mut fmfm = FmFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        assert!(fm.num_params() < fwfm.num_params());
        assert!(fwfm.num_params() < fmfm.num_params());
    }

    #[test]
    fn fwfm_trains_without_nan() {
        let bundle = Profile::Tiny.bundle_with_rows(2000, 10);
        let cfg = BaselineConfig::test_small();
        let mut model = FwFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let report = run_model(&mut model, &bundle, &cfg);
        assert!(report.auc.is_finite() && report.log_loss.is_finite());
        assert!(report.auc > 0.55, "FwFM AUC {}", report.auc);
    }

    #[test]
    fn fmfm_trains_without_nan() {
        let bundle = Profile::Tiny.bundle_with_rows(2000, 10);
        let cfg = BaselineConfig::test_small();
        let mut model = FmFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        crate::runner::train_model(&mut model, &bundle, &cfg);
        let eval = evaluate_model(
            &mut model,
            &bundle,
            bundle.split.test.clone(),
            cfg.batch_size,
        );
        assert!(
            eval.auc.is_finite() && eval.auc > 0.55,
            "FmFM AUC {}",
            eval.auc
        );
    }
}
