//! Product-based neural networks (Qu et al. 2016): IPNN and OPNN.
//!
//! Both concatenate the original embeddings with product features and feed
//! the result to an MLP:
//!
//! - **IPNN** — one inner product `<e_i, e_j>` per pair (`P` scalars);
//! - **OPNN** — outer-product features. Following the PNN paper's
//!   sum-pooling approximation, the outer product is taken on the pooled
//!   embedding `f_Σ = Σ_i e_i`, giving `vec(f_Σ f_Σ^T)` (`k²` features).

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::{Batch, PairIndexer};
use optinter_nn::{
    bce_with_logits_into, loss, Adam, DenseOptimizer, EmbeddingTable, Layer, Mlp, MlpConfig,
};
use optinter_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProductKind {
    Inner,
    Outer,
}

/// Shared PNN implementation.
pub struct Pnn {
    kind: ProductKind,
    emb: EmbeddingTable,
    mlp: Mlp,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    dim: usize,
    pairs: PairIndexer,
    // Persistent step buffers: overwritten in full every batch so the
    // steady-state train step reuses their capacity.
    emb_buf: Matrix,
    /// OPNN: pooled embedding per row.
    pooled: Matrix,
    input: Matrix,
    logits: Matrix,
    grad: Matrix,
    dinput: Matrix,
    d_emb: Matrix,
    d_pool: Vec<f32>,
}

impl Pnn {
    fn new(kind: ProductKind, cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x944);
        let k = cfg.embed_dim;
        let pairs = PairIndexer::new(num_fields);
        let product_dim = match kind {
            ProductKind::Inner => pairs.num_pairs(),
            ProductKind::Outer => k * k,
        };
        let emb = EmbeddingTable::new(&mut rng, orig_vocab as usize, k);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: num_fields * k + product_dim,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        mlp.set_pool(&optinter_tensor::Pool::new(cfg.num_threads));
        Self {
            kind,
            emb,
            mlp,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            dim: k,
            pairs,
            emb_buf: Matrix::zeros(0, 0),
            pooled: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            grad: Matrix::zeros(0, 0),
            dinput: Matrix::zeros(0, 0),
            d_emb: Matrix::zeros(0, 0),
            d_pool: Vec::new(),
        }
    }

    /// Fills `self.input` (and the `emb_buf`/`pooled` activations the
    /// backward pass reads) from the batch.
    fn build_input(&mut self, batch: &Batch) {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        self.emb
            .lookup_fields_into(&batch.fields, m, &mut self.emb_buf);
        let product_dim = match self.kind {
            ProductKind::Inner => {
                self.pooled.reset(0, 0);
                self.pairs.num_pairs()
            }
            ProductKind::Outer => {
                self.pooled.reset(b, k);
                k * k
            }
        };
        self.input.reset(b, m * k + product_dim);
        self.input.copy_block_from(&self.emb_buf, 0);
        for r in 0..b {
            let row = self.emb_buf.row(r);
            match self.kind {
                ProductKind::Inner => {
                    let dst = self.input.row_mut(r);
                    for (p, (i, j)) in self.pairs.iter().enumerate() {
                        let mut dot = 0.0f32;
                        for c in 0..k {
                            dot += row[i * k + c] * row[j * k + c];
                        }
                        dst[m * k + p] = dot;
                    }
                }
                ProductKind::Outer => {
                    let pool = self.pooled.row_mut(r);
                    for f in 0..m {
                        for c in 0..k {
                            pool[c] += row[f * k + c];
                        }
                    }
                    let dst = self.input.row_mut(r);
                    let pool = self.pooled.row(r);
                    for a in 0..k {
                        for c in 0..k {
                            dst[m * k + a * k + c] = pool[a] * pool[c];
                        }
                    }
                }
            }
        }
    }

    /// Propagates `self.dinput` through the product features into
    /// `self.d_emb` (the gradient of the raw embedding block).
    fn backward_products(&mut self, batch: &Batch) {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        self.dinput.block_into(0, m * k, &mut self.d_emb);
        for r in 0..b {
            let g_row = self.dinput.row(r);
            match self.kind {
                ProductKind::Inner => {
                    let row = self.emb_buf.row(r);
                    let d_row = self.d_emb.row_mut(r);
                    for (p, (i, j)) in self.pairs.iter().enumerate() {
                        let g = g_row[m * k + p];
                        for c in 0..k {
                            d_row[i * k + c] += g * row[j * k + c];
                            d_row[j * k + c] += g * row[i * k + c];
                        }
                    }
                }
                ProductKind::Outer => {
                    let pool = self.pooled.row(r);
                    // d pool[a] = sum_c g[a,c] * pool[c] + g[c,a] * pool[c]
                    self.d_pool.clear();
                    self.d_pool.resize(k, 0.0);
                    for a in 0..k {
                        for c in 0..k {
                            let g = g_row[m * k + a * k + c];
                            self.d_pool[a] += g * pool[c];
                            self.d_pool[c] += g * pool[a];
                        }
                    }
                    // pool = sum of all field embeddings: broadcast back.
                    let d_row = self.d_emb.row_mut(r);
                    for f in 0..m {
                        for c in 0..k {
                            d_row[f * k + c] += self.d_pool[c];
                        }
                    }
                }
            }
        }
    }
}

impl CtrModel for Pnn {
    fn name(&self) -> &'static str {
        match self.kind {
            ProductKind::Inner => "IPNN",
            ProductKind::Outer => "OPNN",
        }
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Factorized,
            methods: "{f}",
            factorization_fn: match self.kind {
                ProductKind::Inner => "<e_i, e_j>",
                ProductKind::Outer => "<e_i, e_j>_phi",
            },
            classifier: "Deep",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        self.build_input(batch);
        self.mlp.forward_into(&self.input, &mut self.logits);
        let loss_value = bce_with_logits_into(&self.logits, &batch.labels, &mut self.grad);
        self.mlp
            .backward_into(&self.input, &self.grad, &mut self.dinput);
        self.backward_products(batch);
        self.emb
            .accumulate_grad_fields(&batch.fields, self.num_fields, &self.d_emb);
        self.adam.begin_step();
        let mut adam = self.adam;
        self.mlp.visit_params(&mut |p| adam.step(p, 0.0));
        self.adam = adam;
        self.emb.apply_adam(&self.adam, self.l2);
        loss_value
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.build_input(batch);
        self.mlp.forward_into(&self.input, &mut self.logits);
        loss::probabilities(&self.logits)
    }

    fn num_params(&mut self) -> usize {
        self.emb.num_params() + self.mlp.num_params()
    }
}

/// Inner-product neural network.
pub struct Ipnn(Pnn);

impl Ipnn {
    /// Creates an IPNN.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        Self(Pnn::new(ProductKind::Inner, cfg, orig_vocab, num_fields))
    }
}

/// Outer-product neural network.
pub struct Opnn(Pnn);

impl Opnn {
    /// Creates an OPNN.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        Self(Pnn::new(ProductKind::Outer, cfg, orig_vocab, num_fields))
    }
}

macro_rules! delegate_ctr {
    ($t:ty) => {
        impl CtrModel for $t {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn taxonomy(&self) -> Taxonomy {
                self.0.taxonomy()
            }
            fn train_batch(&mut self, batch: &Batch) -> f32 {
                self.0.train_batch(batch)
            }
            fn predict(&mut self, batch: &Batch) -> Vec<f32> {
                self.0.predict(batch)
            }
            fn num_params(&mut self) -> usize {
                self.0.num_params()
            }
        }
    };
}

delegate_ctr!(Ipnn);
delegate_ctr!(Opnn);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnn::Fnn;
    use crate::runner::run_model;
    use optinter_data::Profile;

    #[test]
    fn ipnn_beats_fnn_on_factorized_structure() {
        let bundle = Profile::Tiny.bundle_with_rows(6000, 17);
        let cfg = BaselineConfig::test_small();
        let mut fnn = Fnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let fnn_r = run_model(&mut fnn, &bundle, &cfg);
        let mut ipnn = Ipnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let ipnn_r = run_model(&mut ipnn, &bundle, &cfg);
        // Explicit products should not hurt on interaction-heavy data.
        assert!(
            ipnn_r.auc > fnn_r.auc - 0.01,
            "IPNN ({}) should be competitive with FNN ({})",
            ipnn_r.auc,
            fnn_r.auc
        );
    }

    #[test]
    fn opnn_trains() {
        let bundle = Profile::Tiny.bundle_with_rows(3000, 18);
        let cfg = BaselineConfig::test_small();
        let mut opnn = Opnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let r = run_model(&mut opnn, &bundle, &cfg);
        assert!(r.auc > 0.55 && r.auc.is_finite(), "OPNN AUC {}", r.auc);
    }

    #[test]
    fn input_dims_differ_between_variants() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 19);
        let cfg = BaselineConfig::test_small();
        let ipnn = Ipnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let opnn = Opnn::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        assert_eq!(
            ipnn.0.mlp.input_dim(),
            bundle.data.num_fields * cfg.embed_dim + bundle.data.num_pairs
        );
        assert_eq!(
            opnn.0.mlp.input_dim(),
            bundle.data.num_fields * cfg.embed_dim + cfg.embed_dim * cfg.embed_dim
        );
    }
}
