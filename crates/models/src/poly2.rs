//! Poly2 (paper baseline): logistic regression with *all* second-order
//! cross-product features memorized as explicit weights — the shallow
//! memorized method (degree-2 polynomial mapping).

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::Batch;
use optinter_nn::{Adam, DenseOptimizer, EmbeddingTable, Parameter};
use optinter_tensor::{numerics, Matrix};

/// Degree-2 polynomial logistic regression.
pub struct Poly2 {
    linear: EmbeddingTable,
    cross: EmbeddingTable,
    bias: Parameter,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    num_pairs: usize,
    /// Scratch reused across train steps (zero-alloc steady state).
    ids_scratch: Vec<u32>,
}

impl Poly2 {
    /// Creates a Poly2 model for the dataset's vocab sizes.
    pub fn new(
        cfg: &BaselineConfig,
        orig_vocab: u32,
        cross_vocab: u32,
        num_fields: usize,
        num_pairs: usize,
    ) -> Self {
        Self {
            linear: EmbeddingTable::zeros(orig_vocab as usize, 1),
            cross: EmbeddingTable::zeros(cross_vocab as usize, 1),
            bias: Parameter::zeros(1, 1),
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            num_pairs,
            ids_scratch: Vec::new(),
        }
    }

    fn logits(&self, batch: &Batch) -> Vec<f32> {
        let m = self.num_fields;
        let p = self.num_pairs;
        let b = batch.len();
        assert!(!batch.cross.is_empty(), "Poly2 needs cross features");
        let bias = self.bias.value.get(0, 0);
        // lint: allow(hot-path-alloc, reason="offline baseline model: per-batch buffer beside the training loop's allocations; measured by the alloc-counter harness, not the serving path")
        let mut out = Vec::with_capacity(b);
        for r in 0..b {
            let mut z = bias;
            for f in 0..m {
                z += self.linear.row(batch.fields[r * m + f])[0];
            }
            for k in 0..p {
                z += self.cross.row(batch.cross[r * p + k])[0];
            }
            out.push(z);
        }
        out
    }
}

impl CtrModel for Poly2 {
    fn name(&self) -> &'static str {
        "Poly2"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Memorized,
            methods: "{m}",
            factorization_fn: "-",
            classifier: "Shallow",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let p = self.num_pairs;
        let b = batch.len();
        let logits = self.logits(batch);
        let inv_b = 1.0 / b as f32;
        let mut loss = 0.0f32;
        let mut grad_rows = Matrix::zeros(b, 1);
        let mut dbias = 0.0f32;
        for (r, &z) in logits.iter().enumerate().take(b) {
            let y = batch.labels[r];
            loss += numerics::stable_bce(z, y);
            let g = numerics::stable_bce_grad(z, y) * inv_b;
            grad_rows.set(r, 0, g);
            dbias += g;
        }
        for f in 0..m {
            self.ids_scratch.clear();
            self.ids_scratch
                .extend((0..b).map(|r| batch.fields[r * m + f]));
            self.linear.accumulate_grad(&self.ids_scratch, &grad_rows);
        }
        for k in 0..p {
            self.ids_scratch.clear();
            self.ids_scratch
                .extend((0..b).map(|r| batch.cross[r * p + k]));
            self.cross.accumulate_grad(&self.ids_scratch, &grad_rows);
        }
        self.bias.grad.set(0, 0, dbias);
        self.adam.begin_step();
        self.linear.apply_adam(&self.adam, self.l2);
        self.cross.apply_adam(&self.adam, self.l2);
        let mut adam = self.adam;
        adam.step(&mut self.bias, 0.0);
        loss * inv_b
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.logits(batch)
            .iter()
            .map(|&z| numerics::sigmoid(z))
            .collect()
    }

    fn num_params(&mut self) -> usize {
        self.linear.num_params() + self.cross.num_params() + 1
    }

    fn needs_cross(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr::Lr;
    use crate::runner::{evaluate_model, train_model};
    use optinter_data::Profile;

    #[test]
    fn poly2_beats_lr_on_interaction_heavy_data() {
        let bundle = Profile::Tiny.bundle_with_rows(4000, 5);
        let cfg = BaselineConfig::test_small();
        let mut lr = Lr::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        train_model(&mut lr, &bundle, &cfg);
        let lr_eval = evaluate_model(&mut lr, &bundle, bundle.split.test.clone(), cfg.batch_size);
        let mut poly = Poly2::new(
            &cfg,
            bundle.data.orig_vocab,
            bundle.data.cross_vocab,
            bundle.data.num_fields,
            bundle.data.num_pairs,
        );
        train_model(&mut poly, &bundle, &cfg);
        let poly_eval = evaluate_model(
            &mut poly,
            &bundle,
            bundle.split.test.clone(),
            cfg.batch_size,
        );
        assert!(
            poly_eval.auc > lr_eval.auc,
            "Poly2 ({}) should beat LR ({}) on planted interactions",
            poly_eval.auc,
            lr_eval.auc
        );
    }

    #[test]
    fn param_count_includes_cross_table() {
        let bundle = Profile::Tiny.bundle_with_rows(500, 6);
        let cfg = BaselineConfig::test_small();
        let mut model = Poly2::new(
            &cfg,
            bundle.data.orig_vocab,
            bundle.data.cross_vocab,
            bundle.data.num_fields,
            bundle.data.num_pairs,
        );
        assert_eq!(
            model.num_params(),
            (bundle.data.orig_vocab + bundle.data.cross_vocab) as usize + 1
        );
    }
}
