//! The baseline CTR model zoo (paper Table III / Sec. III-A3).
//!
//! Every baseline is an instance of the OptInter taxonomy — a fixed choice
//! of feature-interaction method plus a factorization function and a
//! classifier:
//!
//! | model  | category   | interaction | factorization fn        | classifier |
//! |--------|------------|-------------|-------------------------|------------|
//! | LR     | naïve      | none        | —                       | shallow    |
//! | FNN    | naïve      | none        | —                       | deep       |
//! | Poly2  | memorized  | all pairs   | —                       | shallow    |
//! | FM     | factorized | all pairs   | `<e_i, e_j>`            | shallow    |
//! | FwFM   | factorized | all pairs   | `<e_i, e_j> w_(i,j)`    | shallow    |
//! | FmFM   | factorized | all pairs   | `e_i W_(i,j) e_j^T`     | shallow    |
//! | IPNN   | factorized | all pairs   | `<e_i, e_j>`            | deep       |
//! | OPNN   | factorized | all pairs   | outer product           | deep       |
//! | DeepFM | factorized | all pairs   | `<e_i, e_j>`            | deep       |
//! | PIN    | factorized | all pairs   | per-pair micro network  | deep       |
//! | AutoFIS| hybrid     | {fac, naïve}| flexible (GRDA gates)   | deep       |
//!
//! OptInter-M, OptInter-F and full OptInter live in `optinter-core`
//! (`Architecture::uniform` / the two-stage pipeline); [`zoo`] builds all
//! of them behind the uniform [`CtrModel`] interface used by the
//! experiment harness.

#![forbid(unsafe_code)]

pub mod autofis;
pub mod deepfm;
pub mod fm;
pub mod fnn;
pub mod lr;
pub mod pin;
pub mod pnn;
pub mod poly2;
pub mod runner;
pub mod traits;
pub mod zoo;

pub use autofis::AutoFis;
pub use deepfm::DeepFm;
pub use fm::{Fm, FmFm, FwFm};
pub use fnn::Fnn;
pub use lr::Lr;
pub use pin::Pin;
pub use pnn::{Ipnn, Opnn};
pub use poly2::Poly2;
pub use runner::{evaluate_model, run_model, train_model, RunReport};
pub use traits::{BaselineConfig, Category, CtrModel, Taxonomy};
pub use zoo::{build_model, ModelKind};
