//! Logistic regression (paper baseline "LR"): a naïve shallow model —
//! `logit = b + Σ_f w[x_f]` over one-hot original features.

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::Batch;
use optinter_nn::{Adam, DenseOptimizer, EmbeddingTable, Parameter};
use optinter_tensor::{numerics, Matrix};

/// Logistic regression over one-hot original features.
pub struct Lr {
    /// Per-feature-value weights, stored as a dim-1 embedding table so the
    /// sparse Adam machinery applies.
    weights: EmbeddingTable,
    bias: Parameter,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    /// Scratch reused across train steps so steady-state training is
    /// allocation-free (proven by `tests/alloc_steady_state.rs`).
    logits_scratch: Vec<f32>,
    grad_rows: Matrix,
    ids_scratch: Vec<u32>,
}

impl Lr {
    /// Creates an LR model for a global vocabulary size.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        // Zero init: LR starts at the base rate, standard for linear CTR.
        let weights = EmbeddingTable::zeros(orig_vocab as usize, 1);
        Self {
            weights,
            bias: Parameter::zeros(1, 1),
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            logits_scratch: Vec::new(),
            grad_rows: Matrix::zeros(0, 1),
            ids_scratch: Vec::new(),
        }
    }

    fn logits_into(&self, batch: &Batch, out: &mut Vec<f32>) {
        let m = self.num_fields;
        let b = batch.len();
        let bias = self.bias.value.get(0, 0);
        out.clear();
        out.reserve(b);
        for r in 0..b {
            let mut z = bias;
            for f in 0..m {
                z += self.weights.row(batch.fields[r * m + f])[0];
            }
            out.push(z);
        }
    }

    fn logits(&self, batch: &Batch) -> Vec<f32> {
        let mut out = Vec::new();
        self.logits_into(batch, &mut out);
        out
    }
}

impl CtrModel for Lr {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Naive,
            methods: "{n}",
            factorization_fn: "-",
            classifier: "Shallow",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let b = batch.len();
        let mut logits = std::mem::take(&mut self.logits_scratch);
        self.logits_into(batch, &mut logits);
        let inv_b = 1.0 / b as f32;
        let mut loss = 0.0f32;
        self.grad_rows.reset(b, 1);
        let mut dbias = 0.0f32;
        for (r, &z) in logits.iter().enumerate().take(b) {
            let y = batch.labels[r];
            loss += numerics::stable_bce(z, y);
            let g = numerics::stable_bce_grad(z, y) * inv_b;
            self.grad_rows.set(r, 0, g);
            dbias += g;
        }
        // Each field contributes gradient g to its weight.
        for f in 0..m {
            self.ids_scratch.clear();
            self.ids_scratch
                .extend((0..b).map(|r| batch.fields[r * m + f]));
            self.weights
                .accumulate_grad(&self.ids_scratch, &self.grad_rows);
        }
        self.bias.grad.set(0, 0, dbias);
        self.adam.begin_step();
        self.weights.apply_adam(&self.adam, self.l2);
        let mut adam = self.adam;
        adam.step(&mut self.bias, 0.0);
        self.logits_scratch = logits;
        loss * inv_b
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.logits(batch)
            .iter()
            .map(|&z| numerics::sigmoid(z))
            .collect()
    }

    fn num_params(&mut self) -> usize {
        self.weights.num_params() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{evaluate_model, train_model};
    use optinter_data::Profile;

    #[test]
    fn lr_learns_main_effects() {
        let bundle = Profile::Tiny.bundle_with_rows(3000, 2);
        let cfg = BaselineConfig::test_small();
        let mut model = Lr::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        train_model(&mut model, &bundle, &cfg);
        let eval = evaluate_model(
            &mut model,
            &bundle,
            bundle.split.test.clone(),
            cfg.batch_size,
        );
        assert!(eval.auc > 0.55, "LR AUC {} should beat chance", eval.auc);
    }

    #[test]
    fn param_count_is_vocab_plus_bias() {
        let bundle = Profile::Tiny.bundle_with_rows(500, 3);
        let cfg = BaselineConfig::test_small();
        let mut model = Lr::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        assert_eq!(model.num_params(), bundle.data.orig_vocab as usize + 1);
    }

    #[test]
    fn initial_prediction_is_half() {
        let bundle = Profile::Tiny.bundle_with_rows(200, 4);
        let cfg = BaselineConfig::test_small();
        let mut model = Lr::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let batch = optinter_data::BatchIter::new(&bundle.data, 0..8, 8, None)
            .next()
            .unwrap();
        for p in model.predict(&batch) {
            assert!((p - 0.5).abs() < 1e-6);
        }
    }
}
