//! DeepFM (Guo et al. 2017): an FM component and a deep MLP sharing one
//! embedding table; the two logits are summed (paper Table III: factorized,
//! `<e_i, e_j>`, deep classifier).

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::Batch;
use optinter_nn::{loss, Adam, DenseOptimizer, EmbeddingTable, Layer, Mlp, MlpConfig, Parameter};
use optinter_tensor::{numerics, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DeepFM: shared-embedding FM + MLP.
pub struct DeepFm {
    linear: EmbeddingTable,
    emb: EmbeddingTable,
    bias: Parameter,
    mlp: Mlp,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    dim: usize,
    // Persistent step buffers: overwritten in full every batch so the
    // steady-state train step reuses their capacity.
    emb_buf: Matrix,
    deep_logits: Matrix,
    grad: Matrix,
    grad_rows: Matrix,
    d_emb: Matrix,
    fm: Vec<f32>,
    ids: Vec<u32>,
}

impl DeepFm {
    /// Creates a DeepFM for the dataset's vocabulary.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEEF);
        let k = cfg.embed_dim;
        let emb = EmbeddingTable::new(&mut rng, orig_vocab as usize, k);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: num_fields * k,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        mlp.set_pool(&optinter_tensor::Pool::new(cfg.num_threads));
        Self {
            linear: EmbeddingTable::zeros(orig_vocab as usize, 1),
            emb,
            bias: Parameter::zeros(1, 1),
            mlp,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            dim: k,
            emb_buf: Matrix::zeros(0, 0),
            deep_logits: Matrix::zeros(0, 0),
            grad: Matrix::zeros(0, 0),
            grad_rows: Matrix::zeros(0, 0),
            d_emb: Matrix::zeros(0, 0),
            fm: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// FM-component logits into `out`, reading the embeddings the last
    /// lookup left in `self.emb_buf` (shared with the MLP).
    fn fm_logits_into(&self, batch: &Batch, out: &mut Vec<f32>) {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        let bias = self.bias.value.get(0, 0);
        out.clear();
        out.reserve(b);
        for r in 0..b {
            let mut z = bias;
            for f in 0..m {
                z += self.linear.row(batch.fields[r * m + f])[0];
            }
            let row = self.emb_buf.row(r);
            for c in 0..k {
                let mut s = 0.0f32;
                let mut q = 0.0f32;
                for f in 0..m {
                    let v = row[f * k + c];
                    s += v;
                    q += v * v;
                }
                z += 0.5 * (s * s - q);
            }
            out.push(z);
        }
    }
}

impl CtrModel for DeepFm {
    fn name(&self) -> &'static str {
        "DeepFM"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Factorized,
            methods: "{f}",
            factorization_fn: "<e_i, e_j>",
            classifier: "Deep",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        self.emb
            .lookup_fields_into(&batch.fields, m, &mut self.emb_buf);
        self.mlp.forward_into(&self.emb_buf, &mut self.deep_logits);
        let mut fm = std::mem::take(&mut self.fm);
        self.fm_logits_into(batch, &mut fm);
        let inv_b = 1.0 / b as f32;
        let mut loss_value = 0.0f32;
        self.grad.reset(b, 1);
        self.grad_rows.reset(b, 1);
        let mut dbias = 0.0f32;
        for (r, &fm_logit) in fm.iter().enumerate().take(b) {
            let z = self.deep_logits.get(r, 0) + fm_logit;
            let y = batch.labels[r];
            loss_value += numerics::stable_bce(z, y);
            let g = numerics::stable_bce_grad(z, y) * inv_b;
            self.grad.set(r, 0, g);
            self.grad_rows.set(r, 0, g);
            dbias += g;
        }
        self.fm = fm;
        // Deep path.
        {
            let (emb_buf, grad) = (&self.emb_buf, &self.grad);
            self.mlp.backward_into(emb_buf, grad, &mut self.d_emb);
        }
        // FM path: dv_i += g * (S - v_i) per coordinate.
        for r in 0..b {
            let g = self.grad.get(r, 0);
            let row = self.emb_buf.row(r);
            let d_row = self.d_emb.row_mut(r);
            for c in 0..k {
                let mut s = 0.0f32;
                for f in 0..m {
                    s += row[f * k + c];
                }
                for f in 0..m {
                    d_row[f * k + c] += g * (s - row[f * k + c]);
                }
            }
        }
        for f in 0..m {
            self.ids.clear();
            self.ids.extend((0..b).map(|r| batch.fields[r * m + f]));
            self.linear.accumulate_grad(&self.ids, &self.grad_rows);
        }
        self.emb
            .accumulate_grad_fields(&batch.fields, m, &self.d_emb);
        self.bias.grad.set(0, 0, dbias);
        self.adam.begin_step();
        let mut adam = self.adam;
        self.mlp.visit_params(&mut |p| adam.step(p, 0.0));
        adam.step(&mut self.bias, 0.0);
        self.adam = adam;
        self.linear.apply_adam(&self.adam, 0.0);
        self.emb.apply_adam(&self.adam, self.l2);
        loss_value * inv_b
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.emb
            .lookup_fields_into(&batch.fields, self.num_fields, &mut self.emb_buf);
        self.mlp.forward_into(&self.emb_buf, &mut self.deep_logits);
        let mut fm = std::mem::take(&mut self.fm);
        self.fm_logits_into(batch, &mut fm);
        for (r, &fm_logit) in fm.iter().enumerate() {
            let z = self.deep_logits.get(r, 0) + fm_logit;
            self.deep_logits.set(r, 0, z);
        }
        self.fm = fm;
        loss::probabilities(&self.deep_logits)
    }

    fn num_params(&mut self) -> usize {
        self.linear.num_params() + self.emb.num_params() + 1 + self.mlp.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_model;
    use optinter_data::Profile;

    #[test]
    fn deepfm_trains_and_beats_chance() {
        let bundle = Profile::Tiny.bundle_with_rows(4000, 21);
        let cfg = BaselineConfig::test_small();
        let mut model = DeepFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let r = run_model(&mut model, &bundle, &cfg);
        assert!(r.auc > 0.6, "DeepFM AUC {}", r.auc);
    }

    #[test]
    fn shares_one_embedding_table() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 22);
        let cfg = BaselineConfig::test_small();
        let mut model = DeepFm::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let vocab = bundle.data.orig_vocab as usize;
        // One dense table + one linear table, no duplicate embeddings.
        let expected_emb = vocab * cfg.embed_dim + vocab + 1;
        assert!(model.num_params() > expected_emb);
        assert!(model.num_params() < expected_emb + 2 * vocab * cfg.embed_dim);
    }
}
