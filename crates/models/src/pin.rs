//! PIN — Product-network In Network (Qu et al. 2019): each feature pair is
//! processed by its own micro network over `[e_i, e_j, e_i ⊙ e_j]`, and the
//! micro-network outputs are concatenated with the original embeddings and
//! fed to the top MLP. The micro network is the paper's "net(e_i, e_j)"
//! learnable factorization function (Table III).

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::{Batch, PairIndexer};
use optinter_nn::{
    bce_with_logits, loss, Adam, DenseOptimizer, EmbeddingTable, Layer, Mlp, MlpConfig,
};
use optinter_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PIN: per-pair micro networks + top MLP.
pub struct Pin {
    emb: EmbeddingTable,
    subnets: Vec<Mlp>,
    top: Mlp,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    dim: usize,
    sub_out: usize,
    pairs: PairIndexer,
}

impl Pin {
    /// Creates a PIN. `cfg.subnet` gives the micro-network shape: all but
    /// the last entry are hidden widths, the last is the output width
    /// (Table IV: `sub-net=[40,5]`).
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        assert!(
            cfg.subnet.len() >= 2,
            "PIN subnet needs at least [hidden, out]"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x914);
        let k = cfg.embed_dim;
        let pairs = PairIndexer::new(num_fields);
        let sub_hidden: Vec<usize> = cfg.subnet[..cfg.subnet.len() - 1].to_vec();
        let sub_out = *cfg.subnet.last().expect("subnet non-empty");
        let pool = optinter_tensor::Pool::new(cfg.num_threads);
        let subnets: Vec<Mlp> = (0..pairs.num_pairs())
            .map(|_| {
                let mut sub = Mlp::new(
                    &mut rng,
                    &MlpConfig {
                        input_dim: 3 * k,
                        hidden: sub_hidden.clone(),
                        output_dim: sub_out,
                        layer_norm: cfg.layer_norm,
                        ln_eps: 1e-5,
                    },
                );
                sub.set_pool(&pool);
                sub
            })
            .collect();
        let mut top = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: num_fields * k + pairs.num_pairs() * sub_out,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        top.set_pool(&pool);
        let emb = EmbeddingTable::new(&mut rng, orig_vocab as usize, k);
        Self {
            emb,
            subnets,
            top,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            dim: k,
            sub_out,
            pairs,
        }
    }

    /// Builds the per-pair micro-network inputs `[e_i | e_j | e_i ⊙ e_j]`.
    fn pair_input(&self, emb: &Matrix, i: usize, j: usize) -> Matrix {
        let k = self.dim;
        let b = emb.rows();
        let mut x = Matrix::zeros(b, 3 * k);
        for r in 0..b {
            let row = emb.row(r);
            let dst = x.row_mut(r);
            for c in 0..k {
                let (vi, vj) = (row[i * k + c], row[j * k + c]);
                dst[c] = vi;
                dst[k + c] = vj;
                dst[2 * k + c] = vi * vj;
            }
        }
        x
    }

    fn forward(&mut self, batch: &Batch) -> (Matrix, Matrix) {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        let emb = self.emb.lookup_fields(&batch.fields, m);
        let mut input = Matrix::zeros(b, m * k + self.pairs.num_pairs() * self.sub_out);
        input.copy_block_from(&emb, 0);
        let pair_list: Vec<(usize, usize)> = self.pairs.iter().collect();
        for (p, &(i, j)) in pair_list.iter().enumerate() {
            let x = self.pair_input(&emb, i, j);
            let out = self.subnets[p].forward(&x);
            input.copy_block_from(&out, m * k + p * self.sub_out);
        }
        let logits = self.top.forward(&input);
        (logits, emb)
    }
}

impl CtrModel for Pin {
    fn name(&self) -> &'static str {
        "PIN"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Factorized,
            methods: "{f}",
            factorization_fn: "net(e_i, e_j)",
            classifier: "Deep",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let k = self.dim;
        let (logits, emb) = self.forward(batch);
        let (loss_value, grad) = bce_with_logits(&logits, &batch.labels);
        let d_input = self.top.backward(&grad);
        let mut d_emb = d_input.block(0, m * k);
        let pair_list: Vec<(usize, usize)> = self.pairs.iter().collect();
        for (p, &(i, j)) in pair_list.iter().enumerate() {
            let d_out = d_input.block(m * k + p * self.sub_out, self.sub_out);
            let d_x = self.subnets[p].backward(&d_out);
            // Split the micro-net input gradient back onto the embeddings.
            for r in 0..d_x.rows() {
                let row = emb.row(r);
                let g = d_x.row(r);
                let d_row = d_emb.row_mut(r);
                for c in 0..k {
                    let (vi, vj) = (row[i * k + c], row[j * k + c]);
                    d_row[i * k + c] += g[c] + g[2 * k + c] * vj;
                    d_row[j * k + c] += g[k + c] + g[2 * k + c] * vi;
                }
            }
        }
        self.emb.accumulate_grad_fields(&batch.fields, m, &d_emb);
        self.adam.begin_step();
        let mut adam = self.adam.clone();
        self.top.visit_params(&mut |p| adam.step(p, 0.0));
        for subnet in self.subnets.iter_mut() {
            subnet.visit_params(&mut |p| adam.step(p, 0.0));
        }
        self.adam = adam;
        self.emb.apply_adam(&self.adam, self.l2);
        loss_value
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        let (logits, _) = self.forward(batch);
        loss::probabilities(&logits)
    }

    fn num_params(&mut self) -> usize {
        let sub: usize = self.subnets.iter_mut().map(|s| s.num_params()).sum();
        self.emb.num_params() + sub + self.top.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_model;
    use optinter_data::Profile;

    #[test]
    fn pin_trains_and_beats_chance() {
        let bundle = Profile::Tiny.bundle_with_rows(3000, 25);
        let cfg = BaselineConfig::test_small();
        let mut model = Pin::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let r = run_model(&mut model, &bundle, &cfg);
        assert!(r.auc > 0.58, "PIN AUC {}", r.auc);
    }

    #[test]
    fn has_one_subnet_per_pair() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 26);
        let cfg = BaselineConfig::test_small();
        let pin = Pin::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        assert_eq!(pin.subnets.len(), bundle.data.num_pairs);
    }

    #[test]
    #[should_panic(expected = "subnet needs at least")]
    fn rejects_degenerate_subnet() {
        let cfg = BaselineConfig {
            subnet: vec![5],
            ..BaselineConfig::test_small()
        };
        let _ = Pin::new(&cfg, 100, 4);
    }
}
