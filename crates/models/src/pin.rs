//! PIN — Product-network In Network (Qu et al. 2019): each feature pair is
//! processed by its own micro network over `[e_i, e_j, e_i ⊙ e_j]`, and the
//! micro-network outputs are concatenated with the original embeddings and
//! fed to the top MLP. The micro network is the paper's "net(e_i, e_j)"
//! learnable factorization function (Table III).

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::{Batch, PairIndexer};
use optinter_nn::{
    bce_with_logits_into, loss, Adam, DenseOptimizer, EmbeddingTable, Layer, Mlp, MlpConfig,
};
use optinter_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PIN: per-pair micro networks + top MLP.
pub struct Pin {
    emb: EmbeddingTable,
    subnets: Vec<Mlp>,
    top: Mlp,
    adam: Adam,
    l2: f32,
    num_fields: usize,
    dim: usize,
    sub_out: usize,
    pairs: PairIndexer,
    /// `(i, j)` field indices of every pair, precomputed once.
    pair_list: Vec<(usize, usize)>,
    // Persistent step buffers: overwritten in full every batch so the
    // steady-state train step reuses their capacity.
    emb_buf: Matrix,
    input: Matrix,
    logits: Matrix,
    grad: Matrix,
    dinput: Matrix,
    d_emb: Matrix,
    /// Per-pair micro-network inputs, held from forward to backward.
    pair_x: Vec<Matrix>,
    sub_out_buf: Matrix,
    d_out: Matrix,
    d_x: Matrix,
}

impl Pin {
    /// Creates a PIN. `cfg.subnet` gives the micro-network shape: all but
    /// the last entry are hidden widths, the last is the output width
    /// (Table IV: `sub-net=[40,5]`).
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        assert!(
            cfg.subnet.len() >= 2,
            "PIN subnet needs at least [hidden, out]"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x914);
        let k = cfg.embed_dim;
        let pairs = PairIndexer::new(num_fields);
        let sub_hidden: Vec<usize> = cfg.subnet[..cfg.subnet.len() - 1].to_vec();
        let sub_out = *cfg.subnet.last().expect("subnet non-empty");
        let pool = optinter_tensor::Pool::new(cfg.num_threads);
        let subnets: Vec<Mlp> = (0..pairs.num_pairs())
            .map(|_| {
                let mut sub = Mlp::new(
                    &mut rng,
                    &MlpConfig {
                        input_dim: 3 * k,
                        hidden: sub_hidden.clone(),
                        output_dim: sub_out,
                        layer_norm: cfg.layer_norm,
                        ln_eps: 1e-5,
                    },
                );
                sub.set_pool(&pool);
                sub
            })
            .collect();
        let mut top = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: num_fields * k + pairs.num_pairs() * sub_out,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        top.set_pool(&pool);
        let emb = EmbeddingTable::new(&mut rng, orig_vocab as usize, k);
        let pair_list: Vec<(usize, usize)> = pairs.iter().collect();
        let pair_x = (0..pairs.num_pairs())
            .map(|_| Matrix::zeros(0, 0))
            .collect();
        Self {
            emb,
            subnets,
            top,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            l2: cfg.l2,
            num_fields,
            dim: k,
            sub_out,
            pairs,
            pair_list,
            emb_buf: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            grad: Matrix::zeros(0, 0),
            dinput: Matrix::zeros(0, 0),
            d_emb: Matrix::zeros(0, 0),
            pair_x,
            sub_out_buf: Matrix::zeros(0, 0),
            d_out: Matrix::zeros(0, 0),
            d_x: Matrix::zeros(0, 0),
        }
    }

    /// Forward pass into the persistent scratch buffers; `self.logits`
    /// holds the `[B, 1]` logits afterwards. Each pair's micro-network
    /// input `[e_i | e_j | e_i ⊙ e_j]` is kept in `self.pair_x[p]` for the
    /// backward pass.
    fn forward_step(&mut self, batch: &Batch) {
        let m = self.num_fields;
        let k = self.dim;
        let b = batch.len();
        self.emb
            .lookup_fields_into(&batch.fields, m, &mut self.emb_buf);
        self.input
            .reset(b, m * k + self.pairs.num_pairs() * self.sub_out);
        self.input.copy_block_from(&self.emb_buf, 0);
        for (p, &(i, j)) in self.pair_list.iter().enumerate() {
            let x = &mut self.pair_x[p];
            x.reset(b, 3 * k);
            for r in 0..b {
                let row = self.emb_buf.row(r);
                let dst = x.row_mut(r);
                for c in 0..k {
                    let (vi, vj) = (row[i * k + c], row[j * k + c]);
                    dst[c] = vi;
                    dst[k + c] = vj;
                    dst[2 * k + c] = vi * vj;
                }
            }
            self.subnets[p].forward_into(&self.pair_x[p], &mut self.sub_out_buf);
            self.input
                .copy_block_from(&self.sub_out_buf, m * k + p * self.sub_out);
        }
        let (input, logits) = (&self.input, &mut self.logits);
        self.top.forward_into(input, logits);
    }
}

impl CtrModel for Pin {
    fn name(&self) -> &'static str {
        "PIN"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Factorized,
            methods: "{f}",
            factorization_fn: "net(e_i, e_j)",
            classifier: "Deep",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let k = self.dim;
        self.forward_step(batch);
        let loss_value = bce_with_logits_into(&self.logits, &batch.labels, &mut self.grad);
        {
            let (input, grad) = (&self.input, &self.grad);
            self.top.backward_into(input, grad, &mut self.dinput);
        }
        self.dinput.block_into(0, m * k, &mut self.d_emb);
        for (p, &(i, j)) in self.pair_list.iter().enumerate() {
            self.dinput
                .block_into(m * k + p * self.sub_out, self.sub_out, &mut self.d_out);
            self.subnets[p].backward_into(&self.pair_x[p], &self.d_out, &mut self.d_x);
            // Split the micro-net input gradient back onto the embeddings.
            for r in 0..self.d_x.rows() {
                let row = self.emb_buf.row(r);
                let g = self.d_x.row(r);
                let d_row = self.d_emb.row_mut(r);
                for c in 0..k {
                    let (vi, vj) = (row[i * k + c], row[j * k + c]);
                    d_row[i * k + c] += g[c] + g[2 * k + c] * vj;
                    d_row[j * k + c] += g[k + c] + g[2 * k + c] * vi;
                }
            }
        }
        self.emb
            .accumulate_grad_fields(&batch.fields, m, &self.d_emb);
        self.adam.begin_step();
        let mut adam = self.adam;
        self.top.visit_params(&mut |p| adam.step(p, 0.0));
        for subnet in self.subnets.iter_mut() {
            subnet.visit_params(&mut |p| adam.step(p, 0.0));
        }
        self.adam = adam;
        self.emb.apply_adam(&self.adam, self.l2);
        loss_value
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.forward_step(batch);
        loss::probabilities(&self.logits)
    }

    fn num_params(&mut self) -> usize {
        let sub: usize = self.subnets.iter_mut().map(|s| s.num_params()).sum();
        self.emb.num_params() + sub + self.top.num_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_model;
    use optinter_data::Profile;

    #[test]
    fn pin_trains_and_beats_chance() {
        let bundle = Profile::Tiny.bundle_with_rows(3000, 25);
        let cfg = BaselineConfig::test_small();
        let mut model = Pin::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let r = run_model(&mut model, &bundle, &cfg);
        assert!(r.auc > 0.58, "PIN AUC {}", r.auc);
    }

    #[test]
    fn has_one_subnet_per_pair() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 26);
        let cfg = BaselineConfig::test_small();
        let pin = Pin::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        assert_eq!(pin.subnets.len(), bundle.data.num_pairs);
    }

    #[test]
    #[should_panic(expected = "subnet needs at least")]
    fn rejects_degenerate_subnet() {
        let cfg = BaselineConfig {
            subnet: vec![5],
            ..BaselineConfig::test_small()
        };
        let _ = Pin::new(&cfg, 100, 4);
    }
}
