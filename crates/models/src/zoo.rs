//! Uniform construction of every model in the zoo.

use crate::autofis::AutoFis;
use crate::deepfm::DeepFm;
use crate::fm::{Fm, FmFm, FwFm};
use crate::fnn::Fnn;
use crate::lr::Lr;
use crate::pin::Pin;
use crate::pnn::{Ipnn, Opnn};
use crate::poly2::Poly2;
use crate::traits::{BaselineConfig, CtrModel};
use optinter_data::EncodedDataset;

/// Identifier for every baseline the harness can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression.
    Lr,
    /// Deep network over raw embeddings.
    Fnn,
    /// Factorization machine.
    Fm,
    /// Field-weighted FM.
    FwFm,
    /// Field-matrixed FM.
    FmFm,
    /// Inner-product neural network.
    Ipnn,
    /// Outer-product neural network.
    Opnn,
    /// FM + deep network with shared embeddings.
    DeepFm,
    /// Product-network-in-network.
    Pin,
    /// Degree-2 polynomial logistic regression.
    Poly2,
    /// Gated interaction selection (search phase; see
    /// [`run_autofis`](crate::autofis::run_autofis) for the full pipeline).
    AutoFis,
}

impl ModelKind {
    /// The baselines of the paper's Table V, in its row order (the OptInter
    /// variants are built through `optinter-core` instead).
    pub fn table5_baselines() -> [ModelKind; 8] {
        [
            ModelKind::Lr,
            ModelKind::Fnn,
            ModelKind::Fm,
            ModelKind::Ipnn,
            ModelKind::DeepFm,
            ModelKind::Pin,
            ModelKind::Poly2,
            ModelKind::AutoFis,
        ]
    }

    /// Every baseline in the zoo (Table III scope).
    pub fn all() -> [ModelKind; 11] {
        [
            ModelKind::Lr,
            ModelKind::Fnn,
            ModelKind::Fm,
            ModelKind::FwFm,
            ModelKind::FmFm,
            ModelKind::Ipnn,
            ModelKind::Opnn,
            ModelKind::DeepFm,
            ModelKind::Pin,
            ModelKind::Poly2,
            ModelKind::AutoFis,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Lr => "LR",
            ModelKind::Fnn => "FNN",
            ModelKind::Fm => "FM",
            ModelKind::FwFm => "FwFM",
            ModelKind::FmFm => "FmFM",
            ModelKind::Ipnn => "IPNN",
            ModelKind::Opnn => "OPNN",
            ModelKind::DeepFm => "DeepFM",
            ModelKind::Pin => "PIN",
            ModelKind::Poly2 => "Poly2",
            ModelKind::AutoFis => "AutoFIS",
        }
    }
}

/// Builds a model of the given kind sized for a dataset.
pub fn build_model(
    kind: ModelKind,
    cfg: &BaselineConfig,
    data: &EncodedDataset,
) -> Box<dyn CtrModel> {
    let vocab = data.orig_vocab;
    let m = data.num_fields;
    match kind {
        ModelKind::Lr => Box::new(Lr::new(cfg, vocab, m)),
        ModelKind::Fnn => Box::new(Fnn::new(cfg, vocab, m)),
        ModelKind::Fm => Box::new(Fm::new(cfg, vocab, m)),
        ModelKind::FwFm => Box::new(FwFm::new(cfg, vocab, m)),
        ModelKind::FmFm => Box::new(FmFm::new(cfg, vocab, m)),
        ModelKind::Ipnn => Box::new(Ipnn::new(cfg, vocab, m)),
        ModelKind::Opnn => Box::new(Opnn::new(cfg, vocab, m)),
        ModelKind::DeepFm => Box::new(DeepFm::new(cfg, vocab, m)),
        ModelKind::Pin => Box::new(Pin::new(cfg, vocab, m)),
        ModelKind::Poly2 => Box::new(Poly2::new(cfg, vocab, data.cross_vocab, m, data.num_pairs)),
        ModelKind::AutoFis => Box::new(AutoFis::new(cfg, vocab, m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_data::Profile;

    #[test]
    fn every_model_builds_and_predicts() {
        let bundle = Profile::Tiny.bundle_with_rows(400, 33);
        let cfg = BaselineConfig::test_small();
        let batch = optinter_data::BatchIter::new(&bundle.data, 0..16, 16, None)
            .next()
            .unwrap();
        for kind in ModelKind::all() {
            let mut model = build_model(kind, &cfg, &bundle.data);
            assert_eq!(model.name(), kind.name());
            let probs = model.predict(&batch);
            assert_eq!(probs.len(), 16, "{}", model.name());
            assert!(
                probs
                    .iter()
                    .all(|&p| (0.0..=1.0).contains(&p) && p.is_finite()),
                "{} produced invalid probabilities",
                model.name()
            );
            assert!(model.num_params() > 0);
        }
    }

    #[test]
    fn every_model_takes_a_training_step() {
        let bundle = Profile::Tiny.bundle_with_rows(400, 34);
        let cfg = BaselineConfig::test_small();
        let batch = optinter_data::BatchIter::new(&bundle.data, 0..64, 64, None)
            .next()
            .unwrap();
        for kind in ModelKind::all() {
            let mut model = build_model(kind, &cfg, &bundle.data);
            let loss = model.train_batch(&batch);
            assert!(
                loss.is_finite() && loss > 0.0,
                "{}: loss {loss}",
                model.name()
            );
        }
    }

    #[test]
    fn taxonomy_covers_all_categories() {
        use crate::traits::Category;
        let bundle = Profile::Tiny.bundle_with_rows(300, 35);
        let cfg = BaselineConfig::test_small();
        let mut seen = std::collections::HashSet::new();
        for kind in ModelKind::all() {
            let model = build_model(kind, &cfg, &bundle.data);
            seen.insert(model.taxonomy().category);
        }
        for cat in [
            Category::Naive,
            Category::Memorized,
            Category::Factorized,
            Category::Hybrid,
        ] {
            assert!(seen.contains(&cat), "missing category {cat:?}");
        }
    }
}
