//! AutoFIS (Liu et al. 2020): automatic feature-interaction *selection*.
//!
//! An IPNN-style network where every pairwise inner product is multiplied
//! by a gate `α_p`. The gates are trained with the GRDA optimizer, whose
//! directional pruning drives unimportant gates to exactly zero — those
//! pairs are dropped (naïve), the rest stay factorized. AutoFIS therefore
//! searches the `{factorized, naive}` subspace of OptInter (paper Table
//! III: hybrid, `{n, f}`), never considering memorization.
//!
//! [`run_autofis`] performs the full two-phase procedure: gate search with
//! GRDA, then re-training from scratch with the selected pairs only.

use crate::traits::{BaselineConfig, Category, CtrModel, Taxonomy};
use optinter_data::{Batch, DatasetBundle, PairIndexer};
use optinter_nn::{
    bce_with_logits_into, loss, Adam, DenseOptimizer, EmbeddingTable, Grda, GrdaConfig, Layer, Mlp,
    MlpConfig, Parameter,
};
use optinter_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// AutoFIS model. In search mode the gates are GRDA-trained; in re-train
/// mode they are frozen to the 0/1 selection mask.
pub struct AutoFis {
    emb: EmbeddingTable,
    mlp: Mlp,
    /// Interaction gates `α`, shape `[P, 1]`.
    gates: Parameter,
    /// `None` while searching; `Some(mask)` when re-training with a fixed
    /// selection.
    fixed_mask: Option<Vec<bool>>,
    adam: Adam,
    grda: Grda,
    l2: f32,
    num_fields: usize,
    dim: usize,
    pairs: PairIndexer,
    // Persistent step buffers: overwritten in full every batch so the
    // steady-state train step reuses their capacity.
    emb_buf: Matrix,
    input: Matrix,
    logits: Matrix,
    grad: Matrix,
    dinput: Matrix,
    d_emb: Matrix,
    /// Raw (ungated) inner products, cached for the gate gradient.
    raw_ips: Vec<f32>,
}

impl AutoFis {
    /// Creates an AutoFIS model in search mode.
    pub fn new(cfg: &BaselineConfig, orig_vocab: u32, num_fields: usize) -> Self {
        Self::build(cfg, orig_vocab, num_fields, None)
    }

    /// Creates an AutoFIS model in re-train mode with a fixed selection.
    pub fn retrain(
        cfg: &BaselineConfig,
        orig_vocab: u32,
        num_fields: usize,
        mask: Vec<bool>,
    ) -> Self {
        Self::build(cfg, orig_vocab, num_fields, Some(mask))
    }

    fn build(
        cfg: &BaselineConfig,
        orig_vocab: u32,
        num_fields: usize,
        fixed_mask: Option<Vec<bool>>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAF15);
        let k = cfg.embed_dim;
        let pairs = PairIndexer::new(num_fields);
        if let Some(mask) = &fixed_mask {
            assert_eq!(mask.len(), pairs.num_pairs(), "mask must cover every pair");
        }
        let emb = EmbeddingTable::new(&mut rng, orig_vocab as usize, k);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: num_fields * k + pairs.num_pairs(),
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        mlp.set_pool(&optinter_tensor::Pool::new(cfg.num_threads));
        // Search mode: gates start at 0 so GRDA's dual accumulator starts
        // at the pruning threshold — gates that receive consistent signal
        // escape it, idle gates stay exactly zero (directional pruning).
        // Re-train mode never reads the trainable gates.
        let gates = Parameter::new(Matrix::zeros(pairs.num_pairs(), 1));
        Self {
            emb,
            mlp,
            gates,
            fixed_mask,
            adam: Adam::with_lr_eps(cfg.lr, cfg.adam_eps),
            grda: Grda::new(GrdaConfig {
                lr: cfg.lr,
                c: cfg.grda_c,
                mu: cfg.grda_mu,
            }),
            l2: cfg.l2,
            num_fields,
            dim: k,
            pairs,
            emb_buf: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            grad: Matrix::zeros(0, 0),
            dinput: Matrix::zeros(0, 0),
            d_emb: Matrix::zeros(0, 0),
            raw_ips: Vec::new(),
        }
    }

    /// Forward pass into the persistent scratch buffers; `self.logits`
    /// holds the `[B, 1]` logits afterwards.
    fn forward_step(&mut self, batch: &Batch) {
        let m = self.num_fields;
        let k = self.dim;
        let np = self.pairs.num_pairs();
        let b = batch.len();
        self.emb
            .lookup_fields_into(&batch.fields, m, &mut self.emb_buf);
        self.input.reset(b, m * k + np);
        self.input.copy_block_from(&self.emb_buf, 0);
        self.raw_ips.clear();
        self.raw_ips.resize(b * np, 0.0);
        let fixed_mask = self.fixed_mask.as_deref();
        let gates_val = &self.gates.value;
        for r in 0..b {
            let row = self.emb_buf.row(r);
            let dst = self.input.row_mut(r);
            for (p, (i, j)) in self.pairs.iter().enumerate() {
                let mut dot = 0.0f32;
                for c in 0..k {
                    dot += row[i * k + c] * row[j * k + c];
                }
                self.raw_ips[r * np + p] = dot;
                let gate = match fixed_mask {
                    Some(mask) => {
                        if mask[p] {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    None => gates_val.get(p, 0),
                };
                dst[m * k + p] = gate * dot;
            }
        }
        let (input, logits) = (&self.input, &mut self.logits);
        self.mlp.forward_into(input, logits);
    }

    /// Current selection: `true` where the gate is non-zero.
    pub fn selection(&self) -> Vec<bool> {
        match &self.fixed_mask {
            Some(mask) => mask.clone(),
            None => (0..self.pairs.num_pairs())
                .map(|p| self.gates.value.get(p, 0) != 0.0)
                .collect(),
        }
    }

    /// `[memorize, factorize, naive]` counts in Table VI format — AutoFIS
    /// never memorizes, so the first entry is always 0.
    pub fn selection_counts(&self) -> [usize; 3] {
        let sel = self.selection();
        let kept = sel.iter().filter(|&&s| s).count();
        [0, kept, sel.len() - kept]
    }
}

impl CtrModel for AutoFis {
    fn name(&self) -> &'static str {
        "AutoFIS"
    }

    fn taxonomy(&self) -> Taxonomy {
        Taxonomy {
            category: Category::Hybrid,
            methods: "{n,f}",
            factorization_fn: "flexible",
            classifier: "Deep",
        }
    }

    fn train_batch(&mut self, batch: &Batch) -> f32 {
        let m = self.num_fields;
        let k = self.dim;
        let np = self.pairs.num_pairs();
        self.forward_step(batch);
        let loss_value = bce_with_logits_into(&self.logits, &batch.labels, &mut self.grad);
        {
            let (input, grad) = (&self.input, &self.grad);
            self.mlp.backward_into(input, grad, &mut self.dinput);
        }
        self.dinput.block_into(0, m * k, &mut self.d_emb);
        let fixed_mask = self.fixed_mask.as_deref();
        let gates_val = &self.gates.value;
        let gates_grad = &mut self.gates.grad;
        for r in 0..self.dinput.rows() {
            let row = self.emb_buf.row(r);
            let g_row = self.dinput.row(r);
            let d_row = self.d_emb.row_mut(r);
            for (p, (i, j)) in self.pairs.iter().enumerate() {
                let g_ip = g_row[m * k + p];
                let gate = match fixed_mask {
                    Some(mask) => {
                        if mask[p] {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    None => gates_val.get(p, 0),
                };
                // Gate gradient (search mode only).
                if fixed_mask.is_none() {
                    gates_grad.row_mut(p)[0] += g_ip * self.raw_ips[r * np + p];
                }
                // Embedding gradient through the gated inner product.
                let scaled = g_ip * gate;
                if scaled != 0.0 {
                    for c in 0..k {
                        d_row[i * k + c] += scaled * row[j * k + c];
                        d_row[j * k + c] += scaled * row[i * k + c];
                    }
                }
            }
        }
        self.emb
            .accumulate_grad_fields(&batch.fields, m, &self.d_emb);
        self.adam.begin_step();
        let mut adam = self.adam;
        self.mlp.visit_params(&mut |p| adam.step(p, 0.0));
        self.adam = adam;
        self.emb.apply_adam(&self.adam, self.l2);
        if self.fixed_mask.is_none() {
            self.grda.begin_step();
            let mut grda = self.grda;
            grda.step(&mut self.gates, 0.0);
            self.grda = grda;
        } else {
            self.gates.grad.fill_zero();
        }
        loss_value
    }

    fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.forward_step(batch);
        loss::probabilities(&self.logits)
    }

    fn num_params(&mut self) -> usize {
        self.emb.num_params() + self.mlp.num_params() + self.gates.len()
    }
}

/// The full AutoFIS pipeline: gate search with GRDA, then re-train from
/// scratch with the selected interactions. Returns the re-trained report
/// and the Table VI selection counts.
pub fn run_autofis(
    bundle: &DatasetBundle,
    cfg: &BaselineConfig,
) -> (crate::runner::RunReport, [usize; 3]) {
    let mut search = AutoFis::new(cfg, bundle.data.orig_vocab, bundle.data.num_fields);
    crate::runner::train_model(&mut search, bundle, cfg);
    let mask = search.selection();
    let counts = search.selection_counts();
    let mut final_model =
        AutoFis::retrain(cfg, bundle.data.orig_vocab, bundle.data.num_fields, mask);
    let report = crate::runner::run_model(&mut final_model, bundle, cfg);
    (report, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_model, train_model};
    use optinter_data::Profile;

    #[test]
    fn search_trains_and_predicts() {
        let bundle = Profile::Tiny.bundle_with_rows(3000, 27);
        let cfg = BaselineConfig::test_small();
        let mut model = AutoFis::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        let r = run_model(&mut model, &bundle, &cfg);
        assert!(r.auc > 0.58, "AutoFIS AUC {}", r.auc);
    }

    #[test]
    fn grda_prunes_some_gates_with_strong_threshold() {
        let bundle = Profile::Tiny.bundle_with_rows(2500, 28);
        let cfg = BaselineConfig {
            grda_c: 5e-2, // aggressive threshold to force pruning in 2 epochs
            grda_mu: 0.8,
            ..BaselineConfig::test_small()
        };
        let mut model = AutoFis::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        train_model(&mut model, &bundle, &cfg);
        let counts = model.selection_counts();
        assert_eq!(counts[0], 0, "AutoFIS never memorizes");
        assert!(counts[2] > 0, "expected some pruned gates: {counts:?}");
    }

    #[test]
    fn retrain_mode_has_frozen_gates() {
        let bundle = Profile::Tiny.bundle_with_rows(1000, 29);
        let cfg = BaselineConfig::test_small();
        let mask: Vec<bool> = (0..bundle.data.num_pairs).map(|p| p % 2 == 0).collect();
        let mut model = AutoFis::retrain(
            &cfg,
            bundle.data.orig_vocab,
            bundle.data.num_fields,
            mask.clone(),
        );
        train_model(&mut model, &bundle, &cfg);
        assert_eq!(model.selection(), mask);
    }

    #[test]
    fn full_pipeline_runs() {
        let bundle = Profile::Tiny.bundle_with_rows(2000, 30);
        let cfg = BaselineConfig::test_small();
        let (report, counts) = run_autofis(&bundle, &cfg);
        assert!(report.auc > 0.55);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1] + counts[2], bundle.data.num_pairs);
    }
}
