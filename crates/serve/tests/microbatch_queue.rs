//! Micro-batch queue invariants.
//!
//! Property tests drive [`optinter_serve::simulate`] — the deterministic
//! single-threaded model sharing [`BatchPolicy`] with the live batcher —
//! over arbitrary arrival/deadline/capacity sequences: no request is
//! ever lost, duplicated, or reordered, batches respect `max_batch`, and
//! no request waits past its deadline (except the shutdown drain, which
//! flushes immediately). Threaded tests then check the live [`serve`]
//! loop: ordered delivery, clean mid-flight drain on submitter drop, and
//! panic propagation out of the scope (nothing hangs).

use optinter_core::net::DataDims;
use optinter_core::{Architecture, Method, OptInterConfig, OptInterNet};
use optinter_data::{DatasetBundle, Profile};
use optinter_serve::{
    freeze, serve, simulate, BatchPolicy, FrozenScorer, ManualClock, MicroBatchOptions, Quant,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simulated_queue_never_loses_duplicates_or_reorders(
        gaps in proptest::collection::vec(0u64..200_000, 0..200),
        max_batch in 1usize..16,
        deadline_ns in 0u64..100_000,
    ) {
        let policy = BatchPolicy { max_batch, deadline_ns };
        let (responses, batch_sizes) = simulate(&policy, &gaps);

        // Exactly one response per request, in submission order.
        prop_assert_eq!(responses.len(), gaps.len());
        for (i, r) in responses.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64, "response {} out of order", i);
        }

        // Batches are non-empty, bounded, and account for every request.
        let mut total = 0usize;
        for &n in &batch_sizes {
            prop_assert!(n >= 1);
            prop_assert!(n <= max_batch);
            total += n;
        }
        prop_assert_eq!(total, gaps.len());

        // Nothing waits past its deadline, completion time is monotone,
        // and causality holds (done >= submit).
        let mut last_done = 0u64;
        for r in &responses {
            prop_assert!(r.done_ns >= r.submit_ns);
            prop_assert!(
                r.done_ns <= policy.deadline_for(r.submit_ns),
                "request {} flushed after its deadline", r.id
            );
            prop_assert!(r.done_ns >= last_done);
            last_done = r.done_ns;
        }
    }

    #[test]
    fn saturating_arrivals_always_fill_batches(
        n in 1usize..300,
        max_batch in 1usize..16,
    ) {
        // Back-to-back arrivals (gap 0) with a generous deadline: every
        // batch except possibly the last must be exactly max_batch.
        let policy = BatchPolicy { max_batch, deadline_ns: u64::MAX / 2 };
        let gaps = vec![0u64; n];
        let (responses, batch_sizes) = simulate(&policy, &gaps);
        prop_assert_eq!(responses.len(), n);
        for (i, &b) in batch_sizes.iter().enumerate() {
            if i + 1 < batch_sizes.len() {
                prop_assert_eq!(b, max_batch);
            } else {
                prop_assert!(b <= max_batch);
            }
        }
    }

    #[test]
    fn sparse_arrivals_flush_alone_at_their_deadline(
        n in 1usize..50,
        deadline_ns in 1u64..10_000,
    ) {
        // Gaps far beyond the deadline: every request flushes as a batch
        // of one, exactly deadline_ns after submission.
        let policy = BatchPolicy { max_batch: 64, deadline_ns };
        let gaps = vec![deadline_ns.saturating_mul(3).max(1); n];
        let (responses, batch_sizes) = simulate(&policy, &gaps);
        prop_assert_eq!(responses.len(), n);
        for (i, &b) in batch_sizes.iter().enumerate() {
            // The final request flushes in the shutdown drain instead.
            if i + 1 < batch_sizes.len() {
                prop_assert_eq!(b, 1);
            }
        }
        for r in responses.iter().take(n - 1) {
            prop_assert_eq!(r.done_ns, policy.deadline_for(r.submit_ns));
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded front-door tests against a real scorer.

fn tiny_scorer() -> (FrozenScorer, DatasetBundle) {
    let bundle: DatasetBundle = Profile::Tiny.bundle_with_rows(200, 7);
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 2,
        ..OptInterConfig::test_small()
    };
    let mut net = OptInterNet::new(cfg, dims, arch);
    let frozen = freeze(&mut net, &bundle.data, Quant::F32);
    let scorer = FrozenScorer::new(&frozen, 1).expect("frozen model loads");
    (scorer, bundle)
}

#[test]
fn live_serve_delivers_every_request_in_order() {
    let (mut scorer, bundle) = tiny_scorer();
    let clock = ManualClock::new();
    let opts = MicroBatchOptions {
        queue_slots: 8,
        max_batch: 8,
        deadline_ns: u64::MAX / 2,
    };
    const N: usize = 100;
    let mut got = Vec::new();
    serve(
        &mut scorer,
        &clock,
        &opts,
        |mut submitter| {
            for k in 0..N {
                let row = k % bundle.data.len();
                let ok = submitter.submit(
                    k as u64,
                    bundle.data.row_fields(row),
                    bundle.data.row_cross(row),
                );
                assert!(ok, "batcher vanished at request {k}");
            }
        },
        |resp| got.push(resp),
    );
    assert_eq!(got.len(), N);
    for (k, r) in got.iter().enumerate() {
        assert_eq!(r.id, k as u64, "response order broken at {k}");
        assert!(r.prob.is_finite() && r.prob > 0.0 && r.prob < 1.0);
        assert!(r.done_ns >= r.submit_ns);
    }
    // Responses match scoring the same rows directly (forward passes are
    // row-independent, so batch composition cannot matter).
    let mut batch = optinter_data::Batch::empty();
    let mut probs = Vec::new();
    for (k, r) in got.iter().enumerate() {
        let row = k % bundle.data.len();
        batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
        batch.push_row(bundle.data.row_fields(row), bundle.data.row_cross(row), 0.0);
        scorer.score_into(&batch, &mut probs);
        assert_eq!(
            probs[0].to_bits(),
            r.prob.to_bits(),
            "micro-batched probability differs from direct scoring at {k}"
        );
    }
}

#[test]
fn dropping_the_submitter_drains_in_flight_requests() {
    let (mut scorer, bundle) = tiny_scorer();
    let clock = ManualClock::new();
    // max_batch and deadline both unreachable: only the shutdown drain
    // can flush these.
    let opts = MicroBatchOptions {
        queue_slots: 16,
        max_batch: 1_000,
        deadline_ns: u64::MAX / 2,
    };
    let mut got = Vec::new();
    serve(
        &mut scorer,
        &clock,
        &opts,
        |mut submitter| {
            for k in 0..10u64 {
                assert!(submitter.submit(k, bundle.data.row_fields(0), bundle.data.row_cross(0)));
            }
            // Submitter dropped here, mid-flight.
        },
        |resp| got.push(resp.id),
    );
    assert_eq!(
        got,
        (0..10).collect::<Vec<u64>>(),
        "shutdown drain lost requests"
    );
}

#[test]
fn client_panic_propagates_and_does_not_hang() {
    let (mut scorer, bundle) = tiny_scorer();
    let clock = ManualClock::new();
    let opts = MicroBatchOptions::default();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        serve(
            &mut scorer,
            &clock,
            &opts,
            |mut submitter| {
                submitter.submit(0, bundle.data.row_fields(0), bundle.data.row_cross(0));
                panic!("client died");
            },
            |_| {},
        );
    }));
    assert!(result.is_err(), "client panic must propagate out of serve");
}
