//! Synthetic open-loop load generator for the serving path.
//!
//! Requests replay rows of an encoded dataset with Zipf-hot row
//! selection (row 0 hottest), which — combined with the freezer's
//! hot-first arena — concentrates embedding reads in the first pages of
//! the table, the access pattern a production CTR serving tier sees.
//! Arrivals are open-loop: with `interarrival_ns > 0` the generator
//! submits on a fixed schedule regardless of completions (backpressure
//! only at the bounded queue), with `0` it saturates.

use crate::clock::Clock;
use crate::microbatch::{serve, MicroBatchOptions};
use crate::scorer::FrozenScorer;
use optinter_data::zipf::Zipf;
use optinter_data::EncodedDataset;
use optinter_tensor::stats::percentile_sorted;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Total requests to submit.
    pub requests: usize,
    /// Zipf exponent over dataset row indices (0 = uniform).
    pub zipf_s: f64,
    /// Row-sampling seed.
    pub seed: u64,
    /// Fixed inter-arrival gap; 0 submits as fast as the queue accepts.
    /// Requires a clock that advances on its own ([`crate::clock::MonotonicClock`]).
    pub interarrival_ns: u64,
}

/// Everything the generator observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-response latency (submit → batch scored), response order.
    pub latencies_ns: Vec<u64>,
    /// Earliest submit timestamp.
    pub first_submit_ns: u64,
    /// Latest completion timestamp.
    pub last_done_ns: u64,
}

/// Latency percentiles + throughput, the numbers
/// `results/BENCH_substrate.json` records.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Number of responses.
    pub count: usize,
    /// Median latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile latency.
    pub p99_ns: f64,
    /// 99.9th-percentile latency.
    pub p999_ns: f64,
    /// Responses per second over the whole run.
    pub rows_per_sec: f64,
}

impl LoadReport {
    /// Summarizes the run (nearest-rank percentiles).
    pub fn summary(&self) -> LatencySummary {
        let mut xs: Vec<f64> = self.latencies_ns.iter().map(|&v| v as f64).collect();
        xs.sort_by(f64::total_cmp);
        let span_ns = self
            .last_done_ns
            .saturating_sub(self.first_submit_ns)
            .max(1);
        LatencySummary {
            count: xs.len(),
            p50_ns: percentile_sorted(&xs, 0.50),
            p99_ns: percentile_sorted(&xs, 0.99),
            p999_ns: percentile_sorted(&xs, 0.999),
            rows_per_sec: xs.len() as f64 / (span_ns as f64 * 1e-9),
        }
    }
}

/// Drives the micro-batching front door with Zipf-hot rows of `data` and
/// collects per-request latency.
pub fn run_zipf_load<C: Clock>(
    scorer: &mut FrozenScorer,
    data: &EncodedDataset,
    clock: &C,
    opts: &MicroBatchOptions,
    spec: &LoadSpec,
) -> LoadReport {
    assert!(!data.is_empty(), "load generator needs a non-empty dataset");
    let zipf = Zipf::new(data.len() as u32, spec.zipf_s);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Pre-sample so the submit loop is pure row replay.
    let rows: Vec<usize> = (0..spec.requests)
        .map(|_| zipf.sample(&mut rng) as usize)
        .collect();
    let interarrival_ns = spec.interarrival_ns;

    let mut latencies = Vec::with_capacity(spec.requests);
    let mut first_submit = u64::MAX;
    let mut last_done = 0u64;
    serve(
        scorer,
        clock,
        opts,
        move |mut submitter| {
            let start = clock.now_ns();
            for (k, &row) in rows.iter().enumerate() {
                if interarrival_ns > 0 {
                    let due = start.saturating_add(k as u64 * interarrival_ns);
                    while clock.now_ns() < due {
                        std::hint::spin_loop();
                    }
                }
                if !submitter.submit(k as u64, data.row_fields(row), data.row_cross(row)) {
                    break;
                }
            }
        },
        |resp| {
            latencies.push(resp.done_ns.saturating_sub(resp.submit_ns));
            first_submit = first_submit.min(resp.submit_ns);
            last_done = last_done.max(resp.done_ns);
        },
    );
    LoadReport {
        latencies_ns: latencies,
        first_submit_ns: first_submit,
        last_done_ns: last_done,
    }
}
