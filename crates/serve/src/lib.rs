//! Low-latency serving path for trained OptInter models.
//!
//! Three pieces, mirroring how a CTR model leaves the training tier:
//!
//! - [`freeze`] / [`freeze_gated`] turn a trained
//!   [`optinter_core::OptInterNet`] into an immutable, versioned,
//!   checksummed [`FrozenModel`] artifact — embedding rows reordered
//!   hot-first, weights flattened into contiguous arenas, optional
//!   f16/int8 row quantization accepted only behind an AUC-delta gate.
//! - [`FrozenScorer`] is the zero-alloc single-request/small-batch
//!   scorer: it replays the training forward pass bit-for-bit over the
//!   frozen arenas (parity proved by `tests/serve_parity.rs`).
//! - [`serve`] is the micro-batching front door: a bounded request queue
//!   with deadline flush on the prefetch ring idiom, driven by the
//!   Zipf-hot open-loop load generator in [`loadgen`].

#![forbid(unsafe_code)]

pub mod artifact;
pub mod clock;
pub mod freeze;
pub mod loadgen;
pub mod microbatch;
pub mod quant;
pub mod scorer;

pub use artifact::{ArtifactError, FrozenModel, Quant, StoreDesc, TensorData};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use freeze::{freeze, freeze_gated, hot_first_row_map, FreezeError};
pub use loadgen::{run_zipf_load, LatencySummary, LoadReport, LoadSpec};
pub use microbatch::{
    serve, simulate, BatchPolicy, MicroBatchOptions, Response, SimResponse, Submitter,
};
pub use scorer::{FrozenScorer, ScoreError};
