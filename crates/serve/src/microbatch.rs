//! Micro-batching front door: a bounded request queue with deadline
//! flush, built on the `optinter_data::prefetch` ring idiom.
//!
//! Ownership protocol (mirrors `BatchStream`): request buffers are owned
//! by exactly one holder at a time and cycle submitter → full queue →
//! batcher → free list → submitter over two bounded
//! [`optinter_data::channel`]s (preallocated; unlike `std::sync::mpsc`
//! they never allocate even when a side blocks). The free list's bound
//! equals the total buffer count, so returning a buffer never blocks; at
//! steady state no request touches the heap (proved by
//! `tests/alloc_steady_state.rs`).
//!
//! Deadline semantics: a batch flushes the moment it holds
//! [`BatchPolicy::max_batch`] requests, or when the *oldest* request in
//! it has waited [`BatchPolicy::deadline_ns`], whichever comes first.
//! Dropping the submitter drains everything in flight and flushes the
//! remainder immediately; thread panics propagate out of [`serve`] via
//! `std::thread::scope` (nothing hangs).
//!
//! The flush decision lives in [`BatchPolicy`] and is exercised two ways:
//! deterministically by [`simulate`] (driven by the proptests with a
//! manual clock) and for real by [`serve`].

use crate::clock::Clock;
use crate::scorer::FrozenScorer;
use optinter_data::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use optinter_data::Batch;
use std::time::Duration;

/// Tuning knobs for the front door.
#[derive(Debug, Clone)]
pub struct MicroBatchOptions {
    /// Bound of the full-request queue (in-flight requests beyond the
    /// batch being assembled). Submitters block when it is full.
    pub queue_slots: usize,
    /// Flush as soon as a batch holds this many requests.
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long.
    pub deadline_ns: u64,
}

impl Default for MicroBatchOptions {
    fn default() -> Self {
        Self {
            queue_slots: 32,
            max_batch: 32,
            deadline_ns: 200_000,
        }
    }
}

impl MicroBatchOptions {
    fn policy(&self) -> BatchPolicy {
        BatchPolicy {
            max_batch: self.max_batch.max(1),
            deadline_ns: self.deadline_ns,
        }
    }
}

/// The flush decision, shared by the live batcher and the proptest
/// simulator.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Flush as soon as a batch holds this many requests.
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long.
    pub deadline_ns: u64,
}

impl BatchPolicy {
    /// Absolute flush deadline for a batch whose oldest request was
    /// submitted at `first_submit_ns`.
    pub fn deadline_for(&self, first_submit_ns: u64) -> u64 {
        first_submit_ns.saturating_add(self.deadline_ns)
    }

    /// Whether a batch of `pending` requests (oldest submitted at
    /// `first_submit_ns`) must flush at time `now_ns`.
    pub fn should_flush(&self, pending: usize, first_submit_ns: u64, now_ns: u64) -> bool {
        pending >= self.max_batch || (pending > 0 && now_ns >= self.deadline_for(first_submit_ns))
    }
}

/// One in-flight scoring request (a recycled buffer).
#[derive(Debug)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the [`Response`].
    pub id: u64,
    /// Submission timestamp (submitter's clock).
    pub submit_ns: u64,
    /// Global original-feature ids, `[num_fields]`.
    pub fields: Vec<u32>,
    /// Global cross-feature ids, `[num_pairs]`.
    pub cross: Vec<u32>,
}

impl Request {
    fn empty() -> Self {
        Self {
            id: 0,
            submit_ns: 0,
            fields: Vec::new(),
            cross: Vec::new(),
        }
    }
}

/// One scored response.
#[derive(Debug, Clone, Copy)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// Predicted click probability.
    pub prob: f32,
    /// When the request was submitted.
    pub submit_ns: u64,
    /// When its batch finished scoring (same clock).
    pub done_ns: u64,
}

/// Client-side handle: fills a recycled buffer and hands it to the
/// batcher. Dropping it shuts the front door down (in-flight requests
/// still drain).
pub struct Submitter<'a, C: Clock> {
    tx: Sender<Request>,
    free_rx: Receiver<Request>,
    fresh: Vec<Request>,
    num_fields: usize,
    num_pairs: usize,
    requires_cross: bool,
    clock: &'a C,
}

impl<C: Clock> Submitter<'_, C> {
    /// Submits one request, blocking while the queue is full. Returns
    /// `false` when the batcher is gone (serve loop panicked or exited).
    ///
    /// # Panics
    /// Panics when the request does not match the scorer's schema:
    /// `fields` must have exactly `num_fields` entries, and `cross` must
    /// have exactly `num_pairs` entries whenever the scorer memorizes any
    /// pair (otherwise it may also be empty). Validating here keeps
    /// malformed requests on the caller's thread instead of panicking the
    /// serving loop.
    pub fn submit(&mut self, id: u64, fields: &[u32], cross: &[u32]) -> bool {
        assert_eq!(
            fields.len(),
            self.num_fields,
            "submit: request has {} fields, the scorer expects {}",
            fields.len(),
            self.num_fields
        );
        assert!(
            cross.len() == self.num_pairs || (cross.is_empty() && !self.requires_cross),
            "submit: request cross width {} does not match the scorer's {} pairs",
            cross.len(),
            self.num_pairs
        );
        let mut req = match self.fresh.pop() {
            Some(r) => r,
            None => match self.free_rx.recv() {
                Ok(r) => r,
                Err(_) => return false,
            },
        };
        req.id = id;
        req.fields.clear();
        req.fields.extend_from_slice(fields);
        req.cross.clear();
        req.cross.extend_from_slice(cross);
        req.submit_ns = self.clock.now_ns();
        self.tx.send(req).is_ok()
    }
}

/// Runs the micro-batching front door until `client` returns and every
/// in-flight request has been scored.
///
/// `client` runs on its own scoped thread and submits requests through
/// the [`Submitter`]; `on_response` runs on the calling thread and sees
/// every response exactly once, in submission order.
pub fn serve<C, G, F>(
    scorer: &mut FrozenScorer,
    clock: &C,
    opts: &MicroBatchOptions,
    client: G,
    mut on_response: F,
) where
    C: Clock,
    G: FnOnce(Submitter<'_, C>) + Send,
    F: FnMut(Response),
{
    let policy = opts.policy();
    let queue_slots = opts.queue_slots.max(1);
    // Total pool: everything the queue and an assembling batch can hold,
    // one in the submitter's hand, one in flight through a channel.
    let num_buffers = queue_slots + policy.max_batch + 2;
    let (full_tx, full_rx) = bounded::<Request>(queue_slots);
    // Bounded at the pool size so returning a buffer never blocks (and,
    // per the preallocated ring, never allocates).
    let (free_tx, free_rx) = bounded::<Request>(num_buffers);
    let mut fresh = Vec::with_capacity(num_buffers);
    for _ in 0..num_buffers {
        fresh.push(Request::empty());
    }

    let num_fields = scorer.dims().num_fields;
    let num_pairs = scorer.dims().num_pairs;
    let requires_cross = scorer.requires_cross();
    let mut pending: Vec<Request> = Vec::with_capacity(policy.max_batch);
    let mut batch = Batch::empty();
    let mut probs: Vec<f32> = Vec::new();
    // Degraded-path scratch: only touched when a batch fails validation.
    let mut single = Batch::empty();
    let mut one: Vec<f32> = Vec::new();

    std::thread::scope(|s| {
        s.spawn(move || {
            client(Submitter {
                tx: full_tx,
                free_rx,
                fresh,
                num_fields,
                num_pairs,
                requires_cross,
                clock,
            });
        });

        loop {
            if pending.is_empty() {
                match full_rx.recv() {
                    Ok(r) => pending.push(r),
                    Err(_) => break, // submitter gone, everything drained
                }
            }
            // Top the batch up until it is full or the oldest request's
            // deadline arrives.
            let deadline = policy.deadline_for(pending[0].submit_ns);
            while !policy.should_flush(pending.len(), pending[0].submit_ns, clock.now_ns()) {
                let wait = deadline.saturating_sub(clock.now_ns());
                match full_rx.recv_timeout(Duration::from_nanos(wait)) {
                    Ok(r) => pending.push(r),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break, // flush the tail
                }
            }
            flush_into(
                scorer,
                clock,
                &mut pending,
                &mut batch,
                &mut probs,
                (&mut single, &mut one),
                num_fields,
                num_pairs,
                &free_tx,
                &mut on_response,
            );
        }
    });
}

/// Scores the pending batch, emits its responses in order, and recycles
/// the request buffers. Allocation-free at steady state.
///
/// When the batch is rejected with a typed `ScoreError` (an id outside
/// the frozen key space — `submit` validates arity but not id ranges),
/// the loop degrades to scoring each request alone: valid requests still
/// get real probabilities and only the offending ones answer NaN. The
/// serving loop itself never panics on request data.
#[allow(clippy::too_many_arguments)]
fn flush_into<C: Clock, F: FnMut(Response)>(
    scorer: &mut FrozenScorer,
    clock: &C,
    pending: &mut Vec<Request>,
    batch: &mut Batch,
    probs: &mut Vec<f32>,
    (single, one): (&mut Batch, &mut Vec<f32>),
    num_fields: usize,
    num_pairs: usize,
    free_tx: &Sender<Request>,
    on_response: &mut F,
) {
    if pending.is_empty() {
        return;
    }
    batch.begin(num_fields, num_pairs);
    for req in pending.iter() {
        batch.push_row(&req.fields, &req.cross, 0.0);
    }
    if scorer.score_into(batch, probs).is_err() {
        probs.clear();
        for req in pending.iter() {
            single.begin(num_fields, num_pairs);
            single.push_row(&req.fields, &req.cross, 0.0);
            let prob = match scorer.score_into(single, one) {
                Ok(()) => one.first().copied().unwrap_or(f32::NAN),
                Err(_) => f32::NAN,
            };
            probs.push(prob);
        }
    }
    let done_ns = clock.now_ns();
    for (req, &prob) in pending.iter().zip(probs.iter()) {
        on_response(Response {
            id: req.id,
            prob,
            submit_ns: req.submit_ns,
            done_ns,
        });
    }
    for req in pending.drain(..) {
        // The free list is bounded at the total buffer count, so this
        // never blocks; a send error just means the submitter is gone.
        let _ = free_tx.send(req);
    }
}

/// One response from the deterministic simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResponse {
    /// Sequential request id (`0..gaps.len()`).
    pub id: u64,
    /// Simulated submission time.
    pub submit_ns: u64,
    /// Simulated flush time.
    pub done_ns: u64,
}

/// Deterministic, single-threaded model of the batcher: same
/// [`BatchPolicy`], manual time. Request `i` arrives `gaps[i]`
/// nanoseconds after request `i-1`. Returns every response plus the
/// flushed batch sizes — the proptests check the queue invariants
/// (no loss, no duplication, no reordering, bounded wait) against this.
pub fn simulate(policy: &BatchPolicy, gaps: &[u64]) -> (Vec<SimResponse>, Vec<usize>) {
    let max_batch = policy.max_batch.max(1);
    let mut now = 0u64;
    let mut waiting: Vec<(u64, u64)> = Vec::new(); // (id, submit_ns) FIFO
    let mut responses = Vec::with_capacity(gaps.len());
    let mut batch_sizes = Vec::new();

    fn flush(
        waiting: &mut Vec<(u64, u64)>,
        max_batch: usize,
        at: u64,
        responses: &mut Vec<SimResponse>,
        batch_sizes: &mut Vec<usize>,
    ) {
        let n = waiting.len().min(max_batch);
        batch_sizes.push(n);
        for (id, submit_ns) in waiting.drain(..n) {
            responses.push(SimResponse {
                id,
                submit_ns,
                done_ns: at,
            });
        }
    }

    for (i, &gap) in gaps.iter().enumerate() {
        now = now.saturating_add(gap);
        // Deadline flushes that came due while we waited for this arrival
        // fire at their deadline, not at the arrival time.
        while let Some(&(_, first)) = waiting.first() {
            let dl = policy.deadline_for(first);
            if dl > now {
                break;
            }
            flush(
                &mut waiting,
                max_batch,
                dl,
                &mut responses,
                &mut batch_sizes,
            );
        }
        waiting.push((i as u64, now));
        if waiting.len() >= max_batch {
            flush(
                &mut waiting,
                max_batch,
                now,
                &mut responses,
                &mut batch_sizes,
            );
        }
    }
    // Shutdown: drain everything still in flight immediately.
    while !waiting.is_empty() {
        flush(
            &mut waiting,
            max_batch,
            now,
            &mut responses,
            &mut batch_sizes,
        );
    }
    (responses, batch_sizes)
}
