//! Turning a trained `OptInterNet` into a [`FrozenModel`].
//!
//! Freeze-time layout work:
//!
//! - **Hot-first embedding reorder.** Vocab ids are already
//!   frequency-then-key per field (`optinter_data::vocab`): within each
//!   field's block, local id 0 is OOV and ids ascend by decreasing
//!   frequency. The freezer interleaves fields *rank-major* — every
//!   field's rank-0 row, then every rank-1 row, ... — so the rows a
//!   Zipf-hot request mix actually touches cluster in the first pages of
//!   the arena. The permutation is stored as `row_map` (training id →
//!   arena row) and undone at lookup time, so scoring reads identical
//!   bytes.
//! - **Contiguous arena.** Each table is one dense `Matrix`; rows are
//!   copied verbatim (f32) or quantized ([`Quant::F16`] / [`Quant::Int8`]).
//! - **AUC-delta gate.** Quantization is only accepted when the frozen
//!   scorer's AUC on a held-out synthetic eval set moves by at most
//!   `max_auc_delta` from the training-path AUC ([`freeze_gated`]).

use crate::artifact::{FrozenModel, Quant, StoreDesc, TensorData};
use crate::scorer::FrozenScorer;
use optinter_core::net::DataDims;
use optinter_core::OptInterNet;
use optinter_data::{Batch, BatchIter, EncodedDataset};
use optinter_metrics::auc;
use optinter_nn::{EmbedStore, StoreKind};
use optinter_tensor::kernels;
use optinter_tensor::Matrix;
use std::fmt;
use std::ops::Range;

/// Why a gated freeze was rejected.
#[derive(Debug)]
pub enum FreezeError {
    /// Quantization moved eval AUC beyond the allowed delta.
    AucGate {
        /// Training-path AUC on the eval set.
        base_auc: f64,
        /// Frozen (quantized) scorer AUC on the eval set.
        frozen_auc: f64,
        /// |base - frozen|.
        delta: f64,
        /// The configured ceiling.
        max_delta: f64,
    },
    /// The frozen artifact failed to load back into a scorer — indicates
    /// a freezer bug, surfaced as an error instead of a panic.
    Model(String),
}

impl fmt::Display for FreezeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreezeError::AucGate {
                base_auc,
                frozen_auc,
                delta,
                max_delta,
            } => write!(
                f,
                "quantization rejected: eval AUC {base_auc:.6} -> {frozen_auc:.6} \
                 (delta {delta:.6} > allowed {max_delta:.6})"
            ),
            FreezeError::Model(e) => write!(f, "frozen model rejected: {e}"),
        }
    }
}

impl std::error::Error for FreezeError {}

/// Rank-major hot-first permutation over the per-field vocab blocks:
/// `row_map[training_id] = arena_row`. Fields' equally-ranked (equally
/// hot) rows are adjacent in the arena.
pub fn hot_first_row_map(field_offsets: &[u32], orig_vocab: u32) -> Vec<u32> {
    let m = field_offsets.len();
    let mut map = vec![0u32; orig_vocab as usize];
    let mut next = 0u32;
    let mut rank = 0u32;
    let mut placed = 0usize;
    while placed < orig_vocab as usize {
        let before = placed;
        for f in 0..m {
            let lo = field_offsets[f];
            let hi = if f + 1 < m {
                field_offsets[f + 1]
            } else {
                orig_vocab
            };
            let id = lo + rank;
            if id < hi {
                map[id as usize] = next;
                next += 1;
                placed += 1;
            }
        }
        assert!(
            placed > before,
            "hot_first_row_map: inconsistent field offsets"
        );
        rank += 1;
    }
    map
}

/// The artifact descriptor matching a training-time embedding store.
fn store_desc(store: &EmbedStore) -> StoreDesc {
    let seed = store.hash_seed().unwrap_or(0);
    match store.kind() {
        StoreKind::Dense => StoreDesc::Dense,
        StoreKind::HashedQr { bucket } => StoreDesc::HashedQr { bucket, seed },
        StoreKind::HashedDouble { rows } => StoreDesc::HashedDouble { rows, seed },
    }
}

/// Applies a row permutation: `out.row(map[g]) = weights.row(g)`.
fn permute_rows(weights: &Matrix, map: &[u32]) -> Matrix {
    let (rows, cols) = weights.shape();
    debug_assert_eq!(rows, map.len());
    let mut out = Matrix::zeros(rows, cols);
    for (g, &dst) in map.iter().enumerate() {
        out.row_mut(dst as usize).copy_from_slice(weights.row(g));
    }
    out
}

/// Freezes a trained network into serving layout, without an accuracy
/// gate. Use [`freeze_gated`] when quantizing.
///
/// `data` must be the dataset the network was trained against — its
/// `field_offsets` drive the hot-first reorder and its dimensions are
/// validated against the network's.
pub fn freeze(net: &mut OptInterNet, data: &EncodedDataset, quant: Quant) -> FrozenModel {
    let dims = DataDims::of(data);
    let cfg = net.config().clone();
    let arch = net.architecture().clone();
    assert_eq!(
        arch.num_pairs(),
        dims.num_pairs,
        "freeze: architecture/dataset mismatch"
    );

    let (orig, cross) = net.embedding_stores();
    let (orig_store, cross_store) = (store_desc(orig), store_desc(cross));
    // The hot-first reorder only makes sense for a dense per-id arena; a
    // hashed store's sub-table rows are shared across ids, so they are
    // frozen verbatim and recomposed at lookup time.
    let row_map = if orig_store == StoreDesc::Dense {
        hot_first_row_map(&data.field_offsets, data.orig_vocab)
    } else {
        Vec::new()
    };
    let weights = net.export_weights();
    let mut tensors = Vec::with_capacity(weights.len());
    for (name, matrix) in &weights {
        let data = match name.as_str() {
            // Embedding tables are the memory giants: reorder (dense
            // e_orig) and quantize (all). Everything else stays f32.
            "e_orig" => TensorData::encode(&permute_rows(matrix, &row_map), quant),
            "e_orig.t1" | "e_orig.t2" | "e_cross" | "e_cross.t1" | "e_cross.t2" => {
                TensorData::encode(matrix, quant)
            }
            _ => TensorData::F32(matrix.clone()),
        };
        tensors.push((name.clone(), data));
    }

    FrozenModel {
        orig_dim: cfg.orig_dim,
        cross_dim: cfg.cross_dim,
        hidden: cfg.hidden.clone(),
        layer_norm: cfg.layer_norm,
        fact_fn: cfg.fact_fn,
        backend: kernels::active(),
        quant,
        dims,
        arch,
        orig_store,
        cross_store,
        row_map,
        tensors,
    }
}

/// [`freeze`] plus the AUC-delta acceptance gate: scores `eval_rows` of
/// `data` through both the training path and the frozen scorer and
/// rejects the artifact when the AUCs differ by more than `max_auc_delta`.
///
/// Returns the artifact together with the measured delta.
///
/// # Errors
/// [`FreezeError::AucGate`] when the gate fires; [`FreezeError::Model`]
/// if the freshly-frozen artifact cannot be loaded (freezer bug).
pub fn freeze_gated(
    net: &mut OptInterNet,
    data: &EncodedDataset,
    eval_rows: Range<usize>,
    quant: Quant,
    max_auc_delta: f64,
) -> Result<(FrozenModel, f64), FreezeError> {
    let frozen = freeze(net, data, quant);
    let mut scorer =
        FrozenScorer::new(&frozen, 1).map_err(|e| FreezeError::Model(e.to_string()))?;

    let batch_size = net.config().batch_size;
    let mut base_probs = Vec::new();
    let mut frozen_probs = Vec::new();
    let mut labels = Vec::new();
    let mut batch = Batch::empty();
    let mut scored = Vec::new();
    let mut iter = BatchIter::new(data, eval_rows, batch_size, None).with_cross(true);
    while iter.next_into(&mut batch) {
        base_probs.extend(net.predict(&batch));
        scorer
            .score_into(&batch, &mut scored)
            .map_err(|e| FreezeError::Model(e.to_string()))?;
        frozen_probs.extend_from_slice(&scored);
        labels.extend_from_slice(&batch.labels);
    }

    let base_auc = auc(&base_probs, &labels);
    let frozen_auc = auc(&frozen_probs, &labels);
    let delta = (base_auc - frozen_auc).abs();
    if delta > max_auc_delta {
        return Err(FreezeError::AucGate {
            base_auc,
            frozen_auc,
            delta,
            max_delta: max_auc_delta,
        });
    }
    Ok((frozen, delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_major_map_interleaves_fields() {
        // Two fields: sizes 3 and 2 (offsets 0, 3).
        let map = hot_first_row_map(&[0, 3], 5);
        // rank 0: ids 0 (f0) and 3 (f1); rank 1: ids 1, 4; rank 2: id 2.
        assert_eq!(map, vec![0, 2, 4, 1, 3]);
    }

    #[test]
    fn map_is_a_permutation_on_ragged_fields() {
        let offsets = [0u32, 1, 8, 10];
        let vocab = 17u32;
        let map = hot_first_row_map(&offsets, vocab);
        let mut seen = vec![false; vocab as usize];
        for &v in &map {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
