//! Zero-alloc single-request (and micro-batch) scorer over a frozen
//! artifact.
//!
//! Bit-parity contract: for an unquantized ([`Quant::F32`]) artifact,
//! [`FrozenScorer::score_into`] produces probabilities bitwise-identical
//! to `OptInterNet::predict` on the same batch at any thread count. That
//! holds because every stage reuses the training path's machinery:
//!
//! - embedding lookups are pure row copies (the hot-first permutation is
//!   undone through `row_map`, so identical bytes land in identical
//!   scratch positions) — and for hashed stores, the same slot functions
//!   and elementwise product the training store used;
//! - MLP-input assembly runs the same per-row closure under the same
//!   owner-computes [`Pool::for_rows`] sharding as `forward_step`;
//! - the classifier is a real [`Mlp`] rebuilt from the frozen weights, so
//!   the blocked matmul kernels and LayerNorm are literally the training
//!   code;
//! - probabilities go through the same `sigmoid`.
//!
//! Steady-state scoring performs zero heap allocations (proved by
//! `tests/alloc_steady_state.rs`): all scratch lives in the scorer and is
//! `reset` in place per request.

use crate::artifact::{ArtifactError, FrozenModel, Quant, StoreDesc};
use optinter_core::net::DataDims;
use optinter_core::{FactFn, Method};
use optinter_data::Batch;
use optinter_nn::loss::probabilities_into;
use optinter_nn::{double_hash_slots, qr_slots, HashScheme, Layer, Mlp, MlpConfig};
use optinter_tensor::kernels::{self, Backend};
use optinter_tensor::{Matrix, Pool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A malformed scoring request, surfaced as a typed error instead of a
/// panic: the serving tier scores ids it did not mint, so out-of-range
/// input is part of the error surface, not a programmer bug. All
/// variants are allocation-free (plain fields) so returning one keeps
/// the zero-alloc scoring contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreError {
    /// The batch's field arity does not match the frozen schema.
    FieldCountMismatch {
        /// Fields per row in the batch.
        got: usize,
        /// Fields per row the artifact was trained with.
        expected: usize,
    },
    /// The architecture memorizes pairs but the batch has no cross ids.
    MissingCross,
    /// The batch's cross width does not match the frozen pair count.
    CrossCountMismatch {
        /// Cross ids per row in the batch.
        got: usize,
        /// Pairs the artifact was trained with.
        expected: usize,
    },
    /// An original-feature id is outside the frozen key space.
    FieldIdOutOfRange {
        /// Batch row of the offending id.
        row: usize,
        /// Field index within the row.
        field: usize,
        /// The id itself.
        id: u32,
        /// Exclusive upper bound (`dims.orig_vocab`).
        key_space: u32,
    },
    /// A cross-product id is outside its pair's vocab block.
    CrossIdOutOfRange {
        /// Batch row of the offending id.
        row: usize,
        /// Pair index within the row.
        pair: usize,
        /// The id itself.
        id: u32,
        /// Inclusive lower bound (the pair's offset).
        lo: u32,
        /// Exclusive upper bound (offset + pair vocab size).
        hi: u32,
    },
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::FieldCountMismatch { got, expected } => {
                write!(f, "request has {got} fields, the scorer expects {expected}")
            }
            ScoreError::MissingCross => {
                write!(
                    f,
                    "architecture memorizes pairs but the batch has no cross features"
                )
            }
            ScoreError::CrossCountMismatch { got, expected } => {
                write!(
                    f,
                    "request has {got} cross ids per row, the scorer expects {expected}"
                )
            }
            ScoreError::FieldIdOutOfRange {
                row,
                field,
                id,
                key_space,
            } => write!(
                f,
                "row {row} field {field}: id {id} outside the frozen key space {key_space}"
            ),
            ScoreError::CrossIdOutOfRange {
                row,
                pair,
                id,
                lo,
                hi,
            } => write!(
                f,
                "row {row} pair {pair}: cross id {id} outside its vocab block [{lo}, {hi})"
            ),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Below this many scalars a pooled lookup dispatch costs more than the
/// copies; mirrors `POOL_MIN_WORK` in `optinter_nn::embedding`. Either
/// path writes identical bytes, so this is purely a latency knob.
const SERIAL_LOOKUP_MIN: usize = 16 * 1024;

/// Where a pair's features land in the MLP input — the same layout
/// `OptInterNet::new` derives, recomputed from the frozen metadata.
#[derive(Debug, Clone, Copy)]
struct PairSlot {
    method: Method,
    input_offset: usize,
    mem_slot: usize,
    compact_offset: u32,
}

/// Deterministic serving-side replica of the training-time pair layout.
#[derive(Debug)]
struct PairLayout {
    slots: Vec<PairSlot>,
    num_memorized: usize,
    input_dim: usize,
    cross_rows: usize,
}

impl PairLayout {
    fn of(model: &FrozenModel) -> Self {
        let s1 = model.orig_dim;
        let s2 = model.cross_dim;
        let dims = &model.dims;
        let mut slots = Vec::with_capacity(dims.num_pairs);
        let mut input_offset = dims.num_fields * s1;
        let mut compact_offset = 0u32;
        let mut mem_slot = 0usize;
        for p in 0..dims.num_pairs {
            let method = model.arch.method(p);
            slots.push(PairSlot {
                method,
                input_offset,
                mem_slot,
                compact_offset,
            });
            match method {
                Method::Memorize => {
                    input_offset += s2;
                    compact_offset += dims.pair_vocab_sizes[p];
                    mem_slot += 1;
                }
                Method::Factorize => input_offset += s1,
                Method::Naive => {}
            }
        }
        Self {
            slots,
            num_memorized: mem_slot,
            input_dim: input_offset,
            cross_rows: compact_offset.max(1) as usize,
        }
    }
}

/// A frozen embedding table in serving form: either a dense arena (with
/// an optional hot-first permutation to undo at lookup time) or a
/// compositional pair of sub-tables whose rows are recomposed per id
/// with the exact slot functions and elementwise product the training
/// store used — which is what keeps f32 serving bit-identical to
/// training for hashed stores too.
enum ServingTable {
    /// One row per id. `row_map` is `Some` for the hot-first reordered
    /// original arena and `None` for the compact cross table.
    Dense {
        arena: Matrix,
        row_map: Option<Vec<u32>>,
    },
    /// Two sub-tables composed as `t1.row(a) ⊙ t2.row(b)`.
    Hashed {
        t1: Matrix,
        t2: Matrix,
        scheme: HashScheme,
        seed: u64,
    },
}

impl ServingTable {
    fn dim(&self) -> usize {
        match self {
            ServingTable::Dense { arena, .. } => arena.cols(),
            ServingTable::Hashed { t1, .. } => t1.cols(),
        }
    }

    /// Gathers `flat` (`B * num_fields` ids, already validated in-range)
    /// into `out`, `[B, num_fields * dim]`. Row writes are
    /// order-independent, so the serial and pooled paths produce
    /// identical bytes; the threshold only picks the faster one.
    fn lookup_into(&self, flat: &[u32], num_fields: usize, pool: &Pool, out: &mut Matrix) {
        let dim = self.dim();
        debug_assert!(num_fields > 0);
        debug_assert_eq!(flat.len() % num_fields, 0);
        let batch = flat.len() / num_fields;
        let width = num_fields * dim;
        out.reset(batch, width);
        let fill_row = |r: usize, dst: &mut [f32]| {
            let ids = &flat[r * num_fields..(r + 1) * num_fields];
            for (f, &id) in ids.iter().enumerate() {
                let cell = &mut dst[f * dim..(f + 1) * dim];
                match self {
                    ServingTable::Dense { arena, row_map } => {
                        let row = match row_map {
                            Some(m) => m[id as usize],
                            None => id,
                        };
                        cell.copy_from_slice(arena.row(row as usize));
                    }
                    ServingTable::Hashed {
                        t1,
                        t2,
                        scheme,
                        seed,
                    } => {
                        let (a, b) = match *scheme {
                            HashScheme::QuotientRemainder { bucket } => qr_slots(bucket, id),
                            HashScheme::DoubleHash { rows } => double_hash_slots(*seed, rows, id),
                        };
                        let (ra, rb) = (t1.row(a as usize), t2.row(b as usize));
                        for ((d, &x), &y) in cell.iter_mut().zip(ra).zip(rb) {
                            *d = x * y;
                        }
                    }
                }
            }
        };
        if pool.is_serial() || flat.len() * dim < SERIAL_LOOKUP_MIN {
            for r in 0..batch {
                fill_row(r, out.row_mut(r));
            }
        } else {
            pool.for_rows(out.as_mut_slice(), width, fill_row);
        }
    }
}

/// A loaded, immutable model plus per-scorer scratch. One instance serves
/// one thread of control; clone-free request scoring after warm-up.
pub struct FrozenScorer {
    dims: DataDims,
    orig_dim: usize,
    cross_dim: usize,
    fact_fn: FactFn,
    quant: Quant,
    /// Kernel backend the scorer dispatches to, captured at load time so
    /// the serving tier can report it (and compare it to the freeze-time
    /// backend recorded in the artifact).
    backend: Backend,
    /// Backend recorded in the artifact at freeze time.
    frozen_backend: Backend,
    layout: PairLayout,
    /// Original-feature table (hot-first arena or hashed sub-tables).
    orig: ServingTable,
    /// Compact cross table (training order).
    cross: ServingTable,
    fact_weights: Option<Matrix>,
    mlp: Mlp,
    pool: Pool,
    // Per-request scratch, reused across calls.
    eo: Matrix,
    em: Matrix,
    input: Matrix,
    logits: Matrix,
    mem_ids: Vec<u32>,
}

impl FrozenScorer {
    /// Builds a scorer over `model` with a `num_threads`-wide pool.
    ///
    /// # Errors
    /// Returns [`ArtifactError::Corrupt`] when the model's tensors are
    /// missing or shaped inconsistently with its metadata.
    pub fn new(model: &FrozenModel, num_threads: usize) -> Result<Self, ArtifactError> {
        let layout = PairLayout::of(model);
        let dims = model.dims.clone();
        let s1 = model.orig_dim;
        let s2 = model.cross_dim;

        let orig = build_table(
            model,
            "e_orig",
            model.orig_store,
            dims.orig_vocab as usize,
            s1,
            true,
        )?;
        let cross = build_table(
            model,
            "e_cross",
            model.cross_store,
            layout.cross_rows,
            s2,
            false,
        )?;
        let fact_weights = if model.fact_fn == FactFn::Generalized {
            Some(fetch(model, "fact_weights", dims.num_pairs, s1)?)
        } else {
            if model.tensor("fact_weights").is_some() {
                return Err(corrupt(format!(
                    "fact_weights present but fact_fn is {:?}",
                    model.fact_fn
                )));
            }
            None
        };

        // Rebuild a real Mlp (same kernels as training) and overwrite its
        // parameters with the frozen ones, checking count and shapes.
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim: layout.input_dim,
                hidden: model.hidden.clone(),
                output_dim: 1,
                layer_norm: model.layer_norm,
                ln_eps: 1e-5,
            },
        );
        let mut idx = 0usize;
        let mut err: Option<ArtifactError> = None;
        mlp.visit_params(&mut |p| {
            if err.is_some() {
                return;
            }
            let name = format!("mlp.{idx}");
            match fetch(model, &name, p.value.rows(), p.value.cols()) {
                Ok(m) => p.value = m,
                Err(e) => err = Some(e),
            }
            idx += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        let embed_tensors = [model.orig_store, model.cross_store]
            .iter()
            .map(|d| if d.is_hashed() { 2 } else { 1 })
            .sum::<usize>();
        let expected_tensors = embed_tensors + fact_weights.is_some() as usize + idx;
        if model.tensors.len() != expected_tensors {
            return Err(corrupt(format!(
                "artifact has {} tensors, model shape needs {expected_tensors}",
                model.tensors.len()
            )));
        }

        let pool = Pool::new(num_threads);
        mlp.set_pool(&pool);
        Ok(Self {
            dims,
            orig_dim: s1,
            cross_dim: s2,
            fact_fn: model.fact_fn,
            quant: model.quant,
            backend: kernels::active(),
            frozen_backend: model.backend,
            layout,
            orig,
            cross,
            fact_weights,
            mlp,
            pool,
            eo: Matrix::zeros(0, 0),
            em: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            mem_ids: Vec::new(),
        })
    }

    /// MLP input dimension (diagnostics).
    pub fn input_dim(&self) -> usize {
        self.layout.input_dim
    }

    /// Quantization mode of the loaded artifact.
    pub fn quant(&self) -> Quant {
        self.quant
    }

    /// Kernel backend this scorer dispatches to (captured at load time).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Kernel backend recorded in the artifact at freeze time. When it
    /// differs from [`Self::backend`], f32 scores can differ from the
    /// freeze-time numerics in the last bits (FMA vs separate mul+add).
    pub fn frozen_backend(&self) -> Backend {
        self.frozen_backend
    }

    /// Dataset dimensions baked into the artifact.
    pub fn dims(&self) -> &DataDims {
        &self.dims
    }

    /// Whether scoring needs cross features in the batch (the frozen
    /// architecture memorizes at least one pair). The micro-batch front
    /// door uses this to validate requests before they are queued.
    pub fn requires_cross(&self) -> bool {
        self.layout.num_memorized > 0
    }

    /// Scores a batch of requests into `out` (cleared first): `out[i]` is
    /// the predicted click probability of row `i`. Labels in `batch` are
    /// ignored. Allocation-free at steady state.
    ///
    /// # Errors
    /// Returns a typed [`ScoreError`] — never panics — when the batch
    /// does not match the frozen schema or carries ids outside the
    /// frozen key spaces; `out` is left cleared in that case.
    pub fn score_into(&mut self, batch: &Batch, out: &mut Vec<f32>) -> Result<(), ScoreError> {
        out.clear();
        self.validate(batch)?;
        let m = self.dims.num_fields;
        let s1 = self.orig_dim;
        let s2 = self.cross_dim;
        let b = batch.len();
        self.orig
            .lookup_into(&batch.fields, m, &self.pool, &mut self.eo);
        self.gather_mem_ids_into(batch);
        if self.layout.num_memorized > 0 {
            self.cross.lookup_into(
                &self.mem_ids,
                self.layout.num_memorized,
                &self.pool,
                &mut self.em,
            );
        } else {
            self.em.reset(b, 0);
        }
        // MLP-input assembly: the same per-row closure as
        // `OptInterNet::forward_step`, sharded owner-computes so any
        // thread count writes identical bytes.
        self.input.reset(b, self.layout.input_dim);
        {
            let input_dim = self.layout.input_dim;
            let slots = &self.layout.slots;
            let pairs = self.dims.pairs();
            let fact_fn = self.fact_fn;
            let fw_val = self.fact_weights.as_ref();
            let eo_ref = &self.eo;
            let em_ref = &self.em;
            self.pool
                .for_rows(self.input.as_mut_slice(), input_dim, |r, dst_row| {
                    let eo_row = eo_ref.row(r);
                    dst_row[..m * s1].copy_from_slice(eo_row);
                    for (p, slot) in slots.iter().enumerate() {
                        match slot.method {
                            Method::Memorize => {
                                let src =
                                    &em_ref.row(r)[slot.mem_slot * s2..(slot.mem_slot + 1) * s2];
                                dst_row[slot.input_offset..slot.input_offset + s2]
                                    .copy_from_slice(src);
                            }
                            Method::Factorize => {
                                let (i, j) = pairs.pair_at(p);
                                let (ei_start, ej_start) = (i * s1, j * s1);
                                match fact_fn {
                                    FactFn::Hadamard => {
                                        for c in 0..s1 {
                                            dst_row[slot.input_offset + c] =
                                                eo_row[ei_start + c] * eo_row[ej_start + c];
                                        }
                                    }
                                    FactFn::PointwiseAdd => {
                                        for c in 0..s1 {
                                            dst_row[slot.input_offset + c] =
                                                eo_row[ei_start + c] + eo_row[ej_start + c];
                                        }
                                    }
                                    FactFn::Generalized => {
                                        let Some(fw) = fw_val else {
                                            // lint: allow(panic-free, reason="layout construction materializes fact_weights whenever any slot is Generalized")
                                            unreachable!("generalized slot without fact_weights")
                                        };
                                        let w = fw.row(p);
                                        for c in 0..s1 {
                                            dst_row[slot.input_offset + c] =
                                                w[c] * eo_row[ei_start + c] * eo_row[ej_start + c];
                                        }
                                    }
                                }
                            }
                            Method::Naive => {}
                        }
                    }
                });
        }
        self.mlp.forward_into(&self.input, &mut self.logits);
        probabilities_into(&self.logits, out);
        Ok(())
    }

    /// Checks a batch against the frozen schema and key spaces *before*
    /// any table access, so the scoring hot path never indexes out of
    /// range. Allocation-free: every [`ScoreError`] is plain fields.
    fn validate(&self, batch: &Batch) -> Result<(), ScoreError> {
        let m = self.dims.num_fields;
        if batch.num_fields != m {
            return Err(ScoreError::FieldCountMismatch {
                got: batch.num_fields,
                expected: m,
            });
        }
        let key_space = self.dims.orig_vocab;
        for (i, &id) in batch.fields.iter().enumerate() {
            if id >= key_space {
                return Err(ScoreError::FieldIdOutOfRange {
                    row: i / m.max(1),
                    field: i % m.max(1),
                    id,
                    key_space,
                });
            }
        }
        if self.layout.num_memorized == 0 {
            return Ok(());
        }
        if batch.cross.is_empty() {
            return Err(ScoreError::MissingCross);
        }
        let p_count = self.dims.num_pairs;
        let b = batch.len();
        if batch.cross.len() != b * p_count {
            return Err(ScoreError::CrossCountMismatch {
                got: batch.cross.len() / b.max(1),
                expected: p_count,
            });
        }
        for r in 0..b {
            let row = &batch.cross[r * p_count..(r + 1) * p_count];
            for (p, slot) in self.layout.slots.iter().enumerate() {
                if slot.method != Method::Memorize {
                    continue;
                }
                let lo = self.dims.pair_offsets[p];
                let hi = lo + self.dims.pair_vocab_sizes[p];
                let id = row[p];
                if id < lo || id >= hi {
                    return Err(ScoreError::CrossIdOutOfRange {
                        row: r,
                        pair: p,
                        id,
                        lo,
                        hi,
                    });
                }
            }
        }
        Ok(())
    }

    /// Translates global cross ids to compact-table ids for memorized
    /// pairs, exactly as the training path does. Runs after
    /// [`Self::validate`], so every id is inside its pair's vocab block.
    fn gather_mem_ids_into(&mut self, batch: &Batch) {
        self.mem_ids.clear();
        if self.layout.num_memorized == 0 {
            return;
        }
        let p_count = self.dims.num_pairs;
        let b = batch.len();
        self.mem_ids.reserve(b * self.layout.num_memorized);
        for r in 0..b {
            let row = &batch.cross[r * p_count..(r + 1) * p_count];
            for (p, slot) in self.layout.slots.iter().enumerate() {
                if slot.method == Method::Memorize {
                    let local = row[p] - self.dims.pair_offsets[p];
                    self.mem_ids.push(slot.compact_offset + local);
                }
            }
        }
    }
}

fn corrupt(why: String) -> ArtifactError {
    ArtifactError::Corrupt(why)
}

/// Fetches a named tensor, dequantizes it, and checks its shape.
fn fetch(
    model: &FrozenModel,
    name: &str,
    rows: usize,
    cols: usize,
) -> Result<Matrix, ArtifactError> {
    let Some(t) = model.tensor(name) else {
        return Err(corrupt(format!("missing tensor `{name}`")));
    };
    if t.rows() != rows || t.cols() != cols {
        return Err(corrupt(format!(
            "tensor `{name}` is {}x{}, expected {rows}x{cols}",
            t.rows(),
            t.cols()
        )));
    }
    Ok(t.to_matrix())
}

/// Builds the serving form of one embedding table from the artifact's
/// store descriptor, fetching and shape-checking its tensor(s).
/// `permuted` marks the hot-first-reordered original arena.
fn build_table(
    model: &FrozenModel,
    name: &str,
    desc: StoreDesc,
    key_space: usize,
    dim: usize,
    permuted: bool,
) -> Result<ServingTable, ArtifactError> {
    match desc {
        StoreDesc::Dense => {
            let arena = fetch(model, name, key_space, dim)?;
            let row_map = if permuted {
                if model.row_map.len() != key_space {
                    return Err(corrupt(format!(
                        "row_map has {} entries for vocab {key_space}",
                        model.row_map.len()
                    )));
                }
                Some(model.row_map.clone())
            } else {
                None
            };
            Ok(ServingTable::Dense { arena, row_map })
        }
        StoreDesc::HashedQr { bucket, seed } => {
            let t1 = fetch(
                model,
                &format!("{name}.t1"),
                key_space.div_ceil(bucket as usize),
                dim,
            )?;
            let t2 = fetch(model, &format!("{name}.t2"), bucket as usize, dim)?;
            Ok(ServingTable::Hashed {
                t1,
                t2,
                scheme: HashScheme::QuotientRemainder { bucket },
                seed,
            })
        }
        StoreDesc::HashedDouble { rows, seed } => {
            let t1 = fetch(model, &format!("{name}.t1"), rows as usize, dim)?;
            let t2 = fetch(model, &format!("{name}.t2"), rows as usize, dim)?;
            Ok(ServingTable::Hashed {
                t1,
                t2,
                scheme: HashScheme::DoubleHash { rows },
                seed,
            })
        }
    }
}
