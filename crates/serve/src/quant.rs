//! Hand-rolled row quantization: f32 ↔ f16 bit conversion and symmetric
//! per-row int8. No external `half` crate — the build is offline — so the
//! f16 conversion implements IEEE 754 binary16 round-to-nearest-even
//! directly on the bit patterns.
//!
//! Both codecs are *stored* formats: the scorer always works on
//! dequantized f32 rows, so quantization costs accuracy (gated by the
//! AUC-delta check in [`crate::freeze`]) but never changes the kernel
//! path.

/// Converts an `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;
    if exp32 == 0xff {
        // Inf / NaN: preserve the class (quiet any NaN payload).
        return sign | 0x7c00 | if frac != 0 { 0x0200 } else { 0 };
    }
    let exp = exp32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if exp <= 0 {
        // Subnormal half (or underflow to zero).
        if exp < -10 {
            return sign;
        }
        let mant = frac | 0x0080_0000; // implicit leading 1
        let shift = (14 - exp) as u32; // 14..=24
        let half = mant >> shift;
        let rem = mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && (half & 1) == 1);
        return sign | (half + round_up as u32) as u16;
    }
    let half = ((exp as u32) << 10) | (frac >> 13);
    let rem = frac & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1);
    // Rounding may carry into the exponent; the carry is correct by
    // construction (1.11..1 rounds to 10.0..0 of the next exponent).
    sign | (half + round_up as u32) as u16
}

/// 2^-24 as an exact `f32` — the value of one binary16 subnormal ulp.
const F16_SUBNORMAL_ULP: f32 = 5.960_464_5e-8;

/// Converts IEEE 754 binary16 bits back to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (frac << 13));
    }
    if exp == 0 {
        // Subnormal: frac * 2^-24, exact in f32 (frac < 2^11).
        let mag = frac as f32 * F16_SUBNORMAL_ULP;
        return if sign != 0 { -mag } else { mag };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (frac << 13))
}

/// Symmetric per-row int8 quantization. Writes `q[i] =
/// round(row[i] * 127 / max_abs)` and returns the dequantization scale
/// `max_abs / 127` (0 for an all-zero row). Artifacts store the quantized
/// payload itself (see [`crate::artifact::TensorData`]), so round-trip
/// byte-identity never depends on re-quantizing dequantized values.
pub fn quantize_row_i8(row: &[f32], q: &mut [i8]) -> f32 {
    debug_assert_eq!(row.len(), q.len());
    let mut max_abs = 0.0f32;
    for &x in row {
        let a = x.abs();
        if a > max_abs {
            max_abs = a;
        }
    }
    if max_abs == 0.0 || !max_abs.is_finite() {
        for slot in q.iter_mut() {
            *slot = 0;
        }
        return 0.0;
    }
    let inv = 127.0 / max_abs;
    for (slot, &x) in q.iter_mut().zip(row.iter()) {
        *slot = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
    max_abs / 127.0
}

/// Dequantizes one int8 row in place: `out[i] = q[i] * scale`.
pub fn dequantize_row_i8(q: &[i8], scale: f32, out: &mut [f32]) {
    debug_assert_eq!(q.len(), out.len());
    for (slot, &v) in out.iter_mut().zip(q.iter()) {
        *slot = v as f32 * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff); // largest finite half
        assert_eq!(f32_to_f16_bits(1e6), 0x7c00); // overflow → inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(5.960_464_5e-8), 0x0001); // smallest subnormal
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x0001), 5.960_464_5e-8);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert!(f16_bits_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn f16_round_trip_is_identity_on_half_values() {
        // Every one of the 63488 non-NaN f16 bit patterns must survive
        // f16 → f32 → f16 exactly.
        for h in 0..=u16::MAX {
            if (h >> 10) & 0x1f == 0x1f && h & 0x3ff != 0 {
                continue; // NaN payloads are canonicalised, skip
            }
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h, "bits {h:#06x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half;
        // round-to-even keeps the even mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_0000 | (1 << 12));
        assert_eq!(f32_to_f16_bits(halfway), 0x3c00);
        // Just above the halfway point rounds up.
        let above = f32::from_bits(0x3f80_0000 | (1 << 12) | 1);
        assert_eq!(f32_to_f16_bits(above), 0x3c01);
    }

    #[test]
    fn int8_round_trip_error_is_bounded() {
        let row: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 100) as f32 - 50.0) / 80.0)
            .collect();
        let mut q = vec![0i8; row.len()];
        let scale = quantize_row_i8(&row, &mut q);
        let mut back = vec![0.0f32; row.len()];
        dequantize_row_i8(&q, scale, &mut back);
        for (a, b) in row.iter().zip(back.iter()) {
            assert!((a - b).abs() <= scale * 0.5 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_zero_row() {
        let row = [0.0f32; 4];
        let mut q = [1i8; 4];
        assert_eq!(quantize_row_i8(&row, &mut q), 0.0);
        assert_eq!(q, [0i8; 4]);
    }
}
