//! Time sources for the micro-batching front door.
//!
//! Deadline flushing needs a monotonic "now", but wall-clock reads are
//! banned outside the bench crate (DESIGN.md §7) because they make runs
//! irreproducible. The compromise: all serving code takes a [`Clock`]
//! trait object-free generic, tests and proptests drive a [`ManualClock`]
//! deterministically, and the single real-time implementation
//! ([`MonotonicClock`]) confines the waived `Instant` reads to this
//! module.

use std::sync::atomic::{AtomicU64, Ordering};
// lint: allow(wall-clock, reason="MonotonicClock is the one sanctioned real-time source for serving deadlines; everything else uses ManualClock")
use std::time::Instant;

/// Monotonic nanosecond clock. Implementations must never go backwards.
pub trait Clock: Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// A test clock that only moves when told to. Thread-safe so the
/// submitter and batcher threads can share one instance.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jumps to an absolute time (must not move backwards).
    pub fn set_ns(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// Real monotonic time, measured from construction.
#[derive(Debug)]
pub struct MonotonicClock {
    // lint: allow(wall-clock, reason="the serving deadline needs real elapsed time; confined here so every other serve module stays deterministic")
    origin: Instant,
}

impl MonotonicClock {
    /// Starts the clock; `now_ns` counts from this moment.
    pub fn new() -> Self {
        Self {
            // lint: allow(wall-clock, reason="single sanctioned real-time read for the serving path")
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(5);
        c.advance_ns(7);
        assert_eq!(c.now_ns(), 12);
        c.set_ns(10); // backwards jumps are ignored
        assert_eq!(c.now_ns(), 12);
        c.set_ns(100);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
