//! The frozen serving artifact: an immutable, versioned, checksummed
//! snapshot of a trained model in serving layout.
//!
//! Binary format (all integers little-endian):
//!
//! ```text
//! magic[8]  = "OPTSRVA\0"
//! version   u32  (currently 2)
//! checksum  u64  FNV-1a 64 over every byte after this field
//! ---- checksummed payload ----
//! quant u8 · layer_norm u8 · fact_fn u8 · backend u8
//! orig_dim u32 · cross_dim u32
//! hidden_count u32 · hidden[i] u32 ...
//! num_fields u32 · num_pairs u32 · orig_vocab u32 · cross_vocab u32
//! pair_offsets[num_pairs] u32 · pair_vocab_sizes[num_pairs] u32
//! arch[num_pairs] bytes of 'M'/'F'/'N'
//! orig_store desc · cross_store desc   (v3: see below)
//! row_map[orig_vocab] u32       (training row id → arena row;
//!                                present only when orig_store is dense)
//! tensor_count u32, then per tensor:
//!   name_len u32 · name bytes · enc u8 · rows u32 · cols u32
//!   payload: f32 rows·cols·4 B | f16 rows·cols·2 B
//!          | int8 rows·4 B scales then rows·cols·1 B values
//! ```
//!
//! A store descriptor is `tag u8` (0 = dense) optionally followed by
//! parameters: tag 1 (hashed quotient-remainder) and tag 2 (hashed
//! double-hash) carry `param u32` (bucket / rows) then `seed u64`. A
//! dense table stores one tensor under its base name (`e_orig`); a
//! hashed table stores its two sub-tables as `<name>.t1` / `<name>.t2`
//! and the scorer recomposes rows at lookup time with the same slot
//! functions training used ([`optinter_nn::qr_slots`] /
//! [`optinter_nn::double_hash_slots`]), so f32 serving stays bit-exact.
//!
//! Decoding is total: every malformed input — truncation, a flipped bit,
//! an unknown version — maps to a typed [`ArtifactError`]; nothing in
//! this module panics on untrusted bytes. Quantized tensors keep their
//! *stored* payload in [`TensorData`], so encode(decode(bytes)) == bytes
//! holds without re-quantizing.

use crate::quant::{f16_bits_to_f32, f32_to_f16_bits, quantize_row_i8};
use optinter_core::net::DataDims;
use optinter_core::persist::{architecture_from_string, architecture_to_string};
use optinter_core::{Architecture, FactFn};
use optinter_tensor::kernels::Backend;
use optinter_tensor::Matrix;
use std::fmt;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// File magic: "OPTSRV" + artifact-format marker + NUL.
pub const MAGIC: [u8; 8] = *b"OPTSRVA\0";
/// Current artifact format version. Version 2 added the `backend` byte
/// (the kernel backend active when the model was frozen, for
/// reproducibility of the freeze-time numerics). Version 3 added the
/// per-table store descriptors (dense vs compositional hashed) and made
/// `row_map` conditional on the original table being dense. Older
/// versions are rejected rather than silently defaulted: the version
/// field is outside the checksum, so inferring layout from it on
/// mismatched inputs would turn bit flips into misparses.
pub const VERSION: u32 = 3;

/// Hard cap on tensor-name length (matches `optinter_core::persist`).
const MAX_NAME_LEN: usize = 4096;
/// Hard cap on the MLP depth recorded in an artifact.
const MAX_HIDDEN: usize = 64;

/// Everything that can go wrong reading an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The input ended before the named section was complete.
    Truncated(&'static str),
    /// The bytes are structurally invalid (failed checksum, inconsistent
    /// counts, unknown tags, ...).
    Corrupt(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic => write!(f, "not an OptInter serving artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v} (this build reads {VERSION})"
                )
            }
            ArtifactError::Truncated(what) => write!(f, "artifact truncated while reading {what}"),
            ArtifactError::Corrupt(why) => write!(f, "artifact corrupt: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Row-quantization mode applied to the embedding tables at freeze time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Full precision: bit-identical to the training weights.
    F32,
    /// IEEE binary16 per element.
    F16,
    /// Symmetric per-row int8 with an f32 scale.
    Int8,
}

impl Quant {
    fn tag(self) -> u8 {
        match self {
            Quant::F32 => 0,
            Quant::F16 => 1,
            Quant::Int8 => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, ArtifactError> {
        match t {
            0 => Ok(Quant::F32),
            1 => Ok(Quant::F16),
            2 => Ok(Quant::Int8),
            other => Err(ArtifactError::Corrupt(format!("unknown quant tag {other}"))),
        }
    }

    /// Human-readable name (CLI flag spelling).
    pub fn name(self) -> &'static str {
        match self {
            Quant::F32 => "f32",
            Quant::F16 => "f16",
            Quant::Int8 => "int8",
        }
    }
}

/// How an embedding table is stored in the artifact — the serving-side
/// mirror of `optinter_nn::StoreKind`, plus the hash seed the training
/// store used (the scorer must hash identically to recompose rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDesc {
    /// One dense tensor, one row per id.
    Dense,
    /// Quotient-remainder compositional table: two sub-tables of
    /// `ceil(key_space / bucket)` and `bucket` rows, recomposed as the
    /// elementwise product of rows `id / bucket` and `id % bucket`.
    HashedQr {
        /// Remainder-table size (must be nonzero).
        bucket: u32,
        /// Hash seed carried for format symmetry (QR slots ignore it).
        seed: u64,
    },
    /// Double-hash compositional table: two sub-tables of `rows` rows
    /// each, recomposed via two seeded multiply-shift hashes.
    HashedDouble {
        /// Rows in each sub-table (must be nonzero).
        rows: u32,
        /// Seed of the multiply-shift hash pair.
        seed: u64,
    },
}

impl StoreDesc {
    /// Whether the table is stored as two composable sub-tensors.
    pub fn is_hashed(self) -> bool {
        !matches!(self, StoreDesc::Dense)
    }

    fn write(self, out: &mut Vec<u8>) {
        match self {
            StoreDesc::Dense => out.push(0),
            StoreDesc::HashedQr { bucket, seed } => {
                out.push(1);
                put_u32(out, bucket);
                out.extend_from_slice(&seed.to_le_bytes());
            }
            StoreDesc::HashedDouble { rows, seed } => {
                out.push(2);
                put_u32(out, rows);
                out.extend_from_slice(&seed.to_le_bytes());
            }
        }
    }

    fn read(r: &mut Reader<'_>, what: &'static str) -> Result<Self, ArtifactError> {
        match r.u8(what)? {
            0 => Ok(StoreDesc::Dense),
            tag @ (1 | 2) => {
                let param = r.u32(what)?;
                let seed = r.u64(what)?;
                if param == 0 {
                    return Err(ArtifactError::Corrupt(format!(
                        "{what}: hashed store with zero-row sub-table"
                    )));
                }
                Ok(if tag == 1 {
                    StoreDesc::HashedQr {
                        bucket: param,
                        seed,
                    }
                } else {
                    StoreDesc::HashedDouble { rows: param, seed }
                })
            }
            other => Err(ArtifactError::Corrupt(format!(
                "{what}: unknown store tag {other}"
            ))),
        }
    }
}

fn fact_fn_tag(f: FactFn) -> u8 {
    match f {
        FactFn::Hadamard => 0,
        FactFn::PointwiseAdd => 1,
        FactFn::Generalized => 2,
    }
}

fn fact_fn_from_tag(t: u8) -> Result<FactFn, ArtifactError> {
    match t {
        0 => Ok(FactFn::Hadamard),
        1 => Ok(FactFn::PointwiseAdd),
        2 => Ok(FactFn::Generalized),
        other => Err(ArtifactError::Corrupt(format!(
            "unknown fact_fn tag {other}"
        ))),
    }
}

/// One tensor in its stored encoding. The scorer dequantizes on load;
/// serialization writes the stored payload verbatim, which is what makes
/// freeze → load → freeze byte-identical.
#[derive(Debug, Clone)]
pub enum TensorData {
    /// Full-precision matrix.
    F32(Matrix),
    /// binary16 elements, row-major.
    F16 {
        rows: usize,
        cols: usize,
        bits: Vec<u16>,
    },
    /// Per-row symmetric int8: `values[r*cols + c] * scales[r]`.
    Int8 {
        rows: usize,
        cols: usize,
        scales: Vec<f32>,
        values: Vec<i8>,
    },
}

impl TensorData {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            TensorData::F32(m) => m.rows(),
            TensorData::F16 { rows, .. } | TensorData::Int8 { rows, .. } => *rows,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            TensorData::F32(m) => m.cols(),
            TensorData::F16 { cols, .. } | TensorData::Int8 { cols, .. } => *cols,
        }
    }

    /// Encoding tag as stored on disk.
    fn enc_tag(&self) -> u8 {
        match self {
            TensorData::F32(_) => 0,
            TensorData::F16 { .. } => 1,
            TensorData::Int8 { .. } => 2,
        }
    }

    /// Materializes the f32 matrix the scorer computes with.
    pub fn to_matrix(&self) -> Matrix {
        match self {
            TensorData::F32(m) => m.clone(),
            TensorData::F16 { rows, cols, bits } => {
                let data: Vec<f32> = bits.iter().map(|&h| f16_bits_to_f32(h)).collect();
                Matrix::from_vec(*rows, *cols, data)
            }
            TensorData::Int8 {
                rows,
                cols,
                scales,
                values,
            } => {
                let mut data = Vec::with_capacity(rows * cols);
                for r in 0..*rows {
                    let s = scales[r];
                    for &v in &values[r * cols..(r + 1) * cols] {
                        data.push(v as f32 * s);
                    }
                }
                Matrix::from_vec(*rows, *cols, data)
            }
        }
    }

    /// Encodes an f32 matrix under the given quantization mode.
    pub fn encode(m: &Matrix, quant: Quant) -> Self {
        match quant {
            Quant::F32 => TensorData::F32(m.clone()),
            Quant::F16 => TensorData::F16 {
                rows: m.rows(),
                cols: m.cols(),
                bits: m.as_slice().iter().map(|&x| f32_to_f16_bits(x)).collect(),
            },
            Quant::Int8 => {
                let (rows, cols) = m.shape();
                let mut scales = Vec::with_capacity(rows);
                let mut values = vec![0i8; rows * cols];
                for r in 0..rows {
                    let scale = quantize_row_i8(m.row(r), &mut values[r * cols..(r + 1) * cols]);
                    scales.push(scale);
                }
                TensorData::Int8 {
                    rows,
                    cols,
                    scales,
                    values,
                }
            }
        }
    }
}

/// A frozen model: serving-layout metadata plus every weight tensor in
/// its stored encoding. Immutable by convention — nothing in this crate
/// mutates one after construction.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    /// Original-embedding width `s1`.
    pub orig_dim: usize,
    /// Cross-embedding width `s2`.
    pub cross_dim: usize,
    /// MLP hidden widths.
    pub hidden: Vec<usize>,
    /// Whether hidden blocks use LayerNorm.
    pub layer_norm: bool,
    /// Factorization function baked into the architecture.
    pub fact_fn: FactFn,
    /// Kernel backend active when the model was frozen. Recorded for
    /// reproducibility (an FMA backend rounds differently from the scalar
    /// one); loading does NOT force it — the scorer dispatches through the
    /// process-wide selection and reports both.
    pub backend: Backend,
    /// Quantization applied to the embedding tables.
    pub quant: Quant,
    /// Dataset dimensions the model was trained against.
    pub dims: DataDims,
    /// Per-pair interaction methods.
    pub arch: Architecture,
    /// Storage scheme of the original-feature table.
    pub orig_store: StoreDesc,
    /// Storage scheme of the compact cross-product table.
    pub cross_store: StoreDesc,
    /// Training-time global embedding id → hot-first arena row. Empty
    /// when `orig_store` is hashed (sub-table rows are shared across ids,
    /// so there is no per-id arena to reorder).
    pub row_map: Vec<u32>,
    /// `(name, data)` pairs: `e_orig` (arena order), `e_cross`, optional
    /// `fact_weights`, then `mlp.0 ..` in visit order.
    pub tensors: Vec<(String, TensorData)>,
}

impl FrozenModel {
    /// Looks a tensor up by name.
    pub fn tensor(&self, name: &str) -> Option<&TensorData> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Serializes the artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = vec![
            self.quant.tag(),
            self.layer_norm as u8,
            fact_fn_tag(self.fact_fn),
            self.backend.tag(),
        ];
        put_u32(&mut payload, self.orig_dim as u32);
        put_u32(&mut payload, self.cross_dim as u32);
        put_u32(&mut payload, self.hidden.len() as u32);
        for &h in &self.hidden {
            put_u32(&mut payload, h as u32);
        }
        put_u32(&mut payload, self.dims.num_fields as u32);
        put_u32(&mut payload, self.dims.num_pairs as u32);
        put_u32(&mut payload, self.dims.orig_vocab);
        put_u32(&mut payload, self.dims.cross_vocab);
        for &v in &self.dims.pair_offsets {
            put_u32(&mut payload, v);
        }
        for &v in &self.dims.pair_vocab_sizes {
            put_u32(&mut payload, v);
        }
        payload.extend_from_slice(architecture_to_string(&self.arch).as_bytes());
        self.orig_store.write(&mut payload);
        self.cross_store.write(&mut payload);
        if self.orig_store == StoreDesc::Dense {
            for &v in &self.row_map {
                put_u32(&mut payload, v);
            }
        }
        put_u32(&mut payload, self.tensors.len() as u32);
        for (name, data) in &self.tensors {
            put_u32(&mut payload, name.len() as u32);
            payload.extend_from_slice(name.as_bytes());
            payload.push(data.enc_tag());
            put_u32(&mut payload, data.rows() as u32);
            put_u32(&mut payload, data.cols() as u32);
            match data {
                TensorData::F32(m) => {
                    for &x in m.as_slice() {
                        payload.extend_from_slice(&x.to_le_bytes());
                    }
                }
                TensorData::F16 { bits, .. } => {
                    for &h in bits {
                        payload.extend_from_slice(&h.to_le_bytes());
                    }
                }
                TensorData::Int8 { scales, values, .. } => {
                    for &s in scales {
                        payload.extend_from_slice(&s.to_le_bytes());
                    }
                    for &v in values {
                        payload.push(v as u8);
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes and validates an artifact.
    ///
    /// # Errors
    /// Returns a typed [`ArtifactError`] for any malformed input; never
    /// panics on untrusted bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let checksum = r.u64("checksum")?;
        let payload = bytes
            .get(r.pos..)
            .ok_or(ArtifactError::Truncated("payload"))?;
        if fnv1a64(payload) != checksum {
            return Err(ArtifactError::Corrupt("checksum mismatch".to_string()));
        }

        let quant = Quant::from_tag(r.u8("quant")?)?;
        let layer_norm = match r.u8("layer_norm")? {
            0 => false,
            1 => true,
            other => {
                return Err(ArtifactError::Corrupt(format!(
                    "bad layer_norm byte {other}"
                )))
            }
        };
        let fact_fn = fact_fn_from_tag(r.u8("fact_fn")?)?;
        let backend_tag = r.u8("backend")?;
        let backend = Backend::from_tag(backend_tag).ok_or_else(|| {
            ArtifactError::Corrupt(format!("unknown kernel backend tag {backend_tag}"))
        })?;
        let orig_dim = r.u32("orig_dim")? as usize;
        let cross_dim = r.u32("cross_dim")? as usize;
        if orig_dim == 0 || cross_dim == 0 {
            return Err(ArtifactError::Corrupt("zero embedding width".to_string()));
        }
        let hidden_count = r.u32("hidden_count")? as usize;
        if hidden_count > MAX_HIDDEN {
            return Err(ArtifactError::Corrupt(format!(
                "implausible hidden layer count {hidden_count}"
            )));
        }
        let mut hidden = Vec::with_capacity(hidden_count);
        for _ in 0..hidden_count {
            hidden.push(r.u32("hidden width")? as usize);
        }
        let num_fields = r.u32("num_fields")? as usize;
        let num_pairs = r.u32("num_pairs")? as usize;
        if num_fields < 2 || num_pairs != num_fields * (num_fields - 1) / 2 {
            return Err(ArtifactError::Corrupt(format!(
                "pair count {num_pairs} inconsistent with {num_fields} fields"
            )));
        }
        let orig_vocab = r.u32("orig_vocab")?;
        let cross_vocab = r.u32("cross_vocab")?;
        let pair_offsets = r.u32_vec(num_pairs, "pair_offsets")?;
        let pair_vocab_sizes = r.u32_vec(num_pairs, "pair_vocab_sizes")?;
        let arch_bytes = r.take(num_pairs, "architecture")?;
        let arch_str = std::str::from_utf8(arch_bytes)
            .map_err(|_| ArtifactError::Corrupt("architecture is not UTF-8".to_string()))?;
        let arch = architecture_from_string(arch_str)
            .map_err(|e| ArtifactError::Corrupt(format!("bad architecture: {e}")))?;
        let orig_store = StoreDesc::read(&mut r, "orig_store")?;
        let cross_store = StoreDesc::read(&mut r, "cross_store")?;
        let row_map = if orig_store == StoreDesc::Dense {
            let map = r.u32_vec(orig_vocab as usize, "row_map")?;
            validate_permutation(&map, orig_vocab)?;
            map
        } else {
            Vec::new()
        };

        let tensor_count = r.u32("tensor_count")? as usize;
        let mut tensors = Vec::with_capacity(tensor_count.min(1024));
        for i in 0..tensor_count {
            let name_len = r.u32("tensor name length")? as usize;
            if name_len > MAX_NAME_LEN {
                return Err(ArtifactError::Corrupt(format!(
                    "tensor {i} name length {name_len} exceeds {MAX_NAME_LEN}"
                )));
            }
            let name_bytes = r.take(name_len, "tensor name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| ArtifactError::Corrupt(format!("tensor {i} name is not UTF-8")))?
                .to_string();
            let enc = r.u8("tensor encoding")?;
            let rows = r.u32("tensor rows")? as usize;
            let cols = r.u32("tensor cols")? as usize;
            let count = rows
                .checked_mul(cols)
                .ok_or_else(|| ArtifactError::Corrupt(format!("tensor `{name}` shape overflow")))?;
            let data = match enc {
                0 => {
                    let raw = r.take_mul(count, 4, "f32 tensor data")?;
                    let vals: Vec<f32> = raw
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(le_bytes(c)))
                        .collect();
                    TensorData::F32(Matrix::from_vec(rows, cols, vals))
                }
                1 => {
                    let raw = r.take_mul(count, 2, "f16 tensor data")?;
                    let bits: Vec<u16> = raw
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes(le_bytes(c)))
                        .collect();
                    TensorData::F16 { rows, cols, bits }
                }
                2 => {
                    let raw_scales = r.take_mul(rows, 4, "int8 tensor scales")?;
                    let scales: Vec<f32> = raw_scales
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(le_bytes(c)))
                        .collect();
                    let raw = r.take(count, "int8 tensor data")?;
                    let values: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
                    TensorData::Int8 {
                        rows,
                        cols,
                        scales,
                        values,
                    }
                }
                other => {
                    return Err(ArtifactError::Corrupt(format!(
                        "tensor `{name}` has unknown encoding {other}"
                    )))
                }
            };
            tensors.push((name, data));
        }
        if r.pos != bytes.len() {
            return Err(ArtifactError::Corrupt(format!(
                "{} trailing bytes after the last tensor",
                bytes.len() - r.pos
            )));
        }

        Ok(Self {
            orig_dim,
            cross_dim,
            hidden,
            layer_norm,
            fact_fn,
            backend,
            quant,
            dims: DataDims {
                num_fields,
                num_pairs,
                orig_vocab,
                cross_vocab,
                pair_offsets,
                pair_vocab_sizes,
            },
            arch,
            orig_store,
            cross_store,
            row_map,
            tensors,
        })
    }

    /// Writes the artifact to a file.
    pub fn write_file(&self, path: &Path) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        Ok(())
    }

    /// Reads and validates an artifact file.
    pub fn read_file(path: &Path) -> Result<Self, ArtifactError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

/// FNV-1a 64-bit over a byte slice.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `row_map` must be a bijection on `0..n` or lookups would silently read
/// the wrong rows.
fn validate_permutation(map: &[u32], n: u32) -> Result<(), ArtifactError> {
    let mut seen = vec![false; n as usize];
    for (i, &v) in map.iter().enumerate() {
        match seen.get_mut(v as usize) {
            Some(slot) if !*slot => *slot = true,
            Some(_) => {
                return Err(ArtifactError::Corrupt(format!(
                    "row_map maps two ids to row {v}"
                )))
            }
            None => {
                return Err(ArtifactError::Corrupt(format!(
                    "row_map[{i}] = {v} out of range (vocab {n})"
                )))
            }
        }
    }
    Ok(())
}

/// Bounds-checked cursor over the input bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ArtifactError::Truncated(what))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(ArtifactError::Truncated(what))?;
        self.pos = end;
        Ok(s)
    }

    /// `take(count * size)` with overflow protection.
    fn take_mul(
        &mut self,
        count: usize,
        size: usize,
        what: &'static str,
    ) -> Result<&'a [u8], ArtifactError> {
        let n = count
            .checked_mul(size)
            .ok_or_else(|| ArtifactError::Corrupt(format!("{what}: length overflow")))?;
        self.take(n, what)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ArtifactError> {
        let s = self.take(1, what)?;
        s.first().copied().ok_or(ArtifactError::Truncated(what))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(le_bytes(self.take(4, what)?)))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(le_bytes(self.take(8, what)?)))
    }

    fn u32_vec(&mut self, count: usize, what: &'static str) -> Result<Vec<u32>, ArtifactError> {
        let raw = self.take_mul(count, 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(le_bytes(c)))
            .collect())
    }
}

/// Copies a slice into a fixed array without indexing. Callers pass slices
/// whose length `take`/`chunks_exact` already pinned to `N`; a shorter
/// slice zero-fills instead of panicking, keeping the decode path
/// structurally panic-free.
fn le_bytes<const N: usize>(c: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (d, s) in out.iter_mut().zip(c) {
        *d = *s;
    }
    out
}
