//! Dense linear-algebra substrate for the OptInter reproduction.
//!
//! This crate provides the minimal numerical kernel every other crate builds
//! on: a row-major [`Matrix`] of `f32`, the handful of BLAS-like operations
//! needed by manual backpropagation ([`Matrix::matmul`],
//! [`Matrix::matmul_at_b`], [`Matrix::matmul_a_bt`], AXPY-style updates),
//! numerically stable scalar functions ([`numerics`]), weight initialisation
//! ([`init`]), and small statistics helpers ([`stats`]).
//!
//! Everything is deliberately simple and allocation-conscious: the
//! reproduction targets deterministic CPU training, and the hot loops are
//! written so LLVM can auto-vectorise them (inner loops over contiguous row
//! slices, no bounds checks in the `k`-loop thanks to slice re-borrows).
//!
//! Optional intra-batch data parallelism comes from [`pool::Pool`]: the
//! `*_pooled` matmul variants row-block the kernels across a worker pool
//! under an owner-computes discipline, so their results are bit-identical
//! to the serial path for any thread count (see the [`pool`] module docs
//! for the determinism contract).
//!
//! # Example
//!
//! ```
//! use optinter_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

// `unsafe` lives only in `pool` and the `kernels` SIMD backends (see
// DESIGN.md §7/§13 and the optinter-lint unsafe-confinement rule); inside
// an `unsafe fn`, every unsafe operation still needs its own `unsafe {}`
// block with a SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod init;
pub mod kernels;
pub mod matrix;
pub mod numerics;
pub mod ops;
pub mod pool;
#[cfg(test)]
mod proptests;
pub mod reference;
pub mod stats;

pub use matrix::Matrix;
pub use numerics::{log1p_exp, sigmoid, stable_bce, stable_bce_grad};
pub use pool::Pool;
