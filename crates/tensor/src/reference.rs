//! Naive reference matmul kernels.
//!
//! These are the straightforward triple-loop implementations the optimized
//! kernels in [`crate::matrix`] are validated against. They are kept out of
//! the hot path on purpose: proptests compare the blocked kernels to these
//! within tolerance, and the `perf` benchmark binary times both so the
//! blocked-vs-naive gap stays visible in the committed trajectory.
//!
//! Unlike the pre-blocking production kernels, these have no
//! `if scaled == 0.0 { continue }` fast-path: skipping a zero multiplier is
//! not IEEE-neutral (`0.0 * inf` must produce NaN, and `-0.0 + 0.0` must
//! produce `0.0`), so the reference spells out every multiply-add.

use crate::matrix::Matrix;

/// `out += alpha * a * b` — naive `i-k-j` loop.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix, alpha: f32) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "reference matmul: inner dimensions differ"
    );
    assert_eq!(
        out.rows(),
        a.rows(),
        "reference matmul: output row count mismatch"
    );
    assert_eq!(
        out.cols(),
        b.cols(),
        "reference matmul: output col count mismatch"
    );
    let n = b.cols();
    for r in 0..a.rows() {
        let a_row = a.row(r);
        let out_row = out.row_mut(r);
        for (k, &a_rk) in a_row.iter().enumerate() {
            let scaled = alpha * a_rk;
            let b_row = &b.as_slice()[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += scaled * bv;
            }
        }
    }
}

/// `out += alpha * a^T * b` — naive loop, `r` outermost so each output
/// element accumulates its `r` contributions in ascending order.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_at_b_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix, alpha: f32) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "reference matmul_at_b: row counts differ"
    );
    assert_eq!(
        out.rows(),
        a.cols(),
        "reference matmul_at_b: output row count mismatch"
    );
    assert_eq!(
        out.cols(),
        b.cols(),
        "reference matmul_at_b: output col count mismatch"
    );
    let n = b.cols();
    for r in 0..a.rows() {
        let a_row = a.row(r);
        let b_row = &b.as_slice()[r * n..(r + 1) * n];
        for (k, &a_rk) in a_row.iter().enumerate() {
            let scaled = alpha * a_rk;
            let out_row = out.row_mut(k);
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += scaled * bv;
            }
        }
    }
}

/// `out = a * b^T` — naive per-element ascending-`k` dot products.
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "reference matmul_a_bt: col counts differ"
    );
    assert_eq!(
        out.rows(),
        a.rows(),
        "reference matmul_a_bt: output row count mismatch"
    );
    assert_eq!(
        out.cols(),
        b.rows(),
        "reference matmul_a_bt: output col count mismatch"
    );
    for r in 0..a.rows() {
        let a_row = a.row(r);
        let out_row = out.row_mut(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(c);
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_matmul_matches_allocating_matmul() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = init::uniform(&mut rng, 7, 5, -1.0, 1.0);
        let b = init::uniform(&mut rng, 5, 9, -1.0, 1.0);
        let expected = a.matmul(&b);
        let mut out = Matrix::zeros(7, 9);
        matmul_accumulate(&a, &b, &mut out, 1.0);
        for (x, y) in out.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn reference_propagates_nan_through_zero_coefficients() {
        // A zero row in `a` multiplied against an inf entry of `b` must
        // produce NaN in the whole output row (0 * inf = NaN).
        let a = Matrix::from_fn(1, 2, |_, _| 0.0);
        let mut b = Matrix::zeros(2, 3);
        b.row_mut(0)[1] = f32::INFINITY;
        let mut out = Matrix::zeros(1, 3);
        matmul_accumulate(&a, &b, &mut out, 1.0);
        assert!(out.row(0)[1].is_nan(), "0 * inf must be NaN");
        assert_eq!(out.row(0)[0], 0.0);
    }
}
