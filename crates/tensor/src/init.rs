//! Weight initialisation schemes.
//!
//! The paper (Sec. III-A4) uses Xavier/Glorot uniform initialisation for all
//! dense layers and embedding tables, which keeps early-training activations
//! and gradients well-scaled. Everything is seeded explicitly so that every
//! experiment in the reproduction is deterministic.

use crate::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Xavier/Glorot uniform initialisation for a `fan_in x fan_out` weight
/// matrix: entries drawn from `U[-sqrt(6/(fan_in+fan_out)), +sqrt(...)]`.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in, fan_out, -bound, bound)
}

/// Xavier-style initialisation for an embedding table of shape
/// `vocab x dim`, where fan-in/fan-out are taken as the embedding dimension
/// on both sides (the common convention for lookup tables).
pub fn xavier_embedding(rng: &mut impl Rng, vocab: usize, dim: usize) -> Matrix {
    let bound = (6.0 / (2.0 * dim.max(1) as f32)).sqrt();
    uniform(rng, vocab, dim, -bound, bound)
}

/// Matrix with entries drawn from `U[lo, hi)`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    let dist = Uniform::new(lo, hi);
    let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Matrix with i.i.d. standard-normal entries scaled by `std`.
///
/// Uses the Box–Muller transform so we only depend on a uniform source.
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let (z0, z1) = box_muller(rng);
        data.push(z0 * std);
        if data.len() < rows * cols {
            data.push(z1 * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// One pair of independent standard-normal samples via Box–Muller.
pub fn box_muller(rng: &mut impl Rng) -> (f32, f32) {
    // Avoid u1 == 0 which would make ln(u1) = -inf.
    let u1: f32 = loop {
        let u: f32 = rng.gen();
        if u > f32::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f32 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let fan_in = 50;
        let fan_out = 30;
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let m = xavier_uniform(&mut rng, fan_in, fan_out);
        assert_eq!(m.shape(), (fan_in, fan_out));
        assert!(m.as_slice().iter().all(|&v| v >= -bound && v < bound));
    }

    #[test]
    fn xavier_is_seed_deterministic() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), 10, 10);
        assert_eq!(a, b);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(8), 10, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = normal(&mut rng, 100, 100, 2.0);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_odd_element_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = normal(&mut rng, 3, 3, 1.0);
        assert_eq!(m.len(), 9);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn embedding_init_bound_depends_on_dim_only() {
        let mut rng = StdRng::seed_from_u64(9);
        let dim = 16;
        let bound = (6.0 / (2.0 * dim as f32)).sqrt();
        let m = xavier_embedding(&mut rng, 1000, dim);
        assert!(m.as_slice().iter().all(|&v| v.abs() <= bound));
    }
}
