//! Row-major dense `f32` matrix and the matmul variants used by backprop.
//!
//! Every matmul kernel comes in two flavours: the plain serial method and a
//! `*_pooled` variant that row-blocks the same loops across a
//! [`Pool`](crate::pool::Pool). The pooled variants follow the
//! owner-computes discipline described in the [`pool`](crate::pool) module
//! docs — each output row is produced by exactly one job running the exact
//! serial per-row loop — so they are bit-identical to the serial kernels
//! for any thread count.

use crate::pool::Pool;
use std::fmt;

/// Multiply-add count below which the `*_pooled` kernels run serially:
/// dispatch overhead would dominate, and the fallback is free because the
/// two paths produce bit-identical results.
const POOL_MIN_FLOPS: usize = 32 * 1024;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the only tensor type in the reproduction: vectors are
/// represented either as plain slices or as `1 x n` / `n x 1` matrices.
/// Storage is a single contiguous `Vec<f32>`; element `(r, c)` lives at
/// `r * cols + c`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            // lint: allow(hot-path-alloc, reason="allocating constructor: hot callers only build zeros(0, 0) placeholders or one-time lazy workspaces; steady state is policed by the counting allocator")
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        // lint: allow(panic-free, reason="artifact decode sizes the vec to exactly rows*cols via checked take_mul before calling from_vec")
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "Matrix::from_rows: row {i} has inconsistent length"
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose element `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        // lint: allow(panic-free, reason="reached from the decode root only via the conservative .get name fallback; in-crate callers bound r and c by the matrix dims")
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies the contents of column `c` into a new vector.
    pub fn col_to_vec(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "col_to_vec: column {} out of bounds ({})",
            c,
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Copies column `c` into `out` — the allocation-free form of
    /// [`col_to_vec`](Self::col_to_vec) for hot-path callers.
    ///
    /// # Panics
    /// Panics if `c` is out of bounds or `out.len() != self.rows`.
    pub fn col_into(&self, c: usize, out: &mut [f32]) {
        assert!(
            c < self.cols,
            "col_into: column {} out of bounds ({})",
            c,
            self.cols
        );
        assert_eq!(out.len(), self.rows, "col_into: output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.data[r * self.cols + c];
        }
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Fills every element with `value`.
    pub fn fill_with(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * other`, allocating the output.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self * other` written into `out` (overwriting it).
    ///
    /// Dispatches through the active kernel backend (see
    /// [`crate::kernels`]); see `reference::matmul_accumulate` for the
    /// naive loop it is validated against.
    ///
    /// # Panics
    /// Panics on any dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions differ");
        assert_eq!(out.rows, self.rows, "matmul: output row count mismatch");
        assert_eq!(out.cols, other.cols, "matmul: output col count mismatch");
        out.fill_zero();
        self.matmul_accumulate(other, out, 1.0);
    }

    /// `out += alpha * self * other`.
    pub fn matmul_accumulate(&self, other: &Matrix, out: &mut Matrix, alpha: f32) {
        // lint: allow(panic-free, reason="operand shapes are pinned by Dense::forward_into's reset against frozen layer dims")
        assert_eq!(
            self.cols, other.rows,
            "matmul_accumulate: inner dimensions differ"
        );
        // lint: allow(panic-free, reason="operand shapes are pinned by Dense::forward_into's reset against frozen layer dims")
        assert_eq!(
            out.rows, self.rows,
            "matmul_accumulate: output row count mismatch"
        );
        // lint: allow(panic-free, reason="operand shapes are pinned by Dense::forward_into's reset against frozen layer dims")
        assert_eq!(
            out.cols, other.cols,
            "matmul_accumulate: output col count mismatch"
        );
        crate::kernels::active_kernel().mm_acc_rows(
            &self.data,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            alpha,
        );
    }

    /// `self^T * other`, allocating the output.
    ///
    /// This is the weight-gradient shape in backprop:
    /// `dW = X^T * dY` for `Y = X W`.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_accumulate(other, &mut out, 1.0);
        out
    }

    /// `out += alpha * self^T * other`.
    pub fn matmul_at_b_accumulate(&self, other: &Matrix, out: &mut Matrix, alpha: f32) {
        assert_eq!(self.rows, other.rows, "matmul_at_b: row counts differ");
        assert_eq!(
            out.rows, self.cols,
            "matmul_at_b: output row count mismatch"
        );
        assert_eq!(
            out.cols, other.cols,
            "matmul_at_b: output col count mismatch"
        );
        crate::kernels::active_kernel().mm_atb_rows(
            &self.data,
            self.cols,
            &other.data,
            other.cols,
            0,
            &mut out.data,
            alpha,
        );
    }

    /// `self * other^T`, allocating the output.
    ///
    /// This is the input-gradient shape in backprop:
    /// `dX = dY * W^T` for `Y = X W`.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_into(other, &mut out);
        out
    }

    /// `self * other^T` written into `out` (overwriting it).
    pub fn matmul_a_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_a_bt: col counts differ");
        assert_eq!(
            out.rows, self.rows,
            "matmul_a_bt: output row count mismatch"
        );
        assert_eq!(
            out.cols, other.rows,
            "matmul_a_bt: output col count mismatch"
        );
        crate::kernels::active_kernel().mm_abt_rows(
            &self.data,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
    }

    /// Matrix product `self * other` row-blocked across `pool`, allocating.
    ///
    /// Bit-identical to [`Matrix::matmul`] for any thread count.
    pub fn matmul_pooled(&self, other: &Matrix, pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into_pooled(other, &mut out, pool);
        out
    }

    /// `self * other` written into `out`, row-blocked across `pool`.
    ///
    /// Bit-identical to [`Matrix::matmul_into`] for any thread count.
    pub fn matmul_into_pooled(&self, other: &Matrix, out: &mut Matrix, pool: &Pool) {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions differ");
        assert_eq!(out.rows, self.rows, "matmul: output row count mismatch");
        assert_eq!(out.cols, other.cols, "matmul: output col count mismatch");
        out.fill_zero();
        self.matmul_accumulate_pooled(other, out, 1.0, pool);
    }

    /// `out += alpha * self * other`, row-blocked across `pool`.
    ///
    /// Each job owns a contiguous block of output rows and runs the serial
    /// per-row loop on it, so the result is bit-identical to
    /// [`Matrix::matmul_accumulate`] for any thread count.
    pub fn matmul_accumulate_pooled(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        alpha: f32,
        pool: &Pool,
    ) {
        // lint: allow(panic-free, reason="operand shapes are pinned by Dense::forward_into's reset against frozen layer dims")
        assert_eq!(
            self.cols, other.rows,
            "matmul_accumulate: inner dimensions differ"
        );
        // lint: allow(panic-free, reason="operand shapes are pinned by Dense::forward_into's reset against frozen layer dims")
        assert_eq!(
            out.rows, self.rows,
            "matmul_accumulate: output row count mismatch"
        );
        // lint: allow(panic-free, reason="operand shapes are pinned by Dense::forward_into's reset against frozen layer dims")
        assert_eq!(
            out.cols, other.cols,
            "matmul_accumulate: output col count mismatch"
        );
        if pool.is_serial() || self.rows * self.cols * other.cols < POOL_MIN_FLOPS {
            return self.matmul_accumulate(other, out, alpha);
        }
        let n = other.cols;
        let kdim = self.cols;
        let kern = crate::kernels::active_kernel();
        // The prepare hook sizes every participating thread's packing
        // scratch before it can win a chunk, keeping scratch growth
        // deterministic (see Pool::for_row_chunks_prepared).
        pool.for_row_chunks_prepared(
            &mut out.data,
            n,
            || kern.warm_acc_scratch(kdim, n),
            |r0, out_chunk| {
                let rows_in = out_chunk.len() / n;
                let a_chunk = &self.data[r0 * kdim..(r0 + rows_in) * kdim];
                kern.mm_acc_rows(a_chunk, kdim, &other.data, n, out_chunk, alpha);
            },
        );
    }

    /// `self^T * other` row-blocked across `pool`, allocating.
    ///
    /// Bit-identical to [`Matrix::matmul_at_b`] for any thread count.
    pub fn matmul_at_b_pooled(&self, other: &Matrix, pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_accumulate_pooled(other, &mut out, 1.0, pool);
        out
    }

    /// `out += alpha * self^T * other`, blocked over output rows.
    ///
    /// The serial kernel iterates `r` outermost, so output element `(k, j)`
    /// receives its `r` contributions in ascending order. Here each job owns
    /// a block of output rows `k` and replays the same ascending-`r`
    /// accumulation per row, which keeps the result bit-identical to
    /// [`Matrix::matmul_at_b_accumulate`] for any thread count.
    pub fn matmul_at_b_accumulate_pooled(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        alpha: f32,
        pool: &Pool,
    ) {
        assert_eq!(self.rows, other.rows, "matmul_at_b: row counts differ");
        assert_eq!(
            out.rows, self.cols,
            "matmul_at_b: output row count mismatch"
        );
        assert_eq!(
            out.cols, other.cols,
            "matmul_at_b: output col count mismatch"
        );
        if pool.is_serial() || self.rows * self.cols * other.cols < POOL_MIN_FLOPS {
            return self.matmul_at_b_accumulate(other, out, alpha);
        }
        let n = other.cols;
        let kern = crate::kernels::active_kernel();
        // Same deterministic scratch warming as matmul_accumulate_pooled.
        pool.for_row_chunks_prepared(
            &mut out.data,
            n,
            || kern.warm_atb_scratch(self.rows),
            |k0, out_chunk| {
                kern.mm_atb_rows(&self.data, self.cols, &other.data, n, k0, out_chunk, alpha);
            },
        );
    }

    /// `self * other^T` row-blocked across `pool`, allocating.
    ///
    /// Bit-identical to [`Matrix::matmul_a_bt`] for any thread count.
    pub fn matmul_a_bt_pooled(&self, other: &Matrix, pool: &Pool) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_into_pooled(other, &mut out, pool);
        out
    }

    /// `self * other^T` written into `out`, row-blocked across `pool`.
    ///
    /// Bit-identical to [`Matrix::matmul_a_bt_into`] for any thread count.
    pub fn matmul_a_bt_into_pooled(&self, other: &Matrix, out: &mut Matrix, pool: &Pool) {
        assert_eq!(self.cols, other.cols, "matmul_a_bt: col counts differ");
        assert_eq!(
            out.rows, self.rows,
            "matmul_a_bt: output row count mismatch"
        );
        assert_eq!(
            out.cols, other.rows,
            "matmul_a_bt: output col count mismatch"
        );
        if pool.is_serial() || self.rows * self.cols * other.rows < POOL_MIN_FLOPS {
            return self.matmul_a_bt_into(other, out);
        }
        let bn = other.rows;
        let ncols = self.cols;
        let kern = crate::kernels::active_kernel();
        pool.for_row_chunks(&mut out.data, bn, |r0, out_chunk| {
            let rows_in = out_chunk.len() / bn;
            let a_chunk = &self.data[r0 * ncols..(r0 + rows_in) * ncols];
            kern.mm_abt_rows(a_chunk, ncols, &other.data, bn, out_chunk);
        });
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * other` (AXPY).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Element-wise `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Element-wise Hadamard product `self ⊙ other`, allocating.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for a in self.data.iter_mut() {
            *a = f(*a);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Copies `src` into the column block starting at `col_offset`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn copy_block_from(&mut self, src: &Matrix, col_offset: usize) {
        assert_eq!(self.rows, src.rows, "copy_block_from: row count mismatch");
        assert!(
            col_offset + src.cols <= self.cols,
            "copy_block_from: block [{}, {}) exceeds {} cols",
            col_offset,
            col_offset + src.cols,
            self.cols
        );
        for r in 0..self.rows {
            let dst =
                &mut self.data[r * self.cols + col_offset..r * self.cols + col_offset + src.cols];
            dst.copy_from_slice(src.row(r));
        }
    }

    /// Extracts the column block `[col_offset, col_offset + width)` into a new matrix.
    pub fn block(&self, col_offset: usize, width: usize) -> Matrix {
        assert!(
            col_offset + width <= self.cols,
            "block: [{}, {}) exceeds {} cols",
            col_offset,
            col_offset + width,
            self.cols
        );
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + col_offset..r * self.cols + col_offset + width];
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Reshapes to `[rows, cols]` and zeroes every element, reusing the
    /// existing allocation whenever it is large enough. This is the
    /// workhorse of the scratch-buffer (`Workspace`) paths: a recycled
    /// matrix of any prior shape becomes a fresh zeroed one without
    /// touching the heap once its capacity has grown to the working-set
    /// maximum.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Makes `self` an element-for-element copy of `src` (shape included),
    /// reusing the existing allocation when possible.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// Extracts the column block `[col_offset, col_offset + width)` into
    /// `out`, resizing it as needed — the allocation-free form of
    /// [`block`](Self::block).
    pub fn block_into(&self, col_offset: usize, width: usize, out: &mut Matrix) {
        assert!(
            col_offset + width <= self.cols,
            "block_into: [{}, {}) exceeds {} cols",
            col_offset,
            col_offset + width,
            self.cols
        );
        out.reset(self.rows, width);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + col_offset..r * self.cols + col_offset + width];
            out.row_mut(r).copy_from_slice(src);
        }
    }

    /// Adds `src` into the column block starting at `col_offset`.
    pub fn add_block(&mut self, src: &Matrix, col_offset: usize) {
        assert_eq!(self.rows, src.rows, "add_block: row count mismatch");
        assert!(
            col_offset + src.cols <= self.cols,
            "add_block: block exceeds matrix"
        );
        for r in 0..self.rows {
            let dst =
                &mut self.data[r * self.cols + col_offset..r * self.cols + col_offset + src.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(r).iter()) {
                *d += s;
            }
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x` over slices.
#[inline]
pub fn axpy_slice(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.col_to_vec(1), vec![1.0, 4.0]);
    }

    #[test]
    fn col_into_matches_col_to_vec() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        for c in 0..3 {
            let mut out = vec![0.0f32; 4];
            m.col_into(c, &mut out);
            assert_eq!(out, m.col_to_vec(c));
        }
        let bad = std::panic::catch_unwind(|| {
            let mut out = vec![0.0f32; 3];
            m.col_into(0, &mut out);
        });
        assert!(bad.is_err(), "length mismatch must panic");
    }

    #[test]
    fn from_vec_checks_length() {
        let result = std::panic::catch_unwind(|| Matrix::from_vec(2, 2, vec![1.0; 3]));
        assert!(result.is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let i = Matrix::eye(3);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let b = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 3));
        // Row 0 of a: [0,1,2,3]; col 0 of b: [0,3,6,9] -> 0+3+12+27 = 42.
        assert_eq!(c.get(0, 0), 42.0);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.25);
        let expected = a.transpose().matmul(&b);
        let got = a.matmul_at_b(&b);
        assert_eq!(got.shape(), expected.shape());
        for (g, e) in got.as_slice().iter().zip(expected.as_slice()) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let b = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.3);
        let expected = a.matmul(&b.transpose());
        let got = a.matmul_a_bt(&b);
        assert_eq!(got.shape(), expected.shape());
        for (g, e) in got.as_slice().iter().zip(expected.as_slice()) {
            assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 31 + c * 7) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0; 4]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[4.0; 4]);
        a.scale(0.25);
        assert_eq!(a.as_slice(), &[1.0; 4]);
        let h = a.hadamard(&b);
        assert_eq!(h.as_slice(), &[2.0; 4]);
    }

    #[test]
    fn block_roundtrip() {
        let mut big = Matrix::zeros(2, 6);
        let small = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        big.copy_block_from(&small, 2);
        assert_eq!(big.row(0), &[0.0, 0.0, 1.0, 2.0, 0.0, 0.0]);
        let back = big.block(2, 2);
        assert_eq!(back, small);
        big.add_block(&small, 2);
        assert_eq!(big.get(1, 3), 8.0);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(m.sum(), -2.0);
        assert_eq!(m.mean(), -0.5);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.frob_sq(), 30.0);
    }

    #[test]
    fn dot_and_axpy_slice() {
        let a = [1.0, 2.0, 3.0];
        let mut b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy_slice(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn pooled_matmuls_are_bit_identical_to_serial() {
        // Large enough to clear POOL_MIN_FLOPS so the parallel path runs.
        let a = Matrix::from_fn(96, 64, |r, c| ((r * 67 + c * 13) as f32 * 0.013).sin());
        let b = Matrix::from_fn(64, 48, |r, c| ((r * 31 + c * 29) as f32 * 0.017).cos());
        // Same row count as `a`, as `matmul_at_b` requires.
        let g = Matrix::from_fn(96, 48, |r, c| ((r * 5 + c * 11) as f32 * 0.019).sin());
        let bt = Matrix::from_fn(48, 64, |r, c| ((r * 7 + c * 3) as f32 * 0.011).sin());
        for threads in [1, 2, 3, 4, 7] {
            let pool = Pool::new(threads);
            let ab = a.matmul(&b);
            let ab_p = a.matmul_pooled(&b, &pool);
            assert_bits_eq(&ab, &ab_p, "matmul", threads);
            let atb = a.matmul_at_b(&g);
            let atb_p = a.matmul_at_b_pooled(&g, &pool);
            assert_bits_eq(&atb, &atb_p, "matmul_at_b", threads);
            let abt = a.matmul_a_bt(&bt);
            let abt_p = a.matmul_a_bt_pooled(&bt, &pool);
            assert_bits_eq(&abt, &abt_p, "matmul_a_bt", threads);
        }
    }

    #[test]
    fn pooled_accumulate_variants_respect_alpha_and_existing_contents() {
        let a = Matrix::from_fn(80, 64, |r, c| ((r + 2 * c) as f32 * 0.01).sin());
        let b = Matrix::from_fn(64, 40, |r, c| ((3 * r + c) as f32 * 0.02).cos());
        let pool = Pool::new(4);
        let mut serial = Matrix::filled(80, 40, 0.5);
        let mut pooled = Matrix::filled(80, 40, 0.5);
        a.matmul_accumulate(&b, &mut serial, -1.25);
        a.matmul_accumulate_pooled(&b, &mut pooled, -1.25, &pool);
        assert_bits_eq(&serial, &pooled, "matmul_accumulate", 4);
        let g = Matrix::from_fn(80, 40, |r, c| ((r + 7 * c) as f32 * 0.03).sin());
        let mut serial_t = Matrix::filled(64, 40, -0.25);
        let mut pooled_t = Matrix::filled(64, 40, -0.25);
        a.matmul_at_b_accumulate(&g, &mut serial_t, 0.75);
        a.matmul_at_b_accumulate_pooled(&g, &mut pooled_t, 0.75, &pool);
        assert_bits_eq(&serial_t, &pooled_t, "matmul_at_b_accumulate", 4);
    }

    fn assert_bits_eq(serial: &Matrix, pooled: &Matrix, kernel: &str, threads: usize) {
        assert_eq!(serial.shape(), pooled.shape());
        for (i, (s, p)) in serial.as_slice().iter().zip(pooled.as_slice()).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "{kernel} with {threads} threads diverged at flat index {i}: {s} vs {p}"
            );
        }
    }

    #[test]
    fn matmul_accumulate_adds() {
        let a = Matrix::eye(2);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut out = Matrix::filled(2, 2, 1.0);
        a.matmul_accumulate(&b, &mut out, 3.0);
        assert_eq!(out.as_slice(), &[4.0, 1.0, 1.0, 4.0]);
    }

    #[test]
    fn matmul_accumulate_propagates_nan_through_zero_coefficients() {
        // Regression for the removed `if scaled == 0.0 { continue }`
        // fast-path: skipping a zero multiplier is not IEEE-neutral, because
        // `0.0 * inf` must produce NaN. The production kernel must spell out
        // every multiply-add, so a zero row of `a` against an inf/NaN entry
        // of `b` poisons the corresponding output column.
        let a = Matrix::from_fn(3, 5, |r, c| if r == 1 { 0.0 } else { (r + c) as f32 });
        let mut b = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f32 * 0.1);
        b.row_mut(2)[3] = f32::INFINITY;
        b.row_mut(4)[6] = f32::NAN;
        let mut out = Matrix::zeros(3, 7);
        a.matmul_accumulate(&b, &mut out, 1.0);
        // Row 1 of `a` is all zeros: col 3 hits 0*inf, col 6 hits 0*NaN.
        assert!(
            out.get(1, 3).is_nan(),
            "0 * inf must be NaN, got {}",
            out.get(1, 3)
        );
        assert!(
            out.get(1, 6).is_nan(),
            "0 * NaN must be NaN, got {}",
            out.get(1, 6)
        );
        // Columns that never meet a non-finite value stay finite.
        assert!(out.get(1, 0).is_finite());
        assert!(out.get(0, 0).is_finite());
        // Rows with non-zero coefficients see inf (not NaN) in the inf column.
        assert!(out.get(0, 3).is_infinite());
    }

    #[test]
    fn matmul_accumulate_propagates_nan_with_zero_alpha() {
        // alpha == 0.0 must not short-circuit either: 0 * inf panel = NaN.
        let a = Matrix::filled(2, 3, 1.0);
        let mut b = Matrix::zeros(3, 4);
        b.row_mut(1)[2] = f32::INFINITY;
        let mut out = Matrix::zeros(2, 4);
        a.matmul_accumulate(&b, &mut out, 0.0);
        assert!(out.get(0, 2).is_nan(), "alpha=0 times inf must be NaN");
        assert_eq!(out.get(0, 0), 0.0);
    }
}
