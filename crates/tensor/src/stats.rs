//! Small statistics helpers shared by metrics and the benchmark harness.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (0 for fewer than two samples).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Minimum and maximum of a slice.
///
/// # Panics
/// Panics on empty input.
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty(), "min_max of empty slice");
    let mut lo = xs[0];
    let mut hi = xs[0];
    for &x in &xs[1..] {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    (lo, hi)
}

/// Nearest-rank percentile of an ascending-sorted slice, `q` in `[0, 1]`.
/// `q = 0` yields the minimum, `q = 1` the maximum.
///
/// # Panics
/// Panics on empty input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    debug_assert!((0.0..=1.0).contains(&q), "percentile rank out of range");
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns 0 when either side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation of two equal-length slices.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    pearson(&rx, &ry)
}

/// Average (fractional) ranks of a slice, 1-based; ties share the mean rank.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the average.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_with_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_is_one() {
        let xs = [1.0, 5.0, 9.0, 20.0];
        let ys = [0.1, 0.2, 7.0, 7.5];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }
}
