//! Row-wise tensor operations: softmax, log-softmax, and reductions used by
//! the Gumbel-softmax combination block and by layer normalisation.

use crate::Matrix;

/// In-place row-wise softmax with temperature.
///
/// Each row `x` becomes `exp((x - max(x)) / tau) / sum(...)`. Subtracting the
/// row max keeps the exponentials bounded for any input scale.
///
/// # Panics
/// Panics if `tau <= 0`.
pub fn softmax_rows_inplace(m: &mut Matrix, tau: f32) {
    assert!(tau > 0.0, "softmax temperature must be positive, got {tau}");
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = ((*v - max) / tau).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Softmax over a plain slice, written into a caller-provided buffer —
/// the allocation-free form of [`softmax_slice`] for hot paths.
pub fn softmax_into(x: &[f32], tau: f32, out: &mut [f32]) {
    assert!(tau > 0.0, "softmax temperature must be positive, got {tau}");
    assert_eq!(x.len(), out.len(), "softmax_into: length mismatch");
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = ((v - max) / tau).exp();
        sum += *o;
    }
    let inv = 1.0 / sum;
    for v in out.iter_mut() {
        *v *= inv;
    }
}

/// Row-wise softmax over a plain slice, returning probabilities.
pub fn softmax_slice(x: &[f32], tau: f32) -> Vec<f32> {
    let mut out = vec![0.0; x.len()];
    softmax_into(x, tau, &mut out);
    out
}

/// Backward pass of softmax for a single row.
///
/// Given probabilities `p = softmax(x / tau)` and upstream gradient `dp`,
/// writes `dx` where `dx_i = (p_i / tau) * (dp_i - sum_j dp_j p_j)`.
pub fn softmax_backward_slice(p: &[f32], dp: &[f32], tau: f32, dx: &mut [f32]) {
    debug_assert_eq!(p.len(), dp.len());
    debug_assert_eq!(p.len(), dx.len());
    let inner: f32 = p.iter().zip(dp.iter()).map(|(&pi, &di)| pi * di).sum();
    let inv_tau = 1.0 / tau;
    for ((d, &pi), &di) in dx.iter_mut().zip(p.iter()).zip(dp.iter()) {
        *d = pi * inv_tau * (di - inner);
    }
}

/// Index of the maximum element of a slice (first on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = x[0];
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Row-wise mean and (biased) variance, as used by layer normalisation.
pub fn row_mean_var(row: &[f32]) -> (f32, f32) {
    let n = row.len() as f32;
    if row.is_empty() {
        return (0.0, 0.0);
    }
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        softmax_rows_inplace(&mut m, 1.0);
        for r in 0..m.rows() {
            assert_close(m.row(r).iter().sum::<f32>(), 1.0, 1e-6);
            assert!(m.row(r).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax_slice(&[1.0, 2.0, 3.0], 1.0);
        let b = softmax_slice(&[101.0, 102.0, 103.0], 1.0);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_close(*x, *y, 1e-6);
        }
    }

    #[test]
    fn low_temperature_approaches_onehot() {
        let p = softmax_slice(&[1.0, 2.0, 3.0], 0.01);
        assert!(p[2] > 0.999);
    }

    #[test]
    fn high_temperature_approaches_uniform() {
        let p = softmax_slice(&[1.0, 2.0, 3.0], 1e4);
        for &v in &p {
            assert_close(v, 1.0 / 3.0, 1e-3);
        }
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let p = softmax_slice(&[1e4, 1e4 + 1.0], 1.0);
        assert!(p.iter().all(|v| v.is_finite()));
        assert_close(p[0] + p[1], 1.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn softmax_rejects_nonpositive_tau() {
        softmax_slice(&[1.0], 0.0);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = [0.5f32, -1.0, 2.0];
        let tau = 0.7;
        let dp = [0.3f32, -0.2, 0.9];
        let p = softmax_slice(&x, tau);
        let mut dx = [0.0f32; 3];
        softmax_backward_slice(&p, &dp, tau, &mut dx);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let pp = softmax_slice(&xp, tau);
            let pm = softmax_slice(&xm, tau);
            let mut num = 0.0;
            for j in 0..3 {
                num += dp[j] * (pp[j] - pm[j]) / (2.0 * eps);
            }
            assert_close(dx[i], num, 2e-3);
        }
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn row_mean_var_known() {
        let (m, v) = row_mean_var(&[1.0, 2.0, 3.0, 4.0]);
        assert_close(m, 2.5, 1e-6);
        assert_close(v, 1.25, 1e-6);
    }
}
