//! Matmul kernel backends behind a dispatch trait.
//!
//! The three product families ([`Matrix::matmul_into`],
//! [`Matrix::matmul_at_b_accumulate`], [`Matrix::matmul_a_bt_into`] and
//! their pooled variants) route through [`MatMulKernel`], with two
//! implementations:
//!
//! * [`ScalarBackend`] — the register-tiled scalar kernels (4x8 tiles,
//!   16-lane dots) that previously lived in `matrix.rs`. No `unsafe`; they
//!   rely on autovectorization at `target-cpu=x86-64-v3`.
//! * [`AvxFmaBackend`] — packed-panel microkernels over explicit
//!   `core::arch::x86_64` AVX2 + FMA intrinsics (6x16 tiles, two `ymm`
//!   accumulators per row). This is the only module in the workspace
//!   besides the pool/embedding arenas allowed to contain `unsafe`
//!   (lint rule `unsafe-confinement`), and every site carries a SAFETY
//!   comment.
//!
//! **Backend selection.** [`active`] resolves once per process: the
//! `OPTINTER_KERNEL_BACKEND={scalar,avx2fma}` env var wins if set and
//! supported, otherwise runtime feature detection
//! (`is_x86_feature_detected!("avx2")` + `"fma"`) picks `avx2fma` when the
//! host supports it and `scalar` otherwise. The choice is logged to stderr
//! once. CLI `--backend` flags call [`set_active`] before any matmul runs.
//!
//! **Determinism contract (per backend).** Every output element is
//! produced by exactly one accumulator chain that walks the reduction
//! dimension in ascending order and is combined with the output exactly
//! once; the remainder kernels replay the *same* per-element chain. An
//! element's value therefore does not depend on which block shape computed
//! it, so each backend is invariant under any row regrouping: serial,
//! pooled with any chunk split, and any thread count produce bit-identical
//! results. What is *not* promised is bitwise equality *across* backends:
//! the AVX backend contracts multiply-add pairs into fused FMAs (one
//! rounding instead of two), so it agrees with `ScalarBackend` and
//! `tensor::reference` only to relative tolerance. See DESIGN.md §13.

use std::sync::atomic::{AtomicU8, Ordering};

/// The kernel-backend interface: one method per product family, each
/// operating on a contiguous block of output rows so the same entry points
/// serve both the serial paths and the pooled owner-computes row chunks.
#[allow(clippy::too_many_arguments)]
pub trait MatMulKernel: Sync {
    /// Stable name recorded in bench rows and artifacts.
    fn name(&self) -> &'static str;

    /// `out_rows += alpha * a_rows * b` for a contiguous block of output
    /// rows: `a_rows` is the matching row block of `A` (`rows x k`), `b`
    /// the full `k x n` right-hand side, `out_rows` the `rows x n` block.
    fn mm_acc_rows(
        &self,
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out_rows: &mut [f32],
        alpha: f32,
    );

    /// `out_chunk += alpha * (A^T G)` rows `k0..`, for `A: m x acols` and
    /// `G: m x n`; `out_chunk` is a contiguous block of `A^T G` output rows
    /// starting at row `k0` (i.e. column `k0` of `A`).
    fn mm_atb_rows(
        &self,
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        k0: usize,
        out_chunk: &mut [f32],
        alpha: f32,
    );

    /// `out_rows = a_rows * b^T` for a contiguous block of output rows:
    /// `a_rows` is `rows x ncols`, `b` is `bn x ncols`, `out_rows` is
    /// `rows x bn`.
    fn mm_abt_rows(&self, a_rows: &[f32], ncols: usize, b: &[f32], bn: usize, out_rows: &mut [f32]);

    /// Pre-sizes, on the calling thread, any thread-local scratch that
    /// [`mm_acc_rows`](Self::mm_acc_rows) needs for a `k x n` right-hand
    /// side. Pooled matmuls pass this to
    /// [`Pool::for_row_chunks_prepared`](crate::Pool::for_row_chunks_prepared)
    /// so every worker's scratch grows on first sight of a shape — not at
    /// the scheduling-dependent moment that worker first wins a chunk
    /// (which could land inside a caller's zero-allocation window).
    /// Backends without scratch keep the default no-op.
    fn warm_acc_scratch(&self, _k: usize, _n: usize) {}

    /// [`warm_acc_scratch`](Self::warm_acc_scratch) for
    /// [`mm_atb_rows`](Self::mm_atb_rows), whose packing scratch scales
    /// with the reduction length `m` (the shared row count of A and G).
    fn warm_atb_scratch(&self, _m: usize) {}
}

/// Which kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Register-tiled safe-Rust kernels (autovectorized).
    Scalar,
    /// Packed-panel AVX2 + FMA intrinsic kernels.
    AvxFma,
}

impl Backend {
    /// Stable lower-case name (`scalar` / `avx2fma`), used by the env/CLI
    /// override, bench JSON rows, and log lines.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::AvxFma => "avx2fma",
        }
    }

    /// Parses [`Backend::name`] strings; `None` for anything else.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "scalar" => Some(Backend::Scalar),
            "avx2fma" => Some(Backend::AvxFma),
            _ => None,
        }
    }

    /// One-byte artifact encoding (serve artifact header).
    pub fn tag(self) -> u8 {
        match self {
            Backend::Scalar => 0,
            Backend::AvxFma => 1,
        }
    }

    /// Inverse of [`Backend::tag`].
    pub fn from_tag(t: u8) -> Option<Backend> {
        match t {
            0 => Some(Backend::Scalar),
            1 => Some(Backend::AvxFma),
            _ => None,
        }
    }

    /// Whether this backend can run on the current host. `Scalar` always
    /// can; `AvxFma` needs a runtime AVX2 + FMA check (and is never
    /// supported under miri, which cannot execute vendor intrinsics).
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::AvxFma => avx_fma_detected(),
        }
    }
}

/// Runtime CPU check for the AVX backend; `false` off x86-64 and under
/// miri.
fn avx_fma_detected() -> bool {
    if cfg!(miri) {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Process-wide backend selection: 0 = not yet resolved, otherwise
/// `Backend::tag() + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn backend_from_code(code: u8) -> Option<Backend> {
    Backend::from_tag(code.wrapping_sub(1))
}

/// First-use resolution: env override if valid and supported, else CPU
/// detection.
fn resolve_default() -> Backend {
    match std::env::var("OPTINTER_KERNEL_BACKEND") {
        Ok(v) => match Backend::parse(&v) {
            Some(b) if b.is_supported() => b,
            Some(b) => {
                eprintln!(
                    "[optinter-tensor] OPTINTER_KERNEL_BACKEND={} not supported on this host; \
                     falling back to scalar",
                    b.name()
                );
                Backend::Scalar
            }
            None => {
                eprintln!(
                    "[optinter-tensor] unknown OPTINTER_KERNEL_BACKEND value {v:?} \
                     (expected scalar|avx2fma); using auto-detection"
                );
                detect()
            }
        },
        Err(_) => detect(),
    }
}

/// Auto-detected default: `avx2fma` when the host supports it.
fn detect() -> Backend {
    if avx_fma_detected() {
        Backend::AvxFma
    } else {
        Backend::Scalar
    }
}

/// The backend the process currently dispatches to, resolving (and logging
/// the choice once) on first use.
pub fn active() -> Backend {
    loop {
        match backend_from_code(ACTIVE.load(Ordering::Relaxed)) {
            Some(b) => return b,
            None => {
                let b = resolve_default();
                if ACTIVE
                    .compare_exchange(0, b.tag() + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    eprintln!("[optinter-tensor] kernel backend: {}", b.name());
                }
            }
        }
    }
}

/// Forces the process-wide backend (CLI `--backend`, tests). Returns the
/// previously active backend (or `b` itself if none had been resolved
/// yet), so callers can restore it.
///
/// # Panics
/// Panics if `b` is not supported on this host; check
/// [`Backend::is_supported`] first when the value comes from user input.
pub fn set_active(b: Backend) -> Backend {
    assert!(
        b.is_supported(),
        "kernel backend {} is not supported on this host",
        b.name()
    );
    let prev = ACTIVE.swap(b.tag() + 1, Ordering::Relaxed);
    eprintln!("[optinter-tensor] kernel backend: {} (forced)", b.name());
    backend_from_code(prev).unwrap_or(b)
}

/// Kernel object for an explicit backend (the proptest equivalence suite
/// calls implementations directly through this, without touching the
/// process-wide selection).
pub fn kernel_for(b: Backend) -> &'static dyn MatMulKernel {
    match b {
        Backend::Scalar => &ScalarBackend,
        Backend::AvxFma => &AvxFmaBackend,
    }
}

/// Kernel object for the currently active backend — the single dispatch
/// point used by every `Matrix` matmul entry.
pub fn active_kernel() -> &'static dyn MatMulKernel {
    kernel_for(active())
}

// ---------------------------------------------------------------------------
// Scalar backend: register-tiled kernels.
//
// All three products run the same scheme: output rows are processed in
// blocks of `MR = 4` and output columns in panels of `NR = 8`, with the
// `MR x NR` accumulator tile held in registers across the entire reduction
// loop (8 SSE registers for the tile, leaving room for the broadcast
// multipliers and the loaded B panel in the 16-register x86-64 budget).
// Each B/G panel row loaded from memory feeds `MR` rows of output, cutting
// memory traffic `MR`-fold versus the naive `i-k-j` loop, and the `NR`-wide
// independent lanes keep the SIMD units fed.
//
// The determinism contract is the module-level one: single ascending
// accumulator chain per element, remainder kernels replay the same chain.
// No `unsafe`: the kernels are built on `split_at`/`chunks_exact` and
// fixed-size array tiles, which LLVM lowers without bounds checks.
// ---------------------------------------------------------------------------

/// The blocked scalar kernels: the workspace determinism *reference*
/// implementation (DESIGN.md §6), and the fallback on hosts without AVX2.
pub struct ScalarBackend;

#[allow(clippy::too_many_arguments)]
impl MatMulKernel for ScalarBackend {
    fn name(&self) -> &'static str {
        Backend::Scalar.name()
    }

    fn mm_acc_rows(
        &self,
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out_rows: &mut [f32],
        alpha: f32,
    ) {
        scalar::mm_acc_rows(a_rows, k, b, n, out_rows, alpha);
    }

    fn mm_atb_rows(
        &self,
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        k0: usize,
        out_chunk: &mut [f32],
        alpha: f32,
    ) {
        scalar::mm_atb_rows(a, acols, g, n, k0, out_chunk, alpha);
    }

    fn mm_abt_rows(
        &self,
        a_rows: &[f32],
        ncols: usize,
        b: &[f32],
        bn: usize,
        out_rows: &mut [f32],
    ) {
        scalar::mm_abt_rows(a_rows, ncols, b, bn, out_rows);
    }
}

mod scalar {
    /// Output-row block height of the microkernels.
    const MR: usize = 4;
    /// Output-column panel width of the microkernels.
    const NR: usize = 8;

    /// `out_rows += alpha * a_rows * b` for a contiguous block of output
    /// rows.
    pub(super) fn mm_acc_rows(
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out_rows: &mut [f32],
        alpha: f32,
    ) {
        if k == 0 || n == 0 {
            return;
        }
        debug_assert_eq!(a_rows.len() % k, 0);
        debug_assert_eq!(b.len(), k * n);
        let mut a_blocks = a_rows.chunks_exact(MR * k);
        let mut o_blocks = out_rows.chunks_exact_mut(MR * n);
        for (ab, ob) in (&mut a_blocks).zip(&mut o_blocks) {
            mm_acc_mr(ab, k, b, n, ob, alpha);
        }
        for (ar, or) in a_blocks
            .remainder()
            .chunks_exact(k)
            .zip(o_blocks.into_remainder().chunks_exact_mut(n))
        {
            mm_acc_1(ar, b, n, or, alpha);
        }
    }

    /// `MR`-row microkernel of [`mm_acc_rows`].
    ///
    /// Per element `(r, c)`: `t = Σ_k a[r,k] * b[k,c]` in ascending `k` on
    /// a single accumulator, then `out += alpha * t` — `alpha` is applied
    /// once per element, outside the reduction loop.
    fn mm_acc_mr(ab: &[f32], k: usize, b: &[f32], n: usize, ob: &mut [f32], alpha: f32) {
        let (a0, rest) = ab.split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, a3) = rest.split_at(k);
        let (o0, rest) = ob.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut c = 0;
        while c + NR <= n {
            let mut t0 = [0.0f32; NR];
            let mut t1 = [0.0f32; NR];
            let mut t2 = [0.0f32; NR];
            let mut t3 = [0.0f32; NR];
            let rows = b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3);
            for ((((brow, &x0), &x1), &x2), &x3) in rows {
                let bp = &brow[c..c + NR];
                for j in 0..NR {
                    t0[j] += x0 * bp[j];
                    t1[j] += x1 * bp[j];
                    t2[j] += x2 * bp[j];
                    t3[j] += x3 * bp[j];
                }
            }
            for j in 0..NR {
                o0[c + j] += alpha * t0[j];
                o1[c + j] += alpha * t1[j];
                o2[c + j] += alpha * t2[j];
                o3[c + j] += alpha * t3[j];
            }
            c += NR;
        }
        while c < n {
            let mut t0 = 0.0f32;
            let mut t1 = 0.0f32;
            let mut t2 = 0.0f32;
            let mut t3 = 0.0f32;
            let rows = b.chunks_exact(n).zip(a0).zip(a1).zip(a2).zip(a3);
            for ((((brow, &x0), &x1), &x2), &x3) in rows {
                let bv = brow[c];
                t0 += x0 * bv;
                t1 += x1 * bv;
                t2 += x2 * bv;
                t3 += x3 * bv;
            }
            o0[c] += alpha * t0;
            o1[c] += alpha * t1;
            o2[c] += alpha * t2;
            o3[c] += alpha * t3;
            c += 1;
        }
    }

    /// Single-row tail of [`mm_acc_rows`]; replays the same per-element
    /// chain.
    fn mm_acc_1(ar: &[f32], b: &[f32], n: usize, or: &mut [f32], alpha: f32) {
        let mut c = 0;
        while c + NR <= n {
            let mut t = [0.0f32; NR];
            for (brow, &x) in b.chunks_exact(n).zip(ar) {
                let bp = &brow[c..c + NR];
                for j in 0..NR {
                    t[j] += x * bp[j];
                }
            }
            for j in 0..NR {
                or[c + j] += alpha * t[j];
            }
            c += NR;
        }
        while c < n {
            let mut t = 0.0f32;
            for (brow, &x) in b.chunks_exact(n).zip(ar) {
                t += x * brow[c];
            }
            or[c] += alpha * t;
            c += 1;
        }
    }

    /// `out_chunk += alpha * (A^T G)` rows `k0..`.
    pub(super) fn mm_atb_rows(
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        k0: usize,
        out_chunk: &mut [f32],
        alpha: f32,
    ) {
        if n == 0 {
            return;
        }
        debug_assert_eq!(out_chunk.len() % n, 0);
        let mut col = k0;
        let mut o_blocks = out_chunk.chunks_exact_mut(MR * n);
        for ob in &mut o_blocks {
            mm_atb_mr(a, acols, g, n, col, ob, alpha);
            col += MR;
        }
        for or in o_blocks.into_remainder().chunks_exact_mut(n) {
            mm_atb_1(a, acols, g, n, col, or, alpha);
            col += 1;
        }
    }

    /// `MR`-output-row microkernel of [`mm_atb_rows`]: output rows are
    /// columns `col..col + MR` of `A`, reduced over `A`/`G` rows in
    /// ascending order. Same per-element scheme as [`mm_acc_mr`]: single
    /// ascending accumulator, `alpha` applied once at the end.
    fn mm_atb_mr(
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        col: usize,
        ob: &mut [f32],
        alpha: f32,
    ) {
        let (o0, rest) = ob.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut c = 0;
        while c + NR <= n {
            let mut t0 = [0.0f32; NR];
            let mut t1 = [0.0f32; NR];
            let mut t2 = [0.0f32; NR];
            let mut t3 = [0.0f32; NR];
            for (arow, grow) in a.chunks_exact(acols).zip(g.chunks_exact(n)) {
                let av = &arow[col..col + MR];
                let gp = &grow[c..c + NR];
                for j in 0..NR {
                    t0[j] += av[0] * gp[j];
                    t1[j] += av[1] * gp[j];
                    t2[j] += av[2] * gp[j];
                    t3[j] += av[3] * gp[j];
                }
            }
            for j in 0..NR {
                o0[c + j] += alpha * t0[j];
                o1[c + j] += alpha * t1[j];
                o2[c + j] += alpha * t2[j];
                o3[c + j] += alpha * t3[j];
            }
            c += NR;
        }
        while c < n {
            let mut t0 = 0.0f32;
            let mut t1 = 0.0f32;
            let mut t2 = 0.0f32;
            let mut t3 = 0.0f32;
            for (arow, grow) in a.chunks_exact(acols).zip(g.chunks_exact(n)) {
                let av = &arow[col..col + MR];
                let gv = grow[c];
                t0 += av[0] * gv;
                t1 += av[1] * gv;
                t2 += av[2] * gv;
                t3 += av[3] * gv;
            }
            o0[c] += alpha * t0;
            o1[c] += alpha * t1;
            o2[c] += alpha * t2;
            o3[c] += alpha * t3;
            c += 1;
        }
    }

    /// Single-output-row tail of [`mm_atb_rows`]; same per-element chain.
    fn mm_atb_1(
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        col: usize,
        or: &mut [f32],
        alpha: f32,
    ) {
        let mut c = 0;
        while c + NR <= n {
            let mut t = [0.0f32; NR];
            for (arow, grow) in a.chunks_exact(acols).zip(g.chunks_exact(n)) {
                let x = arow[col];
                let gp = &grow[c..c + NR];
                for j in 0..NR {
                    t[j] += x * gp[j];
                }
            }
            for j in 0..NR {
                or[c + j] += alpha * t[j];
            }
            c += NR;
        }
        while c < n {
            let mut t = 0.0f32;
            for (arow, grow) in a.chunks_exact(acols).zip(g.chunks_exact(n)) {
                t += arow[col] * grow[c];
            }
            or[c] += alpha * t;
            c += 1;
        }
    }

    /// `out_rows = a_rows * b^T`: every element is the same [`dot_lanes`]
    /// chain, so the 4-row cache blocking cannot affect results.
    pub(super) fn mm_abt_rows(
        a_rows: &[f32],
        ncols: usize,
        b: &[f32],
        bn: usize,
        out_rows: &mut [f32],
    ) {
        if bn == 0 {
            return;
        }
        if ncols == 0 {
            out_rows.fill(0.0);
            return;
        }
        let mut a_blocks = a_rows.chunks_exact(MR * ncols);
        let mut o_blocks = out_rows.chunks_exact_mut(MR * bn);
        for (ab, ob) in (&mut a_blocks).zip(&mut o_blocks) {
            let (a0, rest) = ab.split_at(ncols);
            let (a1, rest) = rest.split_at(ncols);
            let (a2, a3) = rest.split_at(ncols);
            let (o0, rest) = ob.split_at_mut(bn);
            let (o1, rest) = rest.split_at_mut(bn);
            let (o2, o3) = rest.split_at_mut(bn);
            for (c, brow) in b.chunks_exact(ncols).enumerate() {
                let [d0, d1, d2, d3] = dot4_lanes(a0, a1, a2, a3, brow);
                o0[c] = d0;
                o1[c] = d1;
                o2[c] = d2;
                o3[c] = d3;
            }
        }
        for (ar, or) in a_blocks
            .remainder()
            .chunks_exact(ncols)
            .zip(o_blocks.into_remainder().chunks_exact_mut(bn))
        {
            for (c, brow) in b.chunks_exact(ncols).enumerate() {
                or[c] = dot_lanes(ar, brow);
            }
        }
    }

    /// Dot product via 16 independent strided partial sums reduced in a
    /// fixed order. The lanes break the serial FP dependency chain (the
    /// naive dot is add-latency-bound: one accumulator admits one element
    /// per ~4 cycles); the fixed pairwise reduction keeps the result a
    /// pure function of the operands, so every caller — any block shape,
    /// serial or pooled — computes bit-identical values.
    #[inline]
    fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
        const L: usize = 16;
        let mut acc = [0.0f32; L];
        let mut ac = a.chunks_exact(L);
        let mut bc = b.chunks_exact(L);
        for (x, y) in (&mut ac).zip(&mut bc) {
            for j in 0..L {
                acc[j] += x[j] * y[j];
            }
        }
        let mut tail = 0.0f32;
        for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
            tail += x * y;
        }
        reduce_lanes(&acc) + tail
    }

    /// Four dot products against a shared right-hand side, computed
    /// jointly so the `b` panel is loaded once per 16-lane step and the
    /// four accumulator sets interleave. Each of the four results is
    /// **bitwise identical** to `dot_lanes(a_i, b)`: same lane
    /// decomposition, same reduction tree, same scalar tail order.
    #[inline]
    #[allow(clippy::needless_range_loop)]
    fn dot4_lanes(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> [f32; 4] {
        const L: usize = 16;
        let n = b.len();
        debug_assert!(a0.len() == n && a1.len() == n && a2.len() == n && a3.len() == n);
        let whole = n - n % L;
        let mut acc0 = [0.0f32; L];
        let mut acc1 = [0.0f32; L];
        let mut acc2 = [0.0f32; L];
        let mut acc3 = [0.0f32; L];
        let mut i = 0;
        while i + L <= whole {
            let bp = &b[i..i + L];
            let x0 = &a0[i..i + L];
            let x1 = &a1[i..i + L];
            let x2 = &a2[i..i + L];
            let x3 = &a3[i..i + L];
            for j in 0..L {
                acc0[j] += x0[j] * bp[j];
                acc1[j] += x1[j] * bp[j];
                acc2[j] += x2[j] * bp[j];
                acc3[j] += x3[j] * bp[j];
            }
            i += L;
        }
        let mut t0 = 0.0f32;
        let mut t1 = 0.0f32;
        let mut t2 = 0.0f32;
        let mut t3 = 0.0f32;
        for j in whole..n {
            t0 += a0[j] * b[j];
            t1 += a1[j] * b[j];
            t2 += a2[j] * b[j];
            t3 += a3[j] * b[j];
        }
        [
            reduce_lanes(&acc0) + t0,
            reduce_lanes(&acc1) + t1,
            reduce_lanes(&acc2) + t2,
            reduce_lanes(&acc3) + t3,
        ]
    }

    /// Fixed pairwise reduction of 16 partial sums (shared by
    /// [`dot_lanes`] and [`dot4_lanes`] so their results are
    /// bit-identical).
    #[inline]
    fn reduce_lanes(acc: &[f32; 16]) -> f32 {
        let q0 = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let q1 = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        let q2 = (acc[8] + acc[9]) + (acc[10] + acc[11]);
        let q3 = (acc[12] + acc[13]) + (acc[14] + acc[15]);
        (q0 + q1) + (q2 + q3)
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA backend: packed panels, 6x16 FMA microkernels.
// ---------------------------------------------------------------------------

/// Packed-panel AVX2 + FMA kernels. Selectable only when the host passes
/// the runtime feature check ([`Backend::is_supported`]); on other
/// architectures (or if a caller constructs it anyway on a host without
/// AVX2) every method falls back to the scalar kernels, so the type is
/// safe to instantiate unconditionally.
pub struct AvxFmaBackend;

#[allow(clippy::too_many_arguments)]
impl MatMulKernel for AvxFmaBackend {
    fn name(&self) -> &'static str {
        Backend::AvxFma.name()
    }

    fn mm_acc_rows(
        &self,
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out_rows: &mut [f32],
        alpha: f32,
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx_fma_detected() {
            return avx::mm_acc_rows(a_rows, k, b, n, out_rows, alpha);
        }
        scalar::mm_acc_rows(a_rows, k, b, n, out_rows, alpha);
    }

    fn mm_atb_rows(
        &self,
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        k0: usize,
        out_chunk: &mut [f32],
        alpha: f32,
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx_fma_detected() {
            return avx::mm_atb_rows(a, acols, g, n, k0, out_chunk, alpha);
        }
        scalar::mm_atb_rows(a, acols, g, n, k0, out_chunk, alpha);
    }

    fn mm_abt_rows(
        &self,
        a_rows: &[f32],
        ncols: usize,
        b: &[f32],
        bn: usize,
        out_rows: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx_fma_detected() {
            return avx::mm_abt_rows(a_rows, ncols, b, bn, out_rows);
        }
        scalar::mm_abt_rows(a_rows, ncols, b, bn, out_rows);
    }

    fn warm_acc_scratch(&self, k: usize, n: usize) {
        #[cfg(target_arch = "x86_64")]
        if avx_fma_detected() {
            avx::warm_acc_scratch(k, n);
        }
        // The scalar fallback keeps no scratch.
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (k, n);
    }

    fn warm_atb_scratch(&self, m: usize) {
        #[cfg(target_arch = "x86_64")]
        if avx_fma_detected() {
            avx::warm_atb_scratch(m);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = m;
    }
}

// The packed microkernels.
//
// Geometry: output rows in blocks of `MR = 6`, output columns in panels of
// `NR = 16` (two 8-lane `ymm` accumulators per row: 12 accumulator
// registers, leaving 4 of the 16 `ymm` for the two loaded B lanes and the
// broadcast multiplier — and saturating both FMA ports at 2 fused ops per
// cycle per row-pair).
//
// Packing (reused thread-local scratch, so steady-state allocations stay
// at zero):
//   * B is packed once per `mm_acc_rows` call into panel-major layout:
//     panel `p` holds `k` rows of `NR` contiguous floats for absolute
//     columns `[p*NR, p*NR + NR)`, the tail panel zero-padded. Pad lanes
//     are computed but never stored.
//   * The current A row block is packed k-major (`pa[kk*MR + r]`), turning
//     the per-k broadcast loads into contiguous traffic.
//
// Determinism: per output element one accumulator chain in ascending `k`
// (vector FMA lanes); column panels are addressed by *absolute* column
// index, and each row's accumulators are independent, so pooled row
// regrouping can change neither the panel an element falls in nor its
// chain. Remainder columns run scalar `f32::mul_add`, which is the IEEE
// fusedMultiplyAdd — bit-identical to a vector FMA lane — and remainder
// handling is also a pure function of absolute position. See DESIGN.md
// §13.
#[cfg(target_arch = "x86_64")]
mod avx {
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    use std::cell::RefCell;

    /// Output-row block height of the microkernels.
    const MR: usize = 6;
    /// Output-column panel width (two 8-lane `ymm` registers).
    const NR: usize = 16;

    thread_local! {
        // Packing scratch: grown via `resize` to the per-thread working-set
        // maximum and reused afterwards, so steady-state train steps and
        // serve requests never touch the heap (the counting allocator test
        // covers this; pool worker threads are persistent). Growth must be
        // *deterministic* to honor that: pool job assignment is dynamic, so
        // a worker that sat out every call of a shape during a caller's
        // warm-up would otherwise first grow its scratch at an arbitrary
        // later win — which is why the pooled matmuls warm every thread via
        // `Pool::for_row_chunks_prepared` + `warm_*_scratch` below.
        static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
        static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }

    /// Grows this thread's packing scratch to what [`mm_acc_rows`] will
    /// `resize` to for a `k x n` right-hand side, so the later resize is
    /// capacity-neutral. Sizes must stay in lockstep with [`mm_acc_rows`].
    pub(super) fn warm_acc_scratch(k: usize, n: usize) {
        if k == 0 || n == 0 {
            return;
        }
        let panels = n.div_ceil(NR);
        PACK_B.with(|pb_cell| pb_cell.borrow_mut().resize(panels * NR * k, 0.0));
        PACK_A.with(|pa_cell| pa_cell.borrow_mut().resize(MR * k, 0.0));
    }

    /// [`warm_acc_scratch`] for [`mm_atb_rows`], which packs `MR` A-columns
    /// of length `m` (the shared A/G row count).
    pub(super) fn warm_atb_scratch(m: usize) {
        PACK_A.with(|pa_cell| pa_cell.borrow_mut().resize(m * MR, 0.0));
    }

    /// `out_rows += alpha * a_rows * b`; AVX twin of
    /// [`super::scalar::mm_acc_rows`].
    pub(super) fn mm_acc_rows(
        a_rows: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        out_rows: &mut [f32],
        alpha: f32,
    ) {
        if k == 0 || n == 0 {
            return;
        }
        debug_assert_eq!(a_rows.len() % k, 0);
        debug_assert_eq!(b.len(), k * n);
        let panels = n.div_ceil(NR);
        PACK_B.with(|pb_cell| {
            let mut pb = pb_cell.borrow_mut();
            pack_b_panels(&mut pb, b, k, n, panels);
            PACK_A.with(|pa_cell| {
                let mut pa = pa_cell.borrow_mut();
                pa.resize(MR * k, 0.0);
                let mut a_blocks = a_rows.chunks_exact(MR * k);
                let mut o_blocks = out_rows.chunks_exact_mut(MR * n);
                for (ab, ob) in (&mut a_blocks).zip(&mut o_blocks) {
                    pack_a_block(&mut pa, ab, k);
                    for (p, panel) in pb.chunks_exact(NR * k).enumerate() {
                        let c0 = p * NR;
                        let w = NR.min(n - c0);
                        // SAFETY: AVX2+FMA presence is checked by the
                        // dispatch wrapper (`AvxFmaBackend` falls back to
                        // scalar when `avx_fma_detected()` is false).
                        unsafe { acc_6xpanel(&pa, k, panel, ob, n, c0, w, alpha) };
                    }
                }
                for (ar, or) in a_blocks
                    .remainder()
                    .chunks_exact(k)
                    .zip(o_blocks.into_remainder().chunks_exact_mut(n))
                {
                    for (p, panel) in pb.chunks_exact(NR * k).enumerate() {
                        let c0 = p * NR;
                        let w = NR.min(n - c0);
                        // SAFETY: as above — only reached behind the
                        // runtime AVX2+FMA check.
                        unsafe { acc_1xpanel(ar, panel, or, c0, w, alpha) };
                    }
                }
            });
        });
    }

    /// Packs `b` (`k x n`, row-major) into panel-major layout: panel `p`
    /// holds `k` rows of `NR` contiguous floats covering absolute columns
    /// `[p*NR, p*NR + NR)`; the tail panel is zero-padded.
    fn pack_b_panels(pb: &mut Vec<f32>, b: &[f32], k: usize, n: usize, panels: usize) {
        pb.resize(panels * NR * k, 0.0);
        for (p, dst_panel) in pb.chunks_exact_mut(NR * k).enumerate() {
            let c0 = p * NR;
            let w = NR.min(n - c0);
            for (kk, dst) in dst_panel.chunks_exact_mut(NR).enumerate() {
                dst[..w].copy_from_slice(&b[kk * n + c0..kk * n + c0 + w]);
                dst[w..].fill(0.0);
            }
        }
    }

    /// Packs an `MR x k` row block of A k-major: `pa[kk*MR + r] = ab[r*k + kk]`.
    fn pack_a_block(pa: &mut [f32], ab: &[f32], k: usize) {
        for (r, row) in ab.chunks_exact(k).enumerate() {
            for (kk, &v) in row.iter().enumerate() {
                pa[kk * MR + r] = v;
            }
        }
    }

    /// Applies `orow[j] = fma(alpha, lane_j, orow[j])` for the `w`
    /// in-bounds lanes of a two-`ymm` accumulator pair. The full-width
    /// path uses vector FMA; the tail extracts lanes and uses scalar
    /// `f32::mul_add` (IEEE fusedMultiplyAdd — bit-identical per lane), so
    /// an element's result does not depend on which path stored it.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available and `orow.len() == w <= NR`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn store_acc_row(acc0: __m256, acc1: __m256, orow: &mut [f32], w: usize, alpha: f32) {
        debug_assert_eq!(orow.len(), w);
        if w == NR {
            let alpha_v = _mm256_set1_ps(alpha);
            let p = orow.as_mut_ptr();
            // SAFETY: w == NR == 16, so both 8-lane spans [0, 8) and
            // [8, 16) are in bounds of `orow`.
            unsafe {
                let o0 = _mm256_loadu_ps(p);
                _mm256_storeu_ps(p, _mm256_fmadd_ps(alpha_v, acc0, o0));
                let o1 = _mm256_loadu_ps(p.add(8));
                _mm256_storeu_ps(p.add(8), _mm256_fmadd_ps(alpha_v, acc1, o1));
            }
        } else {
            let mut lanes = [0.0f32; NR];
            // SAFETY: `lanes` is 16 floats, exactly two 8-lane stores.
            unsafe {
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc0);
                _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc1);
            }
            for (o, &t) in orow.iter_mut().zip(lanes.iter()) {
                *o = alpha.mul_add(t, *o);
            }
        }
    }

    /// 6-row x 16-column microkernel over one packed B panel: per row one
    /// two-`ymm` accumulator chain in ascending `k`.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available, `pa.len() == MR * k`,
    /// `panel.len() == NR * k`, `ob` holds `MR` rows of stride `n`, and
    /// `c0 + w <= n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
    unsafe fn acc_6xpanel(
        pa: &[f32],
        k: usize,
        panel: &[f32],
        ob: &mut [f32],
        n: usize,
        c0: usize,
        w: usize,
        alpha: f32,
    ) {
        debug_assert_eq!(pa.len(), MR * k);
        debug_assert_eq!(panel.len(), NR * k);
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let pb_ptr = panel.as_ptr();
        for kk in 0..k {
            // SAFETY: kk < k, so panel row [kk*NR, kk*NR + 16) is in
            // bounds of the `NR * k`-float panel.
            let (b0, b1) = unsafe {
                (
                    _mm256_loadu_ps(pb_ptr.add(kk * NR)),
                    _mm256_loadu_ps(pb_ptr.add(kk * NR + 8)),
                )
            };
            let pav = &pa[kk * MR..kk * MR + MR];
            for r in 0..MR {
                let av = _mm256_broadcast_ss(&pav[r]);
                acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for (r, orow) in ob.chunks_exact_mut(n).enumerate() {
            // SAFETY: features are available per this fn's contract and
            // the slice is exactly `w` long.
            unsafe { store_acc_row(acc[r][0], acc[r][1], &mut orow[c0..c0 + w], w, alpha) };
        }
    }

    /// Single-row tail of [`mm_acc_rows`]: identical per-element chain to
    /// [`acc_6xpanel`] (A values read directly instead of packed — same
    /// values, same FMA order).
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available, `panel.len() == NR *
    /// ar.len()`, and `c0 + w <= or.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn acc_1xpanel(
        ar: &[f32],
        panel: &[f32],
        or: &mut [f32],
        c0: usize,
        w: usize,
        alpha: f32,
    ) {
        debug_assert_eq!(panel.len(), NR * ar.len());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let pb_ptr = panel.as_ptr();
        for (kk, x) in ar.iter().enumerate() {
            let av = _mm256_broadcast_ss(x);
            // SAFETY: kk < ar.len(), so panel row [kk*NR, kk*NR + 16) is
            // in bounds.
            let (b0, b1) = unsafe {
                (
                    _mm256_loadu_ps(pb_ptr.add(kk * NR)),
                    _mm256_loadu_ps(pb_ptr.add(kk * NR + 8)),
                )
            };
            acc0 = _mm256_fmadd_ps(av, b0, acc0);
            acc1 = _mm256_fmadd_ps(av, b1, acc1);
        }
        // SAFETY: features available per this fn's contract; slice is `w`
        // long.
        unsafe { store_acc_row(acc0, acc1, &mut or[c0..c0 + w], w, alpha) };
    }

    /// `out_chunk += alpha * (A^T G)` rows `k0..`; AVX twin of
    /// [`super::scalar::mm_atb_rows`]. Output rows (= A columns) are
    /// blocked by `MR` with the A column block packed k-major; G rows are
    /// read directly (they are already contiguous along `n`).
    pub(super) fn mm_atb_rows(
        a: &[f32],
        acols: usize,
        g: &[f32],
        n: usize,
        k0: usize,
        out_chunk: &mut [f32],
        alpha: f32,
    ) {
        if n == 0 {
            return;
        }
        debug_assert_eq!(out_chunk.len() % n, 0);
        let m = a.len() / acols.max(1);
        debug_assert_eq!(g.len(), m * n);
        PACK_A.with(|pa_cell| {
            let mut pa = pa_cell.borrow_mut();
            pa.resize(m * MR, 0.0);
            let mut col = k0;
            let mut o_blocks = out_chunk.chunks_exact_mut(MR * n);
            for ob in &mut o_blocks {
                for (r, dst) in pa.chunks_exact_mut(MR).enumerate() {
                    dst.copy_from_slice(&a[r * acols + col..r * acols + col + MR]);
                }
                // SAFETY: AVX2+FMA presence is checked by the dispatch
                // wrapper (`AvxFmaBackend` falls back to scalar without it).
                unsafe { atb_6(&pa, m, g, n, ob, alpha) };
                col += MR;
            }
            for or in o_blocks.into_remainder().chunks_exact_mut(n) {
                // SAFETY: as above — only reached behind the runtime
                // AVX2+FMA check.
                unsafe { atb_1(a, acols, col, g, n, or, alpha) };
                col += 1;
            }
        });
    }

    /// 6-output-row microkernel of [`mm_atb_rows`]: reduces over the `m`
    /// A/G rows in ascending order, sweeping absolute column panels of 16,
    /// then 8, then a scalar `mul_add` tail — each element's path is a
    /// pure function of its absolute column, shared with [`atb_1`].
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available, `pa.len() == m * MR`,
    /// `g.len() == m * n`, and `ob.len() == MR * n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::needless_range_loop)]
    unsafe fn atb_6(pa: &[f32], m: usize, g: &[f32], n: usize, ob: &mut [f32], alpha: f32) {
        debug_assert_eq!(pa.len(), m * MR);
        debug_assert_eq!(ob.len(), MR * n);
        let g_ptr = g.as_ptr();
        let mut c = 0;
        while c + NR <= n {
            let mut acc = [[_mm256_setzero_ps(); 2]; MR];
            for r in 0..m {
                // SAFETY: r < m and c + 16 <= n, so both 8-lane spans of G
                // row r are in bounds of the `m * n`-float `g`.
                let (g0, g1) = unsafe {
                    (
                        _mm256_loadu_ps(g_ptr.add(r * n + c)),
                        _mm256_loadu_ps(g_ptr.add(r * n + c + 8)),
                    )
                };
                let pav = &pa[r * MR..r * MR + MR];
                for i in 0..MR {
                    let av = _mm256_broadcast_ss(&pav[i]);
                    acc[i][0] = _mm256_fmadd_ps(av, g0, acc[i][0]);
                    acc[i][1] = _mm256_fmadd_ps(av, g1, acc[i][1]);
                }
            }
            for (i, orow) in ob.chunks_exact_mut(n).enumerate() {
                // SAFETY: features available per this fn's contract; the
                // slice is exactly NR long.
                unsafe { store_acc_row(acc[i][0], acc[i][1], &mut orow[c..c + NR], NR, alpha) };
            }
            c += NR;
        }
        if c + 8 <= n {
            let mut acc = [_mm256_setzero_ps(); MR];
            for r in 0..m {
                // SAFETY: c + 8 <= n, so the 8-lane span of G row r is in
                // bounds.
                let g0 = unsafe { _mm256_loadu_ps(g_ptr.add(r * n + c)) };
                let pav = &pa[r * MR..r * MR + MR];
                for i in 0..MR {
                    acc[i] = _mm256_fmadd_ps(_mm256_broadcast_ss(&pav[i]), g0, acc[i]);
                }
            }
            let alpha_v = _mm256_set1_ps(alpha);
            for (i, orow) in ob.chunks_exact_mut(n).enumerate() {
                let p = orow[c..c + 8].as_mut_ptr();
                // SAFETY: the 8-lane span [c, c + 8) is in bounds.
                unsafe {
                    let o0 = _mm256_loadu_ps(p);
                    _mm256_storeu_ps(p, _mm256_fmadd_ps(alpha_v, acc[i], o0));
                }
            }
            c += 8;
        }
        while c < n {
            for (i, orow) in ob.chunks_exact_mut(n).enumerate() {
                let mut t = 0.0f32;
                for r in 0..m {
                    t = pa[r * MR + i].mul_add(g[r * n + c], t);
                }
                orow[c] = alpha.mul_add(t, orow[c]);
            }
            c += 1;
        }
    }

    /// Single-output-row tail of [`mm_atb_rows`]: reads A column `col`
    /// strided; same per-element chain and panel decomposition as
    /// [`atb_6`].
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available, `col < acols`,
    /// `g.len() == (a.len() / acols) * n`, and `or.len() == n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn atb_1(
        a: &[f32],
        acols: usize,
        col: usize,
        g: &[f32],
        n: usize,
        or: &mut [f32],
        alpha: f32,
    ) {
        let m = a.len() / acols.max(1);
        debug_assert_eq!(or.len(), n);
        let g_ptr = g.as_ptr();
        let mut c = 0;
        while c + NR <= n {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for r in 0..m {
                let av = _mm256_broadcast_ss(&a[r * acols + col]);
                // SAFETY: r < m and c + 16 <= n — both 8-lane spans in
                // bounds of `g`.
                let (g0, g1) = unsafe {
                    (
                        _mm256_loadu_ps(g_ptr.add(r * n + c)),
                        _mm256_loadu_ps(g_ptr.add(r * n + c + 8)),
                    )
                };
                acc0 = _mm256_fmadd_ps(av, g0, acc0);
                acc1 = _mm256_fmadd_ps(av, g1, acc1);
            }
            // SAFETY: features available per this fn's contract; slice is
            // NR long.
            unsafe { store_acc_row(acc0, acc1, &mut or[c..c + NR], NR, alpha) };
            c += NR;
        }
        if c + 8 <= n {
            let mut acc0 = _mm256_setzero_ps();
            for r in 0..m {
                let av = _mm256_broadcast_ss(&a[r * acols + col]);
                // SAFETY: c + 8 <= n — the 8-lane span is in bounds.
                let g0 = unsafe { _mm256_loadu_ps(g_ptr.add(r * n + c)) };
                acc0 = _mm256_fmadd_ps(av, g0, acc0);
            }
            let alpha_v = _mm256_set1_ps(alpha);
            let p = or[c..c + 8].as_mut_ptr();
            // SAFETY: the 8-lane span [c, c + 8) is in bounds.
            unsafe {
                let o0 = _mm256_loadu_ps(p);
                _mm256_storeu_ps(p, _mm256_fmadd_ps(alpha_v, acc0, o0));
            }
            c += 8;
        }
        while c < n {
            let mut t = 0.0f32;
            for r in 0..m {
                t = a[r * acols + col].mul_add(g[r * n + c], t);
            }
            or[c] = alpha.mul_add(t, or[c]);
            c += 1;
        }
    }

    /// `out_rows = a_rows * b^T`; AVX twin of
    /// [`super::scalar::mm_abt_rows`]. Every element is the same
    /// [`dot_avx`] chain, so the 4-row blocking cannot affect results.
    pub(super) fn mm_abt_rows(
        a_rows: &[f32],
        ncols: usize,
        b: &[f32],
        bn: usize,
        out_rows: &mut [f32],
    ) {
        if bn == 0 {
            return;
        }
        if ncols == 0 {
            out_rows.fill(0.0);
            return;
        }
        const BR: usize = 4;
        let mut a_blocks = a_rows.chunks_exact(BR * ncols);
        let mut o_blocks = out_rows.chunks_exact_mut(BR * bn);
        for (ab, ob) in (&mut a_blocks).zip(&mut o_blocks) {
            // SAFETY: AVX2+FMA presence is checked by the dispatch wrapper
            // (`AvxFmaBackend` falls back to scalar without it).
            unsafe { abt_4(ab, ncols, b, bn, ob) };
        }
        for (ar, or) in a_blocks
            .remainder()
            .chunks_exact(ncols)
            .zip(o_blocks.into_remainder().chunks_exact_mut(bn))
        {
            for (c, brow) in b.chunks_exact(ncols).enumerate() {
                // SAFETY: as above — only reached behind the runtime
                // AVX2+FMA check.
                or[c] = unsafe { dot_avx(ar, brow) };
            }
        }
    }

    /// Reduces a two-`ymm` accumulator pair plus a scalar tail in a fixed
    /// order: lanewise `acc0 + acc1`, then the same pairwise tree as the
    /// scalar backend's `reduce_lanes`, then `+ tail`.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn reduce_dot(acc0: __m256, acc1: __m256, tail: f32) -> f32 {
        let v = _mm256_add_ps(acc0, acc1);
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is exactly 8 floats.
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), v) };
        let q0 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        let q1 = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
        (q0 + q1) + tail
    }

    /// FMA dot product: 16 elements per step on two independent `ymm`
    /// accumulators, scalar `mul_add` tail, fixed reduction order.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available and `a.len() == b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_avx(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let whole = n - n % NR;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < whole {
            // SAFETY: i + 16 <= whole <= n, so all four 8-lane spans are
            // in bounds of `a` and `b`.
            unsafe {
                let x0 = _mm256_loadu_ps(ap.add(i));
                let y0 = _mm256_loadu_ps(bp.add(i));
                let x1 = _mm256_loadu_ps(ap.add(i + 8));
                let y1 = _mm256_loadu_ps(bp.add(i + 8));
                acc0 = _mm256_fmadd_ps(x0, y0, acc0);
                acc1 = _mm256_fmadd_ps(x1, y1, acc1);
            }
            i += NR;
        }
        let mut tail = 0.0f32;
        for j in whole..n {
            tail = a[j].mul_add(b[j], tail);
        }
        // SAFETY: features available per this fn's contract.
        unsafe { reduce_dot(acc0, acc1, tail) }
    }

    /// Four rows against a shared `b^T`, loading each B row's panel once
    /// per step; each row's chain is bitwise identical to [`dot_avx`].
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available, `ab` holds 4 rows of
    /// `ncols`, `b` holds `bn` rows of `ncols`, and `ob` holds 4 rows of
    /// `bn`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn abt_4(ab: &[f32], ncols: usize, b: &[f32], bn: usize, ob: &mut [f32]) {
        let (a0, rest) = ab.split_at(ncols);
        let (a1, rest) = rest.split_at(ncols);
        let (a2, a3) = rest.split_at(ncols);
        let whole = ncols - ncols % NR;
        for (c, brow) in b.chunks_exact(ncols).enumerate() {
            let mut acc = [[_mm256_setzero_ps(); 2]; 4];
            let bp = brow.as_ptr();
            let (p0, p1, p2, p3) = (a0.as_ptr(), a1.as_ptr(), a2.as_ptr(), a3.as_ptr());
            let mut i = 0;
            while i < whole {
                // SAFETY: i + 16 <= whole <= ncols, so every 8-lane span
                // below is in bounds of its `ncols`-float row.
                unsafe {
                    let y0 = _mm256_loadu_ps(bp.add(i));
                    let y1 = _mm256_loadu_ps(bp.add(i + 8));
                    acc[0][0] = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(i)), y0, acc[0][0]);
                    acc[0][1] = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(i + 8)), y1, acc[0][1]);
                    acc[1][0] = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(i)), y0, acc[1][0]);
                    acc[1][1] = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(i + 8)), y1, acc[1][1]);
                    acc[2][0] = _mm256_fmadd_ps(_mm256_loadu_ps(p2.add(i)), y0, acc[2][0]);
                    acc[2][1] = _mm256_fmadd_ps(_mm256_loadu_ps(p2.add(i + 8)), y1, acc[2][1]);
                    acc[3][0] = _mm256_fmadd_ps(_mm256_loadu_ps(p3.add(i)), y0, acc[3][0]);
                    acc[3][1] = _mm256_fmadd_ps(_mm256_loadu_ps(p3.add(i + 8)), y1, acc[3][1]);
                }
                i += NR;
            }
            let mut tails = [0.0f32; 4];
            for j in whole..ncols {
                tails[0] = a0[j].mul_add(brow[j], tails[0]);
                tails[1] = a1[j].mul_add(brow[j], tails[1]);
                tails[2] = a2[j].mul_add(brow[j], tails[2]);
                tails[3] = a3[j].mul_add(brow[j], tails[3]);
            }
            for (r, &t) in tails.iter().enumerate() {
                // SAFETY: features available per this fn's contract.
                ob[r * bn + c] = unsafe { reduce_dot(acc[r][0], acc[r][1], t) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn salted(rows: usize, cols: usize, salt: u64) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let x = (i * 131 % 977) as f32 * 0.0137 + salt as f32 * 0.11;
                (x.sin() * 1.7) + (x * 0.31).cos() * 0.4
            })
            .collect()
    }

    fn rel_close(x: f32, y: f32, tol: f32) -> bool {
        (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0)
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Scalar, Backend::AvxFma] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(Backend::from_tag(b.tag()), Some(b));
        }
        assert_eq!(Backend::parse("sse"), None);
        assert_eq!(Backend::from_tag(7), None);
        assert!(Backend::Scalar.is_supported());
    }

    #[test]
    fn avx_backend_matches_scalar_within_tolerance() {
        let (m, k, n) = (13, 41, 29);
        let a = salted(m, k, 1);
        let b = salted(k, n, 2);
        for kern in [kernel_for(Backend::Scalar), kernel_for(Backend::AvxFma)] {
            let mut acc = vec![0.25f32; m * n];
            kern.mm_acc_rows(&a, k, &b, n, &mut acc, 0.5);
            let mut refer = vec![0.25f32; m * n];
            ScalarBackend.mm_acc_rows(&a, k, &b, n, &mut refer, 0.5);
            for (x, y) in acc.iter().zip(refer.iter()) {
                assert!(rel_close(*x, *y, 1e-4), "{x} vs {y} ({})", kern.name());
            }
        }
    }

    #[test]
    fn avx_mm_acc_is_invariant_under_row_regrouping() {
        if !Backend::AvxFma.is_supported() {
            return;
        }
        let kern = kernel_for(Backend::AvxFma);
        let (m, k, n) = (23, 37, 19);
        let a = salted(m, k, 3);
        let b = salted(k, n, 4);
        let mut full = vec![0.0f32; m * n];
        kern.mm_acc_rows(&a, k, &b, n, &mut full, 1.0);
        for split in [1usize, 5, 7, 11] {
            let mut parts = vec![0.0f32; m * n];
            let mut r0 = 0;
            while r0 < m {
                let rows = split.min(m - r0);
                kern.mm_acc_rows(
                    &a[r0 * k..(r0 + rows) * k],
                    k,
                    &b,
                    n,
                    &mut parts[r0 * n..(r0 + rows) * n],
                    1.0,
                );
                r0 += rows;
            }
            assert_eq!(
                full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parts.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "split {split} changed bits"
            );
        }
    }
}
