//! Numerically stable scalar functions used throughout training and
//! evaluation.
//!
//! CTR training is dominated by the sigmoid + binary-cross-entropy pipeline
//! (paper Eq. 12–13). Computing `log(sigmoid(x))` naively overflows for
//! moderately large logits, so every caller in the workspace goes through
//! the fused, stable forms here.

/// Stable sigmoid: `1 / (1 + e^-x)` without overflow for large `|x|`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Stable `log(1 + e^x)` (softplus).
#[inline]
pub fn log1p_exp(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Binary cross-entropy of a logit against a {0,1} label, computed in the
/// fused, overflow-free form:
///
/// `BCE(y, logit) = log(1 + e^logit) - y * logit`
///
/// which equals `-(y log p + (1-y) log(1-p))` for `p = sigmoid(logit)`.
#[inline]
pub fn stable_bce(logit: f32, label: f32) -> f32 {
    log1p_exp(logit) - label * logit
}

/// Gradient of [`stable_bce`] with respect to the logit: `sigmoid(logit) - y`.
#[inline]
pub fn stable_bce_grad(logit: f32, label: f32) -> f32 {
    sigmoid(logit) - label
}

/// Clamps a probability into `(eps, 1 - eps)` for safe `ln` calls.
#[inline]
pub fn clamp_prob(p: f32, eps: f32) -> f32 {
    p.clamp(eps, 1.0 - eps)
}

/// Binary cross-entropy of a *probability* against a {0,1} label with
/// clamping. Prefer [`stable_bce`] when a logit is available.
#[inline]
pub fn bce_from_prob(p: f32, label: f32) -> f32 {
    let p = clamp_prob(p, 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

/// Inverse sigmoid (logit function) with clamping.
#[inline]
pub fn logit(p: f32) -> f32 {
    let p = clamp_prob(p, 1e-7);
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basic_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }

    #[test]
    fn sigmoid_no_overflow_extremes() {
        assert_eq!(sigmoid(1e5), 1.0);
        assert_eq!(sigmoid(-1e5), 0.0);
        assert!(sigmoid(f32::MAX).is_finite());
        assert!(sigmoid(f32::MIN).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-7.5f32, -1.0, -0.25, 0.5, 3.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log1p_exp_matches_naive_in_safe_range() {
        for x in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((log1p_exp(x) - naive).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn log1p_exp_no_overflow() {
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-3);
        assert!(log1p_exp(-100.0) < 1e-6);
    }

    #[test]
    fn stable_bce_matches_prob_form() {
        for &(logit_v, y) in &[(0.0f32, 1.0f32), (2.0, 0.0), (-3.0, 1.0), (0.7, 0.0)] {
            let p = sigmoid(logit_v);
            let expected = bce_from_prob(p, y);
            assert!((stable_bce(logit_v, y) - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn stable_bce_grad_is_residual() {
        assert!((stable_bce_grad(0.0, 1.0) + 0.5).abs() < 1e-7);
        assert!((stable_bce_grad(0.0, 0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn stable_bce_grad_matches_finite_difference() {
        let eps = 1e-3f32;
        for &(x, y) in &[(0.3f32, 1.0f32), (-1.2, 0.0), (2.5, 1.0)] {
            let num = (stable_bce(x + eps, y) - stable_bce(x - eps, y)) / (2.0 * eps);
            let ana = stable_bce_grad(x, y);
            assert!((num - ana).abs() < 1e-3, "x={x} y={y} num={num} ana={ana}");
        }
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for p in [0.01f32, 0.2, 0.5, 0.8, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-5);
        }
    }
}
