//! A small persistent worker pool for intra-batch data parallelism.
//!
//! Design goals, in priority order:
//!
//! 1. **Bitwise determinism.** The pool never changes *what* is computed,
//!    only *who* computes it. Callers partition work so that every output
//!    element is written by exactly one job ("owner computes"), and each
//!    job performs its floating-point accumulations in the same order as
//!    the serial code. Under that contract results are bit-identical to
//!    the single-threaded path for any thread count and any job/thread
//!    interleaving — jobs race only for *which* disjoint piece they run,
//!    never for the contents of one.
//! 2. **No dependencies.** Built on `std::thread` + `Mutex`/`Condvar`
//!    only; the build environment has no access to crates.io.
//! 3. **Cheap steady state.** Workers are spawned once and parked on a
//!    condvar between batches, so per-call overhead is two lock
//!    round-trips plus wakeups — small against a mini-batch matmul.
//!
//! `Pool::new(1)` (and [`Pool::serial`]) creates a pool with no worker
//! threads at all: [`Pool::run`] then executes jobs inline on the caller,
//! making the single-threaded path literally the same code as before.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

/// Raw-pointer wrapper that asserts a parallel job's writes are disjoint.
///
/// Rust cannot see that two jobs writing different rows of the same matrix
/// never alias, so kernels share the output buffer as a `SendPtr` and take
/// responsibility for the ownership discipline themselves.
pub struct SendPtr<T>(pub *mut T);

// SAFETY: callers uphold the owner-computes contract — each element behind
// the pointer is written by at most one job per `Pool::run` call.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer offset by `i` elements.
    ///
    /// # Safety
    /// `i` must be in bounds of the original allocation (or one past the
    /// end), the allocation must outlive every use of the returned pointer,
    /// and no other job may touch the addressed element during this `run`
    /// call.
    #[inline]
    pub unsafe fn add(&self, i: usize) -> *mut T {
        // SAFETY: `i` is in bounds of the allocation per this function's
        // `# Safety` contract.
        unsafe { self.0.add(i) }
    }

    /// Mutable slice `[start, start + len)` behind the pointer.
    ///
    /// # Safety
    /// Same contract as [`SendPtr::add`], for the whole range: the entire
    /// range must lie inside the original allocation, the allocation must
    /// stay alive for the returned lifetime, and no other job (nor the
    /// caller) may read or write any element of the range while the slice
    /// exists.
    // The `&self -> &mut` shape is the point of this type: `SendPtr` is a
    // raw-pointer capability, not a borrow, and exclusivity is the caller's
    // owner-computes obligation stated above.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &mut [T] {
        // SAFETY: bounds, liveness and exclusivity are the caller's
        // obligations per this function's `# Safety` contract.
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), len) }
    }
}

/// Splits `total` items into chunks sized for `threads`-way execution.
///
/// Returns `(chunk_len, num_chunks)`. Several chunks per thread keep the
/// dynamic job counter useful for load balancing; the split never affects
/// results because every chunk is owner-computed.
pub fn chunks_for(total: usize, threads: usize) -> (usize, usize) {
    if total == 0 {
        return (1, 0);
    }
    let chunk = total.div_ceil(threads.max(1) * 4).max(1);
    (chunk, total.div_ceil(chunk))
}

type Task = *const (dyn Fn(usize) + Sync);

#[derive(Clone, Copy)]
struct SendTask(Task);

/// Per-epoch preparation hook: runs exactly once on every participating
/// thread (caller and each worker) before that thread grabs any job.
type Prep = *const (dyn Fn() + Sync);

#[derive(Clone, Copy)]
struct SendPrep(Prep);

// SAFETY: same discipline as `SendTask` — the pointer is only dereferenced
// between publication and the completion barrier in `Inner::run`.
unsafe impl Send for SendPrep {}

// SAFETY: the task pointer is only dereferenced between job publication and
// the completion barrier in `Inner::run`, while the referent is alive.
unsafe impl Send for SendTask {}

struct State {
    epoch: u64,
    task: Option<SendTask>,
    prep: Option<SendPrep>,
    counter: Arc<AtomicUsize>,
    num_jobs: usize,
    /// Workers still executing (or yet to notice) the current epoch.
    running: usize,
    /// Workers that have finished OS-level thread startup.
    started: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work: Condvar,
    /// Signals the caller that `running` reached zero.
    done: Condvar,
}

impl Shared {
    /// The pool's single lock site. Poisoning stance: worker panics are
    /// caught and surfaced through the `panicked` flag, so the mutex can
    /// only be poisoned by a panic inside one of the pool's own short
    /// critical sections — a pool bug whose panic should propagate.
    fn locked(&self) -> MutexGuard<'_, State> {
        // lint: allow(panic-free, reason="poisoning requires a prior panic inside a pool critical section (worker panics are caught and reported via the `panicked` flag); propagating that pool bug is the contract")
        // lint: allow(no-blocking-cone, reason="declared pool hand-off: the state mutex guards only task pickup/completion bookkeeping; scoring reaches it solely to dispatch rows to workers, and the critical sections are a few instructions")
        self.state.lock().unwrap()
    }

    /// The pool's single condvar-wait site; same poisoning stance as
    /// [`Shared::locked`].
    fn wait_on<'a>(&self, cv: &Condvar, st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        // lint: allow(panic-free, reason="same poisoning stance as Shared::locked: only a prior pool-internal panic can poison the lock")
        // lint: allow(no-blocking-cone, reason="declared pool hand-off: the calling thread parks only while workers drain the dispatched batch; this is the pool's join point, not an open-ended wait")
        cv.wait(st).unwrap()
    }
}

struct Inner {
    shared: Arc<Shared>,
    workers: usize,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Inner {
    fn run(&self, num_jobs: usize, prep: Option<&(dyn Fn() + Sync)>, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the transmute erases the closure's lifetime so it can sit
        // in shared state; the completion barrier below guarantees every
        // worker is done with it before this frame returns.
        let task = SendTask(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), Task>(
                f as *const (dyn Fn(usize) + Sync),
            )
        });
        // SAFETY: as above — the prep closure outlives the completion
        // barrier for the same reason the task closure does.
        let prep_task = prep.map(|p| {
            SendPrep(unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync + '_), Prep>(
                    p as *const (dyn Fn() + Sync),
                )
            })
        });
        let counter = {
            let mut st = self.shared.locked();
            debug_assert_eq!(st.running, 0, "pool: overlapping run calls");
            st.epoch += 1;
            st.task = Some(task);
            st.prep = prep_task;
            // Reset in place rather than allocating a fresh Arc: by the
            // time a new epoch starts, the completion barrier of the
            // previous `run` guarantees no worker still touches the
            // counter, and keeping `run` allocation-free is what lets
            // tests/alloc_steady_state.rs hold across thread counts.
            st.counter.store(0, Ordering::Relaxed);
            st.num_jobs = num_jobs;
            st.running = self.workers;
            self.shared.work.notify_all();
            st.counter.clone()
        };
        // The caller participates instead of idling.
        let caller_result = panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(p) = prep {
                p();
            }
            loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= num_jobs {
                    break;
                }
                f(i);
            }
        }));
        // Barrier: `f` (and the buffers it borrows) must outlive every
        // worker's use of it.
        let mut st = self.shared.locked();
        while st.running > 0 {
            st = self.shared.wait_on(&self.shared.done, st);
        }
        st.task = None;
        st.prep = None;
        let worker_panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        if let Err(payload) = caller_result {
            panic::resume_unwind(payload);
        }
        if worker_panicked {
            // lint: allow(panic-free, reason="deliberately re-raises a worker panic that already happened; the pool's contract is to propagate, not swallow")
            panic!("optinter-tensor pool: a worker thread panicked");
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.locked();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.get_mut().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen_epoch = 0u64;
    {
        // Report startup so `Pool::new` can wait for it: the std runtime
        // performs a few heap allocations on the *child* thread before
        // this function runs (stack-overflow handler, thread-name
        // registration), and until this point is reached they could land
        // at an arbitrary moment in the parent's timeline — including
        // inside a caller's zero-allocation measurement window
        // (tests/alloc_steady_state.rs).
        let mut st = shared.locked();
        st.started += 1;
        shared.done.notify_all();
    }
    loop {
        let (task, prep, counter, num_jobs) = {
            let mut st = shared.locked();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break (
                        st.task.expect("pool: epoch advanced without a task"),
                        st.prep,
                        st.counter.clone(),
                        st.num_jobs,
                    );
                }
                st = shared.wait_on(&shared.work, st);
            }
        };
        // SAFETY: the caller of `Inner::run` blocks until `running` drops to
        // zero, so the closures behind `task` and `prep` are alive for this
        // whole block.
        let f = unsafe { &*task.0 };
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(p) = prep {
                // SAFETY: as above — published alongside `task` and fenced
                // by the same completion barrier.
                unsafe { (*p.0)() };
            }
            loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= num_jobs {
                    break;
                }
                f(i);
            }
        }));
        let mut st = shared.locked();
        if result.is_err() {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// Handle to a worker pool; clones share the same threads.
///
/// See the module docs for the determinism contract. A pool of one thread
/// holds no OS threads and runs everything inline.
#[derive(Clone)]
pub struct Pool {
    inner: Option<Arc<Inner>>,
}

impl Pool {
    /// Creates a pool executing with `threads`-way parallelism (the caller
    /// counts as one of the threads). `threads <= 1` yields the inline
    /// serial pool.
    pub fn new(threads: usize) -> Self {
        if threads <= 1 {
            return Self { inner: None };
        }
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                prep: None,
                counter: Arc::new(AtomicUsize::new(0)),
                num_jobs: 0,
                running: 0,
                started: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name("optinter-pool".into())
                    .spawn(move || worker_loop(shared))
                    .expect("pool: failed to spawn worker thread")
            })
            .collect();
        // Absorb worker startup before handing the pool out: after this
        // wait, every thread's lazy runtime allocations are behind us and
        // the steady state is genuinely allocation-free from the first
        // `run` call.
        {
            let mut st = shared.locked();
            while st.started < workers {
                st = shared.wait_on(&shared.done, st);
            }
        }
        Self {
            inner: Some(Arc::new(Inner {
                shared,
                workers,
                handles: Mutex::new(handles),
            })),
        }
    }

    /// The inline single-threaded pool.
    pub fn serial() -> Self {
        Self { inner: None }
    }

    /// Whether jobs run inline on the caller with no worker threads.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.inner.is_none()
    }

    /// Degree of parallelism (caller included).
    #[inline]
    pub fn threads(&self) -> usize {
        match &self.inner {
            None => 1,
            Some(inner) => inner.workers + 1,
        }
    }

    /// Executes `f(0), f(1), ..., f(num_jobs - 1)`, each exactly once, and
    /// returns once all have finished.
    ///
    /// Jobs may run on any thread in any order, so `f` must only perform
    /// writes that are disjoint across job indices (owner computes). On a
    /// serial pool the jobs run inline in index order.
    pub fn run<F: Fn(usize) + Sync>(&self, num_jobs: usize, f: F) {
        match &self.inner {
            None => {
                for i in 0..num_jobs {
                    f(i);
                }
            }
            Some(inner) => {
                if num_jobs == 0 {
                    return;
                }
                if num_jobs == 1 {
                    f(0);
                    return;
                }
                inner.run(num_jobs, None, &f);
            }
        }
    }

    /// [`run`](Self::run) with a per-thread preparation hook: `prep` runs
    /// exactly once on every thread that may execute jobs this epoch — the
    /// caller and, when the epoch is dispatched to the pool, every worker,
    /// *including workers that end up winning zero jobs* — before that
    /// thread grabs its first job.
    ///
    /// This exists for kernels with lazily-grown thread-local scratch: job
    /// assignment is dynamic (threads race on a shared counter), so which
    /// thread sees which shape is scheduling-dependent, and a worker that
    /// sat out earlier calls would otherwise grow its scratch at an
    /// arbitrary later moment — e.g. inside a caller's zero-allocation
    /// measurement window (tests/alloc_steady_state.rs). A `prep` that
    /// pre-sizes the scratch makes the growth happen deterministically on
    /// first sight of a shape, on every thread. Workers already rendezvous
    /// with every epoch for the completion barrier, so the hook adds no
    /// synchronization.
    ///
    /// Single-job and serial-pool calls run `prep` on the caller only —
    /// no other thread can touch a job, so no other scratch is needed.
    pub fn run_prepared<P, F>(&self, num_jobs: usize, prep: P, f: F)
    where
        P: Fn() + Sync,
        F: Fn(usize) + Sync,
    {
        match &self.inner {
            None => {
                prep();
                for i in 0..num_jobs {
                    f(i);
                }
            }
            Some(inner) => {
                if num_jobs == 0 {
                    return;
                }
                if num_jobs == 1 {
                    prep();
                    f(0);
                    return;
                }
                inner.run(num_jobs, Some(&prep), &f);
            }
        }
    }

    /// Row-sharded parallel loop: views `out` as rows of `row_len` elements
    /// and calls `f(r, row)` once for every row, with contiguous row chunks
    /// distributed across the pool.
    ///
    /// This is the safe face of the owner-computes contract: the pool hands
    /// each job disjoint `&mut [T]` row slices, so callers get intra-batch
    /// parallel writes without writing `unsafe` themselves. Rows are visited
    /// in ascending order within a job, and every row is visited exactly
    /// once, so results are bit-identical to the serial loop for any thread
    /// count.
    ///
    /// # Panics
    /// Panics when `row_len == 0` or `out.len()` is not a multiple of
    /// `row_len`.
    pub fn for_rows<T, F>(&self, out: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        // lint: allow(panic-free, reason="row_len and buffer length come from the matmul caller's construction-pinned shapes")
        assert!(row_len > 0, "for_rows: row_len must be positive");
        // lint: allow(panic-free, reason="row_len and buffer length come from the matmul caller's construction-pinned shapes")
        assert_eq!(out.len() % row_len, 0, "for_rows: ragged buffer");
        let rows = out.len() / row_len;
        let (chunk, njobs) = chunks_for(rows, self.threads());
        let ptr = SendPtr(out.as_mut_ptr());
        self.run(njobs, |job| {
            let r0 = job * chunk;
            let r1 = (r0 + chunk).min(rows);
            for r in r0..r1 {
                // SAFETY: row chunks are disjoint across job indices and in
                // bounds (`r < rows`), and the caller's `&mut out` borrow is
                // held for the whole `run`, so row `r` is written by exactly
                // this job with no other access to it.
                let row = unsafe { ptr.slice(r * row_len, row_len) };
                f(r, row);
            }
        });
    }

    /// Chunk-sharded variant of [`for_rows`](Self::for_rows): instead of one
    /// row at a time, each job receives its whole contiguous block of rows
    /// as a single `&mut [T]` plus the index of the block's first row.
    ///
    /// This exists for kernels that block over *groups* of rows (the
    /// register-tiled matmuls process `MR` output rows together): handing
    /// the job its full chunk lets it run the exact serial multi-row kernel
    /// on it. Chunk boundaries never affect results because the kernels
    /// guarantee per-element accumulation-order invariance under any row
    /// grouping (see `crates/tensor/src/matrix.rs`).
    ///
    /// # Panics
    /// Panics when `row_len == 0` or `out.len()` is not a multiple of
    /// `row_len`.
    pub fn for_row_chunks<T, F>(&self, out: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.for_row_chunks_prepared(out, row_len, || {}, f);
    }

    /// [`for_row_chunks`](Self::for_row_chunks) with a per-thread
    /// preparation hook (see [`run_prepared`](Self::run_prepared)): `prep`
    /// runs once on every thread that may receive a chunk, before that
    /// thread's first chunk.
    pub fn for_row_chunks_prepared<T, P, F>(&self, out: &mut [T], row_len: usize, prep: P, f: F)
    where
        T: Send,
        P: Fn() + Sync,
        F: Fn(usize, &mut [T]) + Sync,
    {
        // lint: allow(panic-free, reason="row_len and buffer length come from the matmul caller's construction-pinned shapes")
        assert!(row_len > 0, "for_row_chunks: row_len must be positive");
        // lint: allow(panic-free, reason="row_len and buffer length come from the matmul caller's construction-pinned shapes")
        assert_eq!(out.len() % row_len, 0, "for_row_chunks: ragged buffer");
        let rows = out.len() / row_len;
        let (chunk, njobs) = chunks_for(rows, self.threads());
        let ptr = SendPtr(out.as_mut_ptr());
        self.run_prepared(njobs, prep, |job| {
            let r0 = job * chunk;
            let r1 = (r0 + chunk).min(rows);
            if r0 >= r1 {
                return;
            }
            // SAFETY: row chunks are disjoint across job indices and in
            // bounds (`r1 <= rows`), and the caller's `&mut out` borrow is
            // held for the whole `run`, so this range is written by exactly
            // this job with no other access to it.
            let block = unsafe { ptr.slice(r0 * row_len, (r1 - r0) * row_len) };
            f(r0, block);
        });
    }

    /// Two-buffer variant of [`for_rows`](Self::for_rows): `a` and `b` are
    /// viewed as matrices with the same number of rows (of widths
    /// `a_row_len` and `b_row_len`) and `f(r, a_row, b_row)` runs once per
    /// row under the same owner-computes sharding.
    ///
    /// Either width may be zero, in which case that buffer must be empty
    /// and its row slices come out empty; the row count is then taken from
    /// the other buffer. This keeps call sites with an *optional* secondary
    /// output (e.g. generalized-product weight gradients) on the safe path.
    ///
    /// # Panics
    /// Panics when a buffer is ragged or the row counts disagree.
    pub fn for_rows2<T, U, F>(
        &self,
        a: &mut [T],
        a_row_len: usize,
        b: &mut [U],
        b_row_len: usize,
        f: F,
    ) where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T], &mut [U]) + Sync,
    {
        let rows = if a_row_len > 0 {
            assert_eq!(a.len() % a_row_len, 0, "for_rows2: ragged first buffer");
            a.len() / a_row_len
        } else {
            assert!(a.is_empty(), "for_rows2: zero-width buffer must be empty");
            assert!(b_row_len > 0, "for_rows2: both widths are zero");
            b.len() / b_row_len
        };
        if b_row_len > 0 {
            assert_eq!(b.len() % b_row_len, 0, "for_rows2: ragged second buffer");
            assert_eq!(b.len() / b_row_len, rows, "for_rows2: row count mismatch");
        } else {
            assert!(b.is_empty(), "for_rows2: zero-width buffer must be empty");
        }
        let (chunk, njobs) = chunks_for(rows, self.threads());
        let a_ptr = SendPtr(a.as_mut_ptr());
        let b_ptr = SendPtr(b.as_mut_ptr());
        self.run(njobs, |job| {
            let r0 = job * chunk;
            let r1 = (r0 + chunk).min(rows);
            for r in r0..r1 {
                // SAFETY: as in `for_rows` — rows are disjoint across jobs
                // and in bounds for both buffers; a zero-width slice is a
                // valid empty slice at the buffer's base pointer.
                let a_row = unsafe { a_ptr.slice(r * a_row_len, a_row_len) };
                // SAFETY: same disjointness argument for the second buffer.
                let b_row = unsafe { b_ptr.slice(r * b_row_len, b_row_len) };
                f(r, a_row, b_row);
            }
        });
    }

    /// Lane-sharded scattered-row writes: runs `lanes` jobs, each receiving
    /// a [`LaneRows`] view of `out` that can mutably borrow any row `r`
    /// with `r % lanes == lane`. Ownership is enforced by an assert in
    /// [`LaneRows::row_mut`], so two lanes can never write the same row.
    ///
    /// This is the safe face of owner-computes for *scattered* writes (the
    /// sparse embedding-gradient arena: each lane scans the whole batch and
    /// accumulates only into the slab rows it owns). Results are
    /// bit-identical for any thread count as long as each lane visits its
    /// rows' contributions in the same order the serial code would.
    ///
    /// # Panics
    /// Panics when `row_len == 0`, `lanes == 0`, or `out.len()` is not a
    /// multiple of `row_len`.
    pub fn for_lane_rows<T, F>(&self, out: &mut [T], row_len: usize, lanes: usize, f: F)
    where
        T: Send,
        F: Fn(usize, LaneRows<'_, T>) + Sync,
    {
        assert!(row_len > 0, "for_lane_rows: row_len must be positive");
        assert!(lanes > 0, "for_lane_rows: need at least one lane");
        assert_eq!(out.len() % row_len, 0, "for_lane_rows: ragged buffer");
        let rows = out.len() / row_len;
        let ptr = SendPtr(out.as_mut_ptr());
        self.run(lanes, |lane| {
            f(
                lane,
                LaneRows {
                    ptr,
                    rows,
                    row_len,
                    lane,
                    lanes,
                    _borrow: std::marker::PhantomData,
                },
            );
        });
    }

    /// Element-sharded parallel loop: calls `f(i, &mut items[i])` once per
    /// element, one job per element. Safe for the same reason as
    /// [`for_rows`](Self::for_rows): every element is owned by exactly one
    /// job.
    ///
    /// Meant for small fleets of coarse accumulators (e.g. one gradient map
    /// per lane), where each job does substantial work on its single item.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let ptr = SendPtr(items.as_mut_ptr());
        self.run(n, |i| {
            // SAFETY: job `i` is the only job addressing element `i`, the
            // index is in bounds (`i < n`), and the caller's `&mut items`
            // borrow outlives the `run`.
            let item = unsafe { &mut *ptr.add(i) };
            f(i, item);
        });
    }
}

/// One lane's view of a row-structured buffer inside
/// [`Pool::for_lane_rows`]: grants mutable access to exactly the rows the
/// lane owns (`r % lanes == lane`).
pub struct LaneRows<'a, T> {
    ptr: SendPtr<T>,
    rows: usize,
    row_len: usize,
    lane: usize,
    lanes: usize,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> LaneRows<'_, T> {
    /// This lane's index.
    #[inline]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Total number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether this lane owns row `r`.
    #[inline]
    pub fn owns(&self, r: usize) -> bool {
        r % self.lanes == self.lane
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of bounds or not owned by this lane.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        // lint: allow(panic-free, reason="ownership asserts back the SAFETY contract of the unsafe disjoint write; removing them trades a panic for UB")
        assert!(r < self.rows, "LaneRows: row {r} out of bounds");
        // lint: allow(panic-free, reason="ownership asserts back the SAFETY contract of the unsafe disjoint write; removing them trades a panic for UB")
        assert!(
            self.owns(r),
            "LaneRows: row {r} is not owned by lane {} of {}",
            self.lane,
            self.lanes
        );
        // SAFETY: the asserts above guarantee `r` is in bounds and owned by
        // exactly this lane (rows are partitioned by `r % lanes`), the
        // caller of `for_lane_rows` holds `&mut out` for the whole `run`,
        // and `&mut self` prevents this lane from holding two overlapping
        // row borrows at once.
        unsafe { self.ptr.slice(r * self.row_len, self.row_len) }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::serial()
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = Pool::serial();
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
        let seen = Mutex::new(Vec::new());
        pool.run(5, |i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = Pool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_runs() {
        let pool = Pool::new(3);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run(round + 1, |i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            let n = round + 1;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }

    #[test]
    fn clones_share_the_same_workers() {
        let pool = Pool::new(2);
        let clone = pool.clone();
        let sum = AtomicUsize::new(0);
        clone.run(10, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        assert_eq!(clone.threads(), 2);
    }

    #[test]
    fn job_panic_propagates_to_the_caller() {
        let pool = Pool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must survive a panicked run.
        let sum = AtomicUsize::new(0);
        pool.run(4, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn disjoint_writes_through_sendptr() {
        let pool = Pool::new(4);
        let mut out = vec![0u32; 257];
        let ptr = SendPtr(out.as_mut_ptr());
        let (chunk, njobs) = chunks_for(out.len(), pool.threads());
        let total = out.len();
        pool.run(njobs, |j| {
            let start = j * chunk;
            let end = (start + chunk).min(total);
            // SAFETY: chunks are disjoint across job indices.
            let slice = unsafe { ptr.slice(start, end - start) };
            for (off, v) in slice.iter_mut().enumerate() {
                *v = (start + off) as u32;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn for_rows_visits_every_row_once_with_its_own_slice() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let mut out = vec![0u32; 31 * 7];
            pool.for_rows(&mut out, 7, |r, row| {
                assert_eq!(row.len(), 7);
                for (c, v) in row.iter_mut().enumerate() {
                    *v += (r * 7 + c) as u32;
                }
            });
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u32, "threads={threads}");
            }
        }
    }

    #[test]
    fn for_rows2_pairs_rows_and_allows_empty_second_buffer() {
        let pool = Pool::new(3);
        let mut a = vec![0u32; 10 * 3];
        let mut b = vec![0u32; 10 * 2];
        pool.for_rows2(&mut a, 3, &mut b, 2, |r, ar, br| {
            ar.fill(r as u32);
            br.fill(r as u32 + 100);
        });
        for r in 0..10 {
            assert!(a[r * 3..(r + 1) * 3].iter().all(|&v| v == r as u32));
            assert!(b[r * 2..(r + 1) * 2].iter().all(|&v| v == r as u32 + 100));
        }
        // Zero-width second buffer: row count comes from the first.
        let mut empty: Vec<u32> = Vec::new();
        let mut seen = vec![0u8; 10];
        let seen_ptr = SendPtr(seen.as_mut_ptr());
        pool.for_rows2(&mut a, 3, &mut empty, 0, |r, _ar, br| {
            assert!(br.is_empty());
            // SAFETY: row `r` of `seen` is owned by exactly this job.
            unsafe { *seen_ptr.add(r) += 1 };
        });
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn for_rows_rejects_ragged_buffers() {
        Pool::serial().for_rows(&mut [0u32; 7], 3, |_, _| {});
    }

    #[test]
    fn for_row_chunks_hands_out_disjoint_contiguous_blocks() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let mut out = vec![0u32; 29 * 5];
            pool.for_row_chunks(&mut out, 5, |r0, block| {
                assert_eq!(block.len() % 5, 0);
                for (off, v) in block.iter_mut().enumerate() {
                    *v += (r0 * 5 + off) as u32;
                }
            });
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u32, "threads={threads}");
            }
        }
    }

    #[test]
    fn for_lane_rows_partitions_rows_by_modulus() {
        for threads in [1usize, 3] {
            let pool = Pool::new(threads);
            let mut out = vec![0u32; 13 * 4];
            pool.for_lane_rows(&mut out, 4, 3, |lane, mut rows| {
                assert_eq!(rows.lanes(), 3);
                assert_eq!(rows.lane(), lane);
                for r in 0..13 {
                    if rows.owns(r) {
                        rows.row_mut(r).fill(lane as u32 + 1);
                    }
                }
            });
            for r in 0..13 {
                let expect = (r % 3) as u32 + 1;
                assert!(
                    out[r * 4..(r + 1) * 4].iter().all(|&v| v == expect),
                    "threads={threads} row={r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn lane_rows_rejects_foreign_rows() {
        Pool::serial().for_lane_rows(&mut [0u32; 8], 2, 2, |lane, mut rows| {
            if lane == 0 {
                rows.row_mut(1);
            }
        });
    }

    #[test]
    fn for_each_mut_owns_each_element() {
        let pool = Pool::new(4);
        let mut items: Vec<Vec<usize>> = (0..9).map(|_| Vec::new()).collect();
        pool.for_each_mut(&mut items, |i, item| {
            item.push(i);
        });
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item, &vec![i]);
        }
    }

    #[test]
    fn chunks_cover_everything() {
        for total in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 4, 7] {
                let (chunk, njobs) = chunks_for(total, threads);
                assert!(njobs * chunk >= total);
                assert!(njobs == 0 || (njobs - 1) * chunk < total);
            }
        }
    }
}
