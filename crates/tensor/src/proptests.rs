//! Property-based tests for the blocked matmul microkernels.
//!
//! Two families of invariants:
//!
//! 1. **Accuracy** — the register-tiled kernels in [`crate::matrix`] must
//!    match the naive triple-loop kernels in [`crate::reference`] within a
//!    `1e-4` relative tolerance on arbitrary shapes, including K/N that are
//!    not multiples of the 4/8/16 tile edges (the remainder paths are the
//!    easiest place for a blocking bug to hide).
//! 2. **Determinism** — the pooled variants must be *bit-identical* to the
//!    serial kernels for any thread count, because owner-computes
//!    row-blocking runs the same microkernel over the same reduction order.

#![cfg(test)]

use crate::kernels::{self, Backend, MatMulKernel};
use crate::matrix::Matrix;
use crate::pool::Pool;
use crate::reference;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix whose entries vary with `salt`.
fn salted(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let x = (r * 131 + c * 37) as f32 * 0.0137 + salt as f32 * 0.11;
        (x.sin() * 1.7) + (x * 0.31).cos() * 0.4
    })
}

/// Relative mismatch check: `|x - y| <= tol * max(1, |x|, |y|)`.
fn rel_close(x: f32, y: f32, tol: f32) -> bool {
    (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_accumulate_matches_reference(
        m in 1usize..37,
        k in 1usize..90,
        n in 1usize..70,
        salt in 0u64..1000,
        alpha in -2.0f32..2.0,
    ) {
        let a = salted(m, k, salt);
        let b = salted(k, n, salt ^ 0x5a);
        let seed = salted(m, n, salt ^ 0xc3);
        let mut blocked = seed.clone();
        let mut naive = seed;
        a.matmul_accumulate(&b, &mut blocked, alpha);
        reference::matmul_accumulate(&a, &b, &mut naive, alpha);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                rel_close(*x, *y, 1e-4),
                "matmul_accumulate {m}x{k}x{n} alpha={alpha} diverged at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matmul_at_b_accumulate_matches_reference(
        m in 1usize..50,
        k in 1usize..37,
        n in 1usize..70,
        salt in 0u64..1000,
        alpha in -2.0f32..2.0,
    ) {
        // out[k, n] += alpha * a[m, k]^T * b[m, n]
        let a = salted(m, k, salt);
        let b = salted(m, n, salt ^ 0x5a);
        let seed = salted(k, n, salt ^ 0xc3);
        let mut blocked = seed.clone();
        let mut naive = seed;
        a.matmul_at_b_accumulate(&b, &mut blocked, alpha);
        reference::matmul_at_b_accumulate(&a, &b, &mut naive, alpha);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                rel_close(*x, *y, 1e-4),
                "matmul_at_b_accumulate {m}x{k}x{n} alpha={alpha} diverged at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matmul_a_bt_matches_reference(
        m in 1usize..37,
        k in 1usize..90,
        n in 1usize..37,
        salt in 0u64..1000,
    ) {
        // out[m, n] = a[m, k] * b[n, k]^T
        let a = salted(m, k, salt);
        let b = salted(n, k, salt ^ 0x5a);
        let mut blocked = Matrix::zeros(m, n);
        let mut naive = Matrix::zeros(m, n);
        a.matmul_a_bt_into(&b, &mut blocked);
        reference::matmul_a_bt_into(&a, &b, &mut naive);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                rel_close(*x, *y, 1e-4),
                "matmul_a_bt {m}x{k}x{n} diverged at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn pooled_tiled_kernels_bitwise_equal_serial(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        salt in 0u64..1000,
        threads in 1usize..5,
    ) {
        let pool = Pool::new(threads);
        let a = salted(m, k, salt);
        let b = salted(k, n, salt ^ 0x11);
        let mut serial = salted(m, n, salt ^ 0x22);
        let mut pooled = serial.clone();
        a.matmul_accumulate(&b, &mut serial, 0.75);
        a.matmul_accumulate_pooled(&b, &mut pooled, 0.75, &pool);
        for (i, (s, p)) in serial.as_slice().iter().zip(pooled.as_slice()).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "matmul_accumulate {m}x{k}x{n} t={threads} not bitwise at {i}: {s} vs {p}"
            );
        }
        let g = salted(m, n, salt ^ 0x33);
        let mut serial_t = salted(k, n, salt ^ 0x44);
        let mut pooled_t = serial_t.clone();
        a.matmul_at_b_accumulate(&g, &mut serial_t, -0.5);
        a.matmul_at_b_accumulate_pooled(&g, &mut pooled_t, -0.5, &pool);
        for (i, (s, p)) in serial_t.as_slice().iter().zip(pooled_t.as_slice()).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "matmul_at_b {m}x{k}x{n} t={threads} not bitwise at {i}: {s} vs {p}"
            );
        }
        let bt = salted(n, k, salt ^ 0x55);
        let mut serial_bt = Matrix::zeros(m, n);
        let mut pooled_bt = Matrix::zeros(m, n);
        a.matmul_a_bt_into(&bt, &mut serial_bt);
        a.matmul_a_bt_into_pooled(&bt, &mut pooled_bt, &pool);
        for (i, (s, p)) in serial_bt.as_slice().iter().zip(pooled_bt.as_slice()).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "matmul_a_bt {m}x{k}x{n} t={threads} not bitwise at {i}: {s} vs {p}"
            );
        }
    }
}

/// Kernel objects for every backend the host supports (scalar always,
/// AVX2+FMA when detected) — called directly on slices, so the
/// process-wide backend selection is never mutated from parallel test
/// threads.
fn backends() -> Vec<&'static dyn MatMulKernel> {
    let mut v: Vec<&'static dyn MatMulKernel> = vec![kernels::kernel_for(Backend::Scalar)];
    if Backend::AvxFma.is_supported() {
        v.push(kernels::kernel_for(Backend::AvxFma));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backend_mm_acc_matches_reference(
        m in 1usize..37,
        k in 1usize..90,
        n in 1usize..70,
        salt in 0u64..1000,
    ) {
        let a = salted(m, k, salt);
        let b = salted(k, n, salt ^ 0x5a);
        let seed = salted(m, n, salt ^ 0xc3);
        let mut expect = seed.clone();
        reference::matmul_accumulate(&a, &b, &mut expect, 0.5);
        for kern in backends() {
            let mut got = seed.as_slice().to_vec();
            kern.mm_acc_rows(a.as_slice(), k, b.as_slice(), n, &mut got, 0.5);
            for (i, (x, y)) in got.iter().zip(expect.as_slice()).enumerate() {
                prop_assert!(
                    rel_close(*x, *y, 1e-4),
                    "{} mm_acc {m}x{k}x{n} diverged at {i}: {x} vs {y}",
                    kern.name()
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backend_mm_atb_matches_reference(
        m in 1usize..37,
        k in 1usize..70,
        n in 1usize..70,
        salt in 0u64..1000,
    ) {
        let a = salted(m, k, salt);
        let g = salted(m, n, salt ^ 0x5a);
        let seed = salted(k, n, salt ^ 0xc3);
        let mut expect = seed.clone();
        reference::matmul_at_b_accumulate(&a, &g, &mut expect, -0.75);
        for kern in backends() {
            let mut got = seed.as_slice().to_vec();
            kern.mm_atb_rows(a.as_slice(), k, g.as_slice(), n, 0, &mut got, -0.75);
            for (i, (x, y)) in got.iter().zip(expect.as_slice()).enumerate() {
                prop_assert!(
                    rel_close(*x, *y, 1e-4),
                    "{} mm_atb {m}x{k}x{n} diverged at {i}: {x} vs {y}",
                    kern.name()
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backend_mm_abt_matches_reference(
        m in 1usize..37,
        k in 1usize..90,
        n in 1usize..37,
        salt in 0u64..1000,
    ) {
        let a = salted(m, k, salt);
        let b = salted(n, k, salt ^ 0x5a);
        let mut expect = Matrix::zeros(m, n);
        reference::matmul_a_bt_into(&a, &b, &mut expect);
        for kern in backends() {
            let mut got = vec![0.0f32; m * n];
            kern.mm_abt_rows(a.as_slice(), k, b.as_slice(), n, &mut got);
            for (i, (x, y)) in got.iter().zip(expect.as_slice()).enumerate() {
                prop_assert!(
                    rel_close(*x, *y, 1e-4),
                    "{} mm_abt {m}x{k}x{n} diverged at {i}: {x} vs {y}",
                    kern.name()
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Emulates arbitrary pooled chunk boundaries at the kernel-call
    // level: computing a block of output rows in several contiguous calls
    // must be bit-identical to one call, for every backend — this is the
    // property the owner-computes pool paths rely on.
    #[test]
    fn backend_row_regrouping_is_bitwise_invariant(
        m in 1usize..41,
        k in 1usize..41,
        n in 1usize..41,
        raw_split in 1usize..41,
        salt in 0u64..1000,
    ) {
        check_row_regrouping(m, k, n, raw_split, salt);
    }
}

/// Non-finite inputs must propagate identically on every backend: the
/// packed kernels compute zero-padded tail lanes but never store them, and
/// no backend has a skip-zero fast path, so NaN/Inf classification must
/// agree with the reference exactly.
#[test]
fn nan_inf_propagation_parity_across_backends() {
    let (m, k, n) = (9, 21, 13);
    let mut a = salted(m, k, 7);
    a.set(2, 5, f32::NAN);
    a.set(6, 1, f32::INFINITY);
    a.set(7, 3, f32::NEG_INFINITY);
    let b = salted(k, n, 9);
    let seed = salted(m, n, 11);
    let mut expect = seed.clone();
    reference::matmul_accumulate(&a, &b, &mut expect, 1.0);
    for kern in backends() {
        let mut got = seed.as_slice().to_vec();
        kern.mm_acc_rows(a.as_slice(), k, b.as_slice(), n, &mut got, 1.0);
        for (i, (x, y)) in got.iter().zip(expect.as_slice()).enumerate() {
            check_parity(*x, *y, kern.name(), "mm_acc", i);
        }
    }
    // A^T G with non-finite entries in G.
    let a = salted(m, k, 13);
    let mut g = salted(m, n, 15);
    g.set(4, 2, f32::NAN);
    g.set(1, 9, f32::INFINITY);
    let seed_t = salted(k, n, 17);
    let mut expect_t = seed_t.clone();
    reference::matmul_at_b_accumulate(&a, &g, &mut expect_t, 1.0);
    for kern in backends() {
        let mut got = seed_t.as_slice().to_vec();
        kern.mm_atb_rows(a.as_slice(), k, g.as_slice(), n, 0, &mut got, 1.0);
        for (i, (x, y)) in got.iter().zip(expect_t.as_slice()).enumerate() {
            check_parity(*x, *y, kern.name(), "mm_atb", i);
        }
    }
    // A B^T with non-finite entries in B.
    let mut bt = salted(n, k, 19);
    bt.set(3, 8, f32::NEG_INFINITY);
    bt.set(10, 0, f32::NAN);
    let mut expect_bt = Matrix::zeros(m, n);
    reference::matmul_a_bt_into(&a, &bt, &mut expect_bt);
    for kern in backends() {
        let mut got = vec![0.0f32; m * n];
        kern.mm_abt_rows(a.as_slice(), k, bt.as_slice(), n, &mut got);
        for (i, (x, y)) in got.iter().zip(expect_bt.as_slice()).enumerate() {
            check_parity(*x, *y, kern.name(), "mm_abt", i);
        }
    }
}

fn check_parity(x: f32, y: f32, backend: &str, op: &str, i: usize) {
    if y.is_nan() {
        assert!(x.is_nan(), "{backend} {op} at {i}: expected NaN, got {x}");
    } else if y.is_infinite() {
        assert_eq!(x, y, "{backend} {op} at {i}: expected {y}, got {x}");
    } else {
        assert!(rel_close(x, y, 1e-4), "{backend} {op} at {i}: {x} vs {y}");
    }
}

/// Body of `backend_row_regrouping_is_bitwise_invariant`, extracted so the
/// `proptest!` macro expansion stays within the recursion limit; plain
/// `assert!` still fails (and shrinks) the enclosing property.
fn check_row_regrouping(m: usize, k: usize, n: usize, raw_split: usize, salt: u64) {
    let a = salted(m, k, salt);
    let b = salted(k, n, salt ^ 0x11);
    let g = salted(m, n, salt ^ 0x22);
    let bt = salted(n, k, salt ^ 0x33);
    let bitwise = |full: &[f32], parts: &[f32], name: &str, op: &str, split: usize| {
        for (i, (x, y)) in full.iter().zip(parts.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{name} {op} {m}x{k}x{n} split {split} not bitwise at {i}: {x} vs {y}"
            );
        }
    };
    for kern in backends() {
        // out += alpha * A B, split over output rows.
        let mut full = vec![0.5f32; m * n];
        kern.mm_acc_rows(a.as_slice(), k, b.as_slice(), n, &mut full, 0.75);
        let split = 1 + raw_split % m;
        let mut parts = vec![0.5f32; m * n];
        let mut r0 = 0;
        while r0 < m {
            let rows = split.min(m - r0);
            kern.mm_acc_rows(
                &a.as_slice()[r0 * k..(r0 + rows) * k],
                k,
                b.as_slice(),
                n,
                &mut parts[r0 * n..(r0 + rows) * n],
                0.75,
            );
            r0 += rows;
        }
        bitwise(&full, &parts, kern.name(), "mm_acc", split);
        // out += alpha * A^T G, split over output rows (= A columns).
        let mut full_t = vec![-0.25f32; k * n];
        kern.mm_atb_rows(a.as_slice(), k, g.as_slice(), n, 0, &mut full_t, -0.5);
        let split = 1 + raw_split % k;
        let mut parts_t = vec![-0.25f32; k * n];
        let mut k0 = 0;
        while k0 < k {
            let rows = split.min(k - k0);
            kern.mm_atb_rows(
                a.as_slice(),
                k,
                g.as_slice(),
                n,
                k0,
                &mut parts_t[k0 * n..(k0 + rows) * n],
                -0.5,
            );
            k0 += rows;
        }
        bitwise(&full_t, &parts_t, kern.name(), "mm_atb", split);
        // out = A B^T, split over output rows.
        let mut full_bt = vec![0.0f32; m * n];
        kern.mm_abt_rows(a.as_slice(), k, bt.as_slice(), n, &mut full_bt);
        let split = 1 + raw_split % m;
        let mut parts_bt = vec![0.0f32; m * n];
        let mut r0 = 0;
        while r0 < m {
            let rows = split.min(m - r0);
            kern.mm_abt_rows(
                &a.as_slice()[r0 * k..(r0 + rows) * k],
                k,
                bt.as_slice(),
                n,
                &mut parts_bt[r0 * n..(r0 + rows) * n],
            );
            r0 += rows;
        }
        bitwise(&full_bt, &parts_bt, kern.name(), "mm_abt", split);
    }
}
