//! Property-based tests for the blocked matmul microkernels.
//!
//! Two families of invariants:
//!
//! 1. **Accuracy** — the register-tiled kernels in [`crate::matrix`] must
//!    match the naive triple-loop kernels in [`crate::reference`] within a
//!    `1e-4` relative tolerance on arbitrary shapes, including K/N that are
//!    not multiples of the 4/8/16 tile edges (the remainder paths are the
//!    easiest place for a blocking bug to hide).
//! 2. **Determinism** — the pooled variants must be *bit-identical* to the
//!    serial kernels for any thread count, because owner-computes
//!    row-blocking runs the same microkernel over the same reduction order.

#![cfg(test)]

use crate::matrix::Matrix;
use crate::pool::Pool;
use crate::reference;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix whose entries vary with `salt`.
fn salted(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let x = (r * 131 + c * 37) as f32 * 0.0137 + salt as f32 * 0.11;
        (x.sin() * 1.7) + (x * 0.31).cos() * 0.4
    })
}

/// Relative mismatch check: `|x - y| <= tol * max(1, |x|, |y|)`.
fn rel_close(x: f32, y: f32, tol: f32) -> bool {
    (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_accumulate_matches_reference(
        m in 1usize..37,
        k in 1usize..90,
        n in 1usize..70,
        salt in 0u64..1000,
        alpha in -2.0f32..2.0,
    ) {
        let a = salted(m, k, salt);
        let b = salted(k, n, salt ^ 0x5a);
        let seed = salted(m, n, salt ^ 0xc3);
        let mut blocked = seed.clone();
        let mut naive = seed;
        a.matmul_accumulate(&b, &mut blocked, alpha);
        reference::matmul_accumulate(&a, &b, &mut naive, alpha);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                rel_close(*x, *y, 1e-4),
                "matmul_accumulate {m}x{k}x{n} alpha={alpha} diverged at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matmul_at_b_accumulate_matches_reference(
        m in 1usize..50,
        k in 1usize..37,
        n in 1usize..70,
        salt in 0u64..1000,
        alpha in -2.0f32..2.0,
    ) {
        // out[k, n] += alpha * a[m, k]^T * b[m, n]
        let a = salted(m, k, salt);
        let b = salted(m, n, salt ^ 0x5a);
        let seed = salted(k, n, salt ^ 0xc3);
        let mut blocked = seed.clone();
        let mut naive = seed;
        a.matmul_at_b_accumulate(&b, &mut blocked, alpha);
        reference::matmul_at_b_accumulate(&a, &b, &mut naive, alpha);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                rel_close(*x, *y, 1e-4),
                "matmul_at_b_accumulate {m}x{k}x{n} alpha={alpha} diverged at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matmul_a_bt_matches_reference(
        m in 1usize..37,
        k in 1usize..90,
        n in 1usize..37,
        salt in 0u64..1000,
    ) {
        // out[m, n] = a[m, k] * b[n, k]^T
        let a = salted(m, k, salt);
        let b = salted(n, k, salt ^ 0x5a);
        let mut blocked = Matrix::zeros(m, n);
        let mut naive = Matrix::zeros(m, n);
        a.matmul_a_bt_into(&b, &mut blocked);
        reference::matmul_a_bt_into(&a, &b, &mut naive);
        for (i, (x, y)) in blocked.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                rel_close(*x, *y, 1e-4),
                "matmul_a_bt {m}x{k}x{n} diverged at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn pooled_tiled_kernels_bitwise_equal_serial(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        salt in 0u64..1000,
        threads in 1usize..5,
    ) {
        let pool = Pool::new(threads);
        let a = salted(m, k, salt);
        let b = salted(k, n, salt ^ 0x11);
        let mut serial = salted(m, n, salt ^ 0x22);
        let mut pooled = serial.clone();
        a.matmul_accumulate(&b, &mut serial, 0.75);
        a.matmul_accumulate_pooled(&b, &mut pooled, 0.75, &pool);
        for (i, (s, p)) in serial.as_slice().iter().zip(pooled.as_slice()).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "matmul_accumulate {m}x{k}x{n} t={threads} not bitwise at {i}: {s} vs {p}"
            );
        }
        let g = salted(m, n, salt ^ 0x33);
        let mut serial_t = salted(k, n, salt ^ 0x44);
        let mut pooled_t = serial_t.clone();
        a.matmul_at_b_accumulate(&g, &mut serial_t, -0.5);
        a.matmul_at_b_accumulate_pooled(&g, &mut pooled_t, -0.5, &pool);
        for (i, (s, p)) in serial_t.as_slice().iter().zip(pooled_t.as_slice()).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "matmul_at_b {m}x{k}x{n} t={threads} not bitwise at {i}: {s} vs {p}"
            );
        }
        let bt = salted(n, k, salt ^ 0x55);
        let mut serial_bt = Matrix::zeros(m, n);
        let mut pooled_bt = Matrix::zeros(m, n);
        a.matmul_a_bt_into(&bt, &mut serial_bt);
        a.matmul_a_bt_into_pooled(&bt, &mut pooled_bt, &pool);
        for (i, (s, p)) in serial_bt.as_slice().iter().zip(pooled_bt.as_slice()).enumerate() {
            prop_assert!(
                s.to_bits() == p.to_bits(),
                "matmul_a_bt {m}x{k}x{n} t={threads} not bitwise at {i}: {s} vs {p}"
            );
        }
    }
}
