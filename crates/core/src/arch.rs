//! Per-pair modelling methods and full architectures.

use optinter_data::PlantedKind;

/// The modelling method chosen for one feature interaction (paper Eq. 15):
/// the search space `K = {memorize, factorize, naive}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Use the pair's cross-product embedding `e^m_(i,j)` (Eq. 4).
    Memorize,
    /// Use the Hadamard product of the original embeddings (Eq. 14).
    Factorize,
    /// Drop the interaction (the empty embedding `e^n`).
    Naive,
}

impl Method {
    /// All methods, in the paper's `[memorize, factorize, naive]` order —
    /// this is also the column order of the architecture parameters.
    pub const ALL: [Method; 3] = [Method::Memorize, Method::Factorize, Method::Naive];

    /// Column index into architecture-parameter rows.
    pub fn index(&self) -> usize {
        match self {
            Method::Memorize => 0,
            Method::Factorize => 1,
            Method::Naive => 2,
        }
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(i: usize) -> Method {
        Method::ALL[i]
    }

    /// The method an oracle would pick for a planted pair kind.
    pub fn oracle_for(kind: PlantedKind) -> Method {
        match kind {
            PlantedKind::Memorized => Method::Memorize,
            PlantedKind::Factorized => Method::Factorize,
            PlantedKind::None => Method::Naive,
        }
    }

    /// Short display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Method::Memorize => "M",
            Method::Factorize => "F",
            Method::Naive => "N",
        }
    }
}

/// A full architecture: one [`Method`] per feature pair, in
/// [`PairIndexer`](optinter_data::PairIndexer) flat order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    methods: Vec<Method>,
}

impl Architecture {
    /// Wraps an explicit per-pair assignment.
    pub fn new(methods: Vec<Method>) -> Self {
        // lint: allow(panic-free, reason="unreachable from artifact decode: architecture_from_string rejects empty method strings before constructing")
        assert!(!methods.is_empty(), "architecture needs at least one pair");
        Self { methods }
    }

    /// The all-`method` architecture over `num_pairs` pairs —
    /// `Architecture::uniform(Method::Memorize, p)` is OptInter-M,
    /// `Architecture::uniform(Method::Factorize, p)` is OptInter-F,
    /// `Architecture::uniform(Method::Naive, p)` is FNN-like.
    pub fn uniform(method: Method, num_pairs: usize) -> Self {
        Self::new(vec![method; num_pairs])
    }

    /// The oracle architecture for a planted assignment.
    pub fn oracle(planted: &[PlantedKind]) -> Self {
        Self::new(planted.iter().map(|&k| Method::oracle_for(k)).collect())
    }

    /// Number of pairs.
    pub fn num_pairs(&self) -> usize {
        self.methods.len()
    }

    /// Method of pair `p`.
    pub fn method(&self, p: usize) -> Method {
        self.methods[p]
    }

    /// All methods in flat order.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// `[memorize, factorize, naive]` counts — the paper's Table VI format.
    pub fn counts(&self) -> [usize; 3] {
        let mut c = [0usize; 3];
        for m in &self.methods {
            c[m.index()] += 1;
        }
        c
    }

    /// Pairs assigned a specific method.
    pub fn pairs_with(&self, method: Method) -> Vec<usize> {
        self.methods
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == method)
            .map(|(p, _)| p)
            .collect()
    }

    /// Fraction of pairs whose method matches the planted oracle.
    pub fn agreement_with(&self, planted: &[PlantedKind]) -> f64 {
        assert_eq!(
            self.methods.len(),
            planted.len(),
            "agreement: pair count mismatch"
        );
        let hits = self
            .methods
            .iter()
            .zip(planted.iter())
            .filter(|&(&m, &k)| m == Method::oracle_for(k))
            .count();
        hits as f64 / planted.len() as f64
    }

    /// Compact display like `[117,98,110]` (Table VI / VIII style).
    pub fn counts_string(&self) -> String {
        let c = self.counts();
        format!("[{},{},{}]", c[0], c[1], c[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_index_roundtrip() {
        for m in Method::ALL {
            assert_eq!(Method::from_index(m.index()), m);
        }
    }

    #[test]
    fn uniform_counts() {
        let a = Architecture::uniform(Method::Memorize, 10);
        assert_eq!(a.counts(), [10, 0, 0]);
        assert_eq!(a.counts_string(), "[10,0,0]");
    }

    #[test]
    fn oracle_maps_planted_kinds() {
        let planted = vec![
            PlantedKind::Memorized,
            PlantedKind::Factorized,
            PlantedKind::None,
        ];
        let a = Architecture::oracle(&planted);
        assert_eq!(
            a.methods(),
            &[Method::Memorize, Method::Factorize, Method::Naive]
        );
        assert_eq!(a.agreement_with(&planted), 1.0);
    }

    #[test]
    fn agreement_partial() {
        let planted = vec![PlantedKind::Memorized, PlantedKind::Factorized];
        let a = Architecture::new(vec![Method::Memorize, Method::Naive]);
        assert_eq!(a.agreement_with(&planted), 0.5);
    }

    #[test]
    fn pairs_with_filters() {
        let a = Architecture::new(vec![Method::Memorize, Method::Naive, Method::Memorize]);
        assert_eq!(a.pairs_with(Method::Memorize), vec![0, 2]);
        assert_eq!(a.pairs_with(Method::Factorize), Vec::<usize>::new());
    }
}
