//! The search-stage model (paper Sec. II-C2, Algorithm 1).
//!
//! For every feature pair the supernet computes all three candidate
//! embeddings — memorized `e^m_(i,j)`, factorized `e^f_(i,j) = e^o_i ⊗
//! e^o_j`, naïve `e^n = 0` — zero-pads them to a common width, and mixes
//! them with Gumbel-softmax-relaxed architecture weights (Eq. 18):
//!
//! `e^b_(i,j) = p^m e^m + p^f e^f + p^n e^n`.
//!
//! The mixed pair embeddings are concatenated with the original embeddings
//! and fed to the MLP classifier. One backward pass produces gradients for
//! network weights Θ *and* architecture logits α, which are updated
//! simultaneously by separate Adam instances (the paper's joint scheme).
//!
//! # Parallelism
//!
//! When `cfg.num_threads > 1` the per-batch work shards across a
//! [`Pool`] under the owner-computes discipline (see
//! `optinter_tensor::pool`): the forward pass row-shards candidate and
//! input assembly, the MLP's matmuls row-block, and the backward pass runs
//! as two passes — one parallel over *pairs* (each pair owns its `dp_m`,
//! `dp_f`, architecture-gradient row and generalized-weight row) and one
//! parallel over *batch rows* (each row owns its slices of `d e^o` and
//! `d e^m`). Every floating-point accumulator keeps the serial loop's
//! element-wise accumulation order, so training is bit-identical to the
//! single-threaded path for any thread count.

use crate::arch::{Architecture, Method};
use crate::config::{FactFn, OptInterConfig};
use crate::gumbel::GumbelSample;
use crate::net::DataDims;
use optinter_data::Batch;
use optinter_nn::{
    bce_with_logits_into, loss, Adam, DenseOptimizer, EmbedStore, Layer, Mlp, MlpConfig, Parameter,
    Workspace,
};
use optinter_tensor::{ops, Matrix, Pool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The OptInter supernet: network weights plus relaxed architecture.
pub struct Supernet {
    cfg: OptInterConfig,
    dims: DataDims,
    e_orig: EmbedStore,
    e_cross: EmbedStore,
    mlp: Mlp,
    /// Architecture logits, one row per pair, columns `[mem, fac, naive]`.
    arch: Parameter,
    /// Per-pair weights for the generalized product (`None` otherwise).
    fact_weights: Option<Parameter>,
    adam_net: Adam,
    adam_cross: Adam,
    adam_arch: Adam,
    noise_rng: StdRng,
    pool: Pool,
    /// `(i, j)` field indices of every pair, precomputed once.
    pairs: Vec<(usize, usize)>,
    scr: SupScratch,
    ws: Workspace,
}

/// Persistent per-step buffers. Each forward overwrites them in full, so a
/// steady-state train step reuses their capacity instead of reallocating;
/// `backward` reads the activations the matching forward left behind.
struct SupScratch {
    eo: Matrix,
    em: Matrix,
    ef: Matrix,
    input: Matrix,
    logits: Matrix,
    grad_logits: Matrix,
    samples: Vec<GumbelSample>,
}

impl SupScratch {
    fn new() -> Self {
        Self {
            eo: Matrix::zeros(0, 0),
            em: Matrix::zeros(0, 0),
            ef: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            grad_logits: Matrix::zeros(0, 0),
            samples: Vec::new(),
        }
    }
}

impl Supernet {
    /// Builds a supernet for a dataset's dimensions.
    pub fn new(cfg: OptInterConfig, dims: DataDims) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let s1 = cfg.orig_dim;
        let s2 = cfg.cross_dim;
        let d = cfg.mixed_dim();
        let input_dim = dims.num_fields * s1 + dims.num_pairs * d;
        let pool = Pool::new(cfg.num_threads);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        mlp.set_pool(&pool);
        // Dense stores draw exactly what `EmbeddingTable::new` always drew
        // here, so `StoreKind::Dense` configs keep historical trajectories.
        let mut e_orig = EmbedStore::new(
            cfg.orig_store,
            &mut rng,
            dims.orig_vocab as usize,
            s1,
            cfg.seed ^ 0x5000_0E0A,
        );
        let mut e_cross = EmbedStore::new(
            cfg.cross_store,
            &mut rng,
            dims.cross_vocab as usize,
            s2,
            cfg.seed ^ 0x5000_0ECA,
        );
        e_orig.set_optimizer_mode(cfg.embed_opt);
        e_cross.set_optimizer_mode(cfg.embed_opt);
        // Architecture logits start at zero: uniform prior over methods.
        let arch = Parameter::zeros(dims.num_pairs, 3);
        // Generalized-product weights start at 1: reduces to Hadamard.
        let fact_weights = (cfg.fact_fn == FactFn::Generalized)
            .then(|| Parameter::new(Matrix::filled(dims.num_pairs, s1, 1.0)));
        let adam_net = Adam::with_lr_eps(cfg.lr, cfg.adam_eps);
        let adam_cross = Adam::with_lr_eps(cfg.lr_cross, cfg.adam_eps);
        let adam_arch = Adam::with_lr_eps(cfg.lr_arch, cfg.adam_eps);
        let noise_rng = StdRng::seed_from_u64(cfg.seed ^ 0x6A3B);
        let pairs: Vec<(usize, usize)> = dims.pairs().iter().collect();
        Self {
            cfg,
            dims,
            e_orig,
            e_cross,
            mlp,
            arch,
            fact_weights,
            adam_net,
            adam_cross,
            adam_arch,
            noise_rng,
            pool,
            pairs,
            scr: SupScratch::new(),
            ws: Workspace::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptInterConfig {
        &self.cfg
    }

    /// Dataset dimensions.
    pub fn dims(&self) -> &DataDims {
        &self.dims
    }

    /// Total trainable parameters (embeddings + MLP + architecture).
    pub fn num_params(&mut self) -> usize {
        let fact = self.fact_weights.as_ref().map_or(0, |fw| fw.len());
        self.e_orig.num_params()
            + self.e_cross.num_params()
            + self.mlp.num_params()
            + self.arch.len()
            + fact
    }

    /// Current architecture logits (rows = pairs).
    pub fn arch_logits(&self) -> &Matrix {
        &self.arch.value
    }

    /// Mutable architecture logits (bi-level search updates these
    /// through a separate pass; tests use this to force selections).
    pub fn arch_logits_mut(&mut self) -> &mut Matrix {
        &mut self.arch.value
    }

    /// Accumulated architecture gradient (diagnostics / gradient checks).
    pub fn arch_grad(&self) -> &Matrix {
        &self.arch.grad
    }

    /// Softmax probabilities of each pair's method (temperature 1, no noise).
    pub fn arch_probs(&self) -> Vec<[f32; 3]> {
        (0..self.dims.num_pairs)
            .map(|p| {
                let probs = ops::softmax_slice(self.arch.value.row(p), 1.0);
                [probs[0], probs[1], probs[2]]
            })
            .collect()
    }

    /// Extracts the discrete architecture by per-pair argmax (Eq. 19).
    pub fn extract_architecture(&self) -> Architecture {
        let methods = (0..self.dims.num_pairs)
            .map(|p| Method::from_index(ops::argmax(self.arch.value.row(p))))
            .collect();
        Architecture::new(methods)
    }

    /// Forward pass producing `[B, 1]` logits.
    ///
    /// With `train = true`, architecture weights are sampled with fresh
    /// Gumbel noise at temperature `tau`; otherwise the noiseless softmax at
    /// the same temperature is used.
    pub fn forward(&mut self, batch: &Batch, tau: f32, train: bool) -> Matrix {
        self.forward_step(batch, tau, train);
        self.scr.logits.clone()
    }

    /// Forward pass into the persistent scratch buffers; `self.scr.logits`
    /// holds the `[B, 1]` logits afterwards. Allocation-free at steady state.
    fn forward_step(&mut self, batch: &Batch, tau: f32, train: bool) {
        let m = self.dims.num_fields;
        let p_count = self.dims.num_pairs;
        let s1 = self.cfg.orig_dim;
        let s2 = self.cfg.cross_dim;
        let d = self.cfg.mixed_dim();
        assert_eq!(batch.num_fields, m, "supernet: field count mismatch");
        assert!(
            !batch.cross.is_empty(),
            "supernet needs cross features in the batch"
        );
        let b = batch.len();

        self.e_orig
            .lookup_fields_pooled_into(&batch.fields, m, &self.pool, &mut self.scr.eo);
        self.e_cross
            .lookup_fields_pooled_into(&batch.cross, p_count, &self.pool, &mut self.scr.em);

        // Factorized candidates for all pairs: ef[b, p*s1 + c]. Sharded over
        // batch rows; each element is a pure function of `eo` (and the pair
        // weights), so any row split is bit-identical to the serial loop.
        let fact_fn = self.cfg.fact_fn;
        let fw_val = self.fact_weights.as_ref().map(|fw| &fw.value);
        self.scr.ef.reset(b, p_count * s1);
        {
            let pairs = &self.pairs;
            let eo_ref = &self.scr.eo;
            let ef_width = p_count * s1;
            self.pool
                .for_rows(self.scr.ef.as_mut_slice(), ef_width, |r, ef_row| {
                    let eo_row = eo_ref.row(r);
                    for (p, &(i, j)) in pairs.iter().enumerate() {
                        let (ei, ej) =
                            (&eo_row[i * s1..(i + 1) * s1], &eo_row[j * s1..(j + 1) * s1]);
                        let dst = &mut ef_row[p * s1..(p + 1) * s1];
                        match fact_fn {
                            FactFn::Hadamard => {
                                for c in 0..s1 {
                                    dst[c] = ei[c] * ej[c];
                                }
                            }
                            FactFn::PointwiseAdd => {
                                for c in 0..s1 {
                                    dst[c] = ei[c] + ej[c];
                                }
                            }
                            FactFn::Generalized => {
                                let Some(fw) = fw_val else {
                                    unreachable!("generalized slot without fact_weights")
                                };
                                let w = fw.row(p);
                                for c in 0..s1 {
                                    dst[c] = w[c] * ei[c] * ej[c];
                                }
                            }
                        }
                    }
                });
        }

        // Relaxed method weights per pair. Gumbel noise must come off the
        // shared stream in pair order, so this stays serial.
        let mut samples = std::mem::take(&mut self.scr.samples);
        samples.clear();
        samples.reserve(p_count);
        for p in 0..p_count {
            let logits = self.arch.value.row(p);
            samples.push(if train {
                GumbelSample::draw(logits, tau, &mut self.noise_rng)
            } else {
                GumbelSample::deterministic(logits, tau)
            });
        }
        self.scr.samples = samples;

        // Assemble the MLP input: [e^o | mixed pair embeddings]. Also
        // sharded over batch rows under owner-computes.
        let in_width = m * s1 + p_count * d;
        self.scr.input.reset(b, in_width);
        {
            let eo_ref = &self.scr.eo;
            let em_ref = &self.scr.em;
            let ef_ref = &self.scr.ef;
            let samples = &self.scr.samples;
            self.pool
                .for_rows(self.scr.input.as_mut_slice(), in_width, |r, in_row| {
                    in_row[..m * s1].copy_from_slice(eo_ref.row(r));
                    for (p, sample) in samples.iter().enumerate() {
                        let pm = sample.probs[0];
                        let pf = sample.probs[1];
                        let base = m * s1 + p * d;
                        let em_row = &em_ref.row(r)[p * s2..(p + 1) * s2];
                        let ef_row = &ef_ref.row(r)[p * s1..(p + 1) * s1];
                        let dst = &mut in_row[base..base + d];
                        for c in 0..d {
                            let mut v = 0.0f32;
                            if c < s2 {
                                v += pm * em_row[c];
                            }
                            if c < s1 {
                                v += pf * ef_row[c];
                            }
                            dst[c] = v;
                        }
                    }
                });
        }

        let (input, logits) = (&self.scr.input, &mut self.scr.logits);
        self.mlp.forward_into(input, logits);
    }

    /// Backward pass from logit gradients; accumulates gradients on network
    /// weights, both embedding tables and the architecture logits. `batch`
    /// must be the one the matching [`forward`](Self::forward) saw — the
    /// persistent scratch holds that forward's activations but not the batch
    /// itself.
    pub fn backward(&mut self, batch: &Batch, grad_logits: &Matrix) {
        let m = self.dims.num_fields;
        let p_count = self.dims.num_pairs;
        let s1 = self.cfg.orig_dim;
        let s2 = self.cfg.cross_dim;
        let d = self.cfg.mixed_dim();
        let b = grad_logits.rows();
        assert_eq!(
            self.scr.input.rows(),
            b,
            "Supernet::backward before forward"
        );

        let mut dinput = self.ws.take(b, self.scr.input.cols());
        {
            let input = &self.scr.input;
            self.mlp.backward_into(input, grad_logits, &mut dinput);
        }

        // Two owner-computes passes replace the serial fused pair loop.
        // Splitting is safe because the pair-owned accumulators (dp_m, dp_f,
        // arch grad, generalized weights) and the row-owned ones (d e^o,
        // d e^m) never alias, and each pass keeps every accumulator's
        // element-wise accumulation order identical to the fused loop:
        // ascending `r` per pair in pass A, ascending `p` per row in pass B.
        let fact_fn = self.cfg.fact_fn;

        // Pass A — parallel over pairs: dp_m/dp_f reductions (ascending r,
        // exactly as the fused loop accumulated them), the Gumbel backward,
        // this pair's architecture-gradient row, and for the generalized
        // product this pair's weight-gradient row.
        {
            let pairs = &self.pairs;
            let eo_ref = &self.scr.eo;
            let em_ref = &self.scr.em;
            let ef_ref = &self.scr.ef;
            let samples = &self.scr.samples;
            let dinput_ref = &dinput;
            // The generalized product is the only factorization with its own
            // weights; for the other two the secondary buffer is empty and
            // `dw` comes out as a zero-length slice.
            // lint: allow(hot-path-alloc, reason="zero-capacity sentinel; Vec::new never touches the heap")
            let mut no_fw: Vec<f32> = Vec::new();
            let (fw_grad, fw_width): (&mut [f32], usize) = match self.fact_weights.as_mut() {
                Some(fw) => (fw.grad.as_mut_slice(), s1),
                None => (&mut no_fw, 0),
            };
            self.pool.for_rows2(
                self.arch.grad.as_mut_slice(),
                3,
                fw_grad,
                fw_width,
                |p, arow, dw| {
                    let (i, j) = pairs[p];
                    let sample = &samples[p];
                    let pf = sample.probs[1];
                    let base = m * s1 + p * d;
                    let mut dpm = 0.0f32;
                    let mut dpf = 0.0f32;
                    for r in 0..b {
                        let g = &dinput_ref.row(r)[base..base + d];
                        let em_row = &em_ref.row(r)[p * s2..(p + 1) * s2];
                        let ef_row = &ef_ref.row(r)[p * s1..(p + 1) * s1];
                        // d p_m, d p_f: inner products with the candidates.
                        for c in 0..s2.min(d) {
                            dpm += g[c] * em_row[c];
                        }
                        for c in 0..s1.min(d) {
                            dpf += g[c] * ef_row[c];
                        }
                        if fact_fn == FactFn::Generalized {
                            let eo_row = eo_ref.row(r);
                            let (ei, ej) =
                                (&eo_row[i * s1..(i + 1) * s1], &eo_row[j * s1..(j + 1) * s1]);
                            for c in 0..s1.min(d) {
                                let def = pf * g[c];
                                dw[c] += def * ei[c] * ej[c];
                            }
                        }
                    }
                    // d p_n = 0 (the naive embedding is identically zero).
                    let dprobs = [dpm, dpf, 0.0];
                    let mut dlogits = [0.0f32; 3];
                    sample.backward(&dprobs, &mut dlogits);
                    for c in 0..3 {
                        arow[c] += dlogits[c];
                    }
                },
            );
        }

        // Pass B — parallel over batch rows: d e^m and d e^o. A row of
        // `d e^o` receives contributions from every pair containing its
        // fields; iterating pairs in ascending order inside the row job
        // reproduces the fused loop's per-element accumulation order.
        let mut d_eo = self.ws.take(0, 0);
        dinput.block_into(0, m * s1, &mut d_eo);
        let mut d_em = self.ws.take(b, p_count * s2);
        {
            let eo_width = m * s1;
            let em_width = p_count * s2;
            let fw_val = self.fact_weights.as_ref().map(|fw| &fw.value);
            let pairs = &self.pairs;
            let eo_ref = &self.scr.eo;
            let samples = &self.scr.samples;
            let dinput_ref = &dinput;
            self.pool.for_rows2(
                d_eo.as_mut_slice(),
                eo_width,
                d_em.as_mut_slice(),
                em_width,
                |r, deo_row, dem_full| {
                    let eo_row = eo_ref.row(r);
                    let din_row = dinput_ref.row(r);
                    for (p, &(i, j)) in pairs.iter().enumerate() {
                        let sample = &samples[p];
                        let (pm, pf) = (sample.probs[0], sample.probs[1]);
                        let base = m * s1 + p * d;
                        let g = &din_row[base..base + d];
                        // d e^m = p_m * g (truncated to s2).
                        let dem_row = &mut dem_full[p * s2..(p + 1) * s2];
                        for c in 0..s2.min(d) {
                            dem_row[c] += pm * g[c];
                        }
                        // d e^f = p_f * g; factorization-function backward
                        // into the two fields.
                        let (ei, ej) =
                            (&eo_row[i * s1..(i + 1) * s1], &eo_row[j * s1..(j + 1) * s1]);
                        match fact_fn {
                            FactFn::Hadamard => {
                                for c in 0..s1.min(d) {
                                    let def = pf * g[c];
                                    deo_row[i * s1 + c] += def * ej[c];
                                    deo_row[j * s1 + c] += def * ei[c];
                                }
                            }
                            FactFn::PointwiseAdd => {
                                for c in 0..s1.min(d) {
                                    let def = pf * g[c];
                                    deo_row[i * s1 + c] += def;
                                    deo_row[j * s1 + c] += def;
                                }
                            }
                            FactFn::Generalized => {
                                let Some(fw) = fw_val else {
                                    unreachable!("generalized slot without fact_weights")
                                };
                                let w = fw.row(p);
                                for c in 0..s1.min(d) {
                                    let def = pf * g[c];
                                    deo_row[i * s1 + c] += def * w[c] * ej[c];
                                    deo_row[j * s1 + c] += def * w[c] * ei[c];
                                }
                            }
                        }
                    }
                },
            );
        }

        self.e_orig
            .accumulate_grad_fields_pooled(&batch.fields, m, &d_eo, &self.pool);
        self.e_cross
            .accumulate_grad_fields_pooled(&batch.cross, p_count, &d_em, &self.pool);
        self.ws.recycle(dinput);
        self.ws.recycle(d_eo);
        self.ws.recycle(d_em);
    }

    /// Applies one simultaneous optimizer step to Θ and α (Algorithm 1).
    pub fn step(&mut self) {
        self.step_weights();
        self.step_arch();
    }

    /// Updates only the network weights Θ (bi-level search uses this on
    /// training batches).
    pub fn step_weights(&mut self) {
        self.adam_net.begin_step();
        let l2 = self.cfg.l2_orig;
        let mut adam = self.adam_net;
        self.mlp.visit_params(&mut |p| adam.step(p, 0.0));
        if let Some(fw) = self.fact_weights.as_mut() {
            adam.step(fw, 0.0);
        }
        self.adam_net = adam;
        self.e_orig.apply_adam(&self.adam_net, l2);
        self.adam_cross.begin_step();
        self.e_cross.apply_adam(&self.adam_cross, self.cfg.l2_cross);
    }

    /// Replays any optimizer updates the `LazyCatchUp` embedding mode
    /// deferred, bringing every row up to the current timestep. Call before
    /// reading out weights; a no-op for the other modes.
    pub fn catch_up_embeddings(&mut self) {
        self.e_orig.catch_up_all(&self.adam_net, self.cfg.l2_orig);
        self.e_cross
            .catch_up_all(&self.adam_cross, self.cfg.l2_cross);
    }

    /// Updates only the architecture parameters α (bi-level search uses
    /// this on validation batches). Discards pending embedding gradients.
    pub fn step_arch(&mut self) {
        self.adam_arch.begin_step();
        let mut adam = self.adam_arch;
        adam.step(&mut self.arch, 0.0);
        self.adam_arch = adam;
    }

    /// Zeroes only the architecture gradient (bi-level: after a Θ step the
    /// training batch's α gradient must not leak into the next α step).
    pub fn zero_arch_grad(&mut self) {
        self.arch.grad.fill_zero();
    }

    /// Zeroes network-weight and embedding gradients (bi-level: after an α
    /// step the validation batch's Θ gradients must be dropped).
    pub fn zero_weight_grads(&mut self) {
        self.mlp.zero_grads();
        if let Some(fw) = self.fact_weights.as_mut() {
            fw.grad.fill_zero();
        }
        self.e_orig.clear_grads();
        self.e_cross.clear_grads();
    }

    /// Discards all pending gradients without applying them.
    pub fn discard_grads(&mut self) {
        self.mlp.zero_grads();
        self.arch.grad.fill_zero();
        if let Some(fw) = self.fact_weights.as_mut() {
            fw.grad.fill_zero();
        }
        self.e_orig.clear_grads();
        self.e_cross.clear_grads();
    }

    /// One full training step (forward, loss, backward, joint update).
    /// Returns the mean batch loss.
    pub fn train_batch(&mut self, batch: &Batch, tau: f32) -> f32 {
        self.forward_step(batch, tau, true);
        let mut grad = std::mem::replace(&mut self.scr.grad_logits, Matrix::zeros(0, 0));
        let loss_value = bce_with_logits_into(&self.scr.logits, &batch.labels, &mut grad);
        self.backward(batch, &grad);
        self.scr.grad_logits = grad;
        self.step();
        loss_value
    }

    /// Predicted probabilities with the current (soft) architecture.
    pub fn predict(&mut self, batch: &Batch, tau: f32) -> Vec<f32> {
        self.forward_step(batch, tau, false);
        loss::probabilities(&self.scr.logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_data::{BatchIter, Profile};
    use optinter_nn::bce_with_logits;

    fn tiny_setup() -> (Supernet, optinter_data::DatasetBundle) {
        let bundle = Profile::Tiny.bundle_with_rows(1200, 7);
        let dims = DataDims::of(&bundle.data);
        let cfg = OptInterConfig {
            seed: 3,
            ..OptInterConfig::test_small()
        };
        (Supernet::new(cfg, dims), bundle)
    }

    #[test]
    fn forward_shapes() {
        let (mut net, bundle) = tiny_setup();
        let batch = BatchIter::new(&bundle.data, 0..64, 64, None)
            .next()
            .unwrap();
        let logits = net.forward(&batch, 1.0, true);
        assert_eq!(logits.shape(), (64, 1));
    }

    #[test]
    fn initial_architecture_is_uniformish() {
        let (net, _) = tiny_setup();
        for probs in net.arch_probs() {
            for p in probs {
                assert!((p - 1.0 / 3.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn train_reduces_loss() {
        let (mut net, bundle) = tiny_setup();
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..3 {
            for batch in BatchIter::new(&bundle.data, 0..800, 128, Some(epoch)) {
                last = net.train_batch(&batch, 1.0);
                first.get_or_insert(last);
            }
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {first:?} -> {last}"
        );
    }

    #[test]
    fn architecture_moves_from_uniform_during_training() {
        let (mut net, bundle) = tiny_setup();
        for epoch in 0..4 {
            for batch in BatchIter::new(&bundle.data, 0..800, 128, Some(epoch)) {
                net.train_batch(&batch, 0.5);
            }
        }
        let probs = net.arch_probs();
        let moved = probs
            .iter()
            .any(|row| row.iter().any(|&p| (p - 1.0 / 3.0).abs() > 0.05));
        assert!(moved, "architecture logits never moved: {probs:?}");
    }

    #[test]
    fn extract_architecture_matches_argmax() {
        let (mut net, _) = tiny_setup();
        // Force a known pattern.
        for p in 0..net.dims.num_pairs {
            let target = p % 3;
            for c in 0..3 {
                net.arch
                    .value
                    .set(p, c, if c == target { 5.0 } else { -5.0 });
            }
        }
        let arch = net.extract_architecture();
        for p in 0..arch.num_pairs() {
            assert_eq!(arch.method(p).index(), p % 3);
        }
    }

    #[test]
    fn arch_gradient_matches_finite_differences() {
        arch_gradcheck_for(FactFn::Hadamard, 1);
    }

    #[test]
    fn arch_gradient_matches_finite_differences_pointwise_add() {
        arch_gradcheck_for(FactFn::PointwiseAdd, 1);
    }

    #[test]
    fn arch_gradient_matches_finite_differences_generalized() {
        arch_gradcheck_for(FactFn::Generalized, 1);
    }

    #[test]
    fn arch_gradient_matches_finite_differences_pooled() {
        // The same check through the 2-thread data-parallel path: the
        // pooled forward/backward must produce the same (correct) α
        // gradients as the serial one.
        arch_gradcheck_for(FactFn::Generalized, 2);
    }

    /// End-to-end validation of the Gumbel-softmax backward: with the
    /// noiseless (deterministic) relaxation, the analytic d loss / d α must
    /// match central finite differences through the whole network.
    fn arch_gradcheck_for(fact_fn: FactFn, num_threads: usize) {
        let bundle = Profile::Tiny.bundle_with_rows(1200, 7);
        let dims = DataDims::of(&bundle.data);
        let cfg = OptInterConfig {
            seed: 3,
            fact_fn,
            num_threads,
            ..OptInterConfig::test_small()
        };
        let mut net = Supernet::new(cfg, dims);
        let batch = BatchIter::new(&bundle.data, 0..32, 32, None)
            .next()
            .unwrap();
        let tau = 0.7;
        // Move logits off the uniform point so gradients are non-trivial.
        for p in 0..net.dims.num_pairs {
            for c in 0..3 {
                net.arch
                    .value
                    .set(p, c, ((p * 3 + c) as f32 * 0.37).sin() * 0.5);
            }
        }
        let logits = net.forward(&batch, tau, false);
        let (_, grad) = bce_with_logits(&logits, &batch.labels);
        net.backward(&batch, &grad);
        let analytic = net.arch.grad.clone();
        net.discard_grads();
        let entries: Vec<(usize, usize)> = (0..net.dims.num_pairs.min(4))
            .flat_map(|p| (0..3).map(move |c| (p, c)))
            .collect();
        let cell = std::cell::RefCell::new(&mut net);
        let report = optinter_nn::gradcheck::check_grad_entries(
            &entries,
            1e-2,
            |p, c| analytic.get(p, c),
            |p, c| cell.borrow().arch.value.get(p, c),
            |p, c, v| cell.borrow_mut().arch.value.set(p, c, v),
            || {
                let mut n = cell.borrow_mut();
                let logits = n.forward(&batch, tau, false);
                bce_with_logits(&logits, &batch.labels).0
            },
        );
        assert!(
            report.max_abs_err < 5e-3,
            "{} arch gradient check failed: {report:?}",
            fact_fn.tag()
        );
    }

    #[test]
    fn predict_returns_probabilities() {
        let (mut net, bundle) = tiny_setup();
        let batch = BatchIter::new(&bundle.data, 0..32, 32, None)
            .next()
            .unwrap();
        let probs = net.predict(&batch, 0.5);
        assert_eq!(probs.len(), 32);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn discard_grads_prevents_update_effect() {
        let (mut net, bundle) = tiny_setup();
        let batch = BatchIter::new(&bundle.data, 0..64, 64, None)
            .next()
            .unwrap();
        let logits = net.forward(&batch, 1.0, true);
        let (_, grad) = bce_with_logits(&logits, &batch.labels);
        net.backward(&batch, &grad);
        net.discard_grads();
        let before = net.arch.value.clone();
        net.step_arch();
        // With zero gradients Adam still divides 0/sqrt(0)+eps = 0: no move.
        assert_eq!(net.arch.value, before);
    }
}
