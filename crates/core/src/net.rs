//! The fixed-architecture OptInter network (re-train stage, Algorithm 2).
//!
//! Given a discrete [`Architecture`], each pair contributes exactly one
//! embedding to the MLP input: its cross-product embedding (memorize), its
//! Hadamard product (factorize), or nothing (naïve). Only memorized pairs
//! get rows in the cross-product table, so the parameter count reflects the
//! selection — this is the source of OptInter's 18%–91% parameter savings
//! over OptInter-M (paper Table V).
//!
//! `OptInterNet` with a uniform architecture realises the fixed baselines:
//! all-memorize = **OptInter-M**, all-factorize = **OptInter-F**, and
//! all-naïve is an FNN-style model.

use crate::arch::{Architecture, Method};
use crate::config::{FactFn, OptInterConfig};
use optinter_data::{Batch, EncodedDataset, PairIndexer};
use optinter_nn::{
    bce_with_logits_into, loss, Adam, DenseOptimizer, EmbedStore, Layer, Mlp, MlpConfig, Parameter,
    Workspace,
};
use optinter_tensor::{Matrix, Pool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The dataset dimensions a model needs to size its tables.
#[derive(Debug, Clone)]
pub struct DataDims {
    /// Number of original fields `M`.
    pub num_fields: usize,
    /// Number of pairs `M(M-1)/2`.
    pub num_pairs: usize,
    /// Global original vocabulary size.
    pub orig_vocab: u32,
    /// Global cross vocabulary size.
    pub cross_vocab: u32,
    /// Global offset of each pair in the cross id space.
    pub pair_offsets: Vec<u32>,
    /// Per-pair cross vocabulary sizes (OOV included).
    pub pair_vocab_sizes: Vec<u32>,
}

impl DataDims {
    /// Extracts dimensions from an encoded dataset.
    pub fn of(data: &EncodedDataset) -> Self {
        Self {
            num_fields: data.num_fields,
            num_pairs: data.num_pairs,
            orig_vocab: data.orig_vocab,
            cross_vocab: data.cross_vocab,
            pair_offsets: data.pair_offsets.clone(),
            pair_vocab_sizes: data.pair_vocab_sizes.clone(),
        }
    }

    /// Pair indexer for these dimensions.
    pub fn pairs(&self) -> PairIndexer {
        PairIndexer::new(self.num_fields)
    }
}

/// Where a pair's embedding lands in the MLP input.
#[derive(Debug, Clone, Copy)]
struct PairSlot {
    method: Method,
    /// Column offset in the MLP input (meaningless for naïve pairs).
    input_offset: usize,
    /// For memorized pairs: slot index among memorized pairs.
    mem_slot: usize,
    /// For memorized pairs: row offset in the compact cross table.
    compact_offset: u32,
}

/// Fixed-architecture OptInter model.
pub struct OptInterNet {
    cfg: OptInterConfig,
    dims: DataDims,
    architecture: Architecture,
    slots: Vec<PairSlot>,
    num_memorized: usize,
    e_orig: EmbedStore,
    /// Compact cross table: rows only for memorized pairs.
    e_cross: EmbedStore,
    /// Per-pair weights for the generalized product (one row per pair,
    /// only rows of factorized pairs are used). `None` for the other
    /// factorization functions.
    fact_weights: Option<Parameter>,
    mlp: Mlp,
    input_dim: usize,
    adam_net: Adam,
    adam_cross: Adam,
    pool: Pool,
    scr: NetScratch,
    ws: Workspace,
}

/// Persistent per-step buffers. Each forward overwrites them in full, so a
/// steady-state train step reuses their capacity instead of reallocating;
/// `backward` reads the activations the matching forward left behind.
struct NetScratch {
    mem_ids: Vec<u32>,
    eo: Matrix,
    em: Matrix,
    input: Matrix,
    logits: Matrix,
    grad_logits: Matrix,
}

impl NetScratch {
    fn new() -> Self {
        Self {
            mem_ids: Vec::new(),
            eo: Matrix::zeros(0, 0),
            em: Matrix::zeros(0, 0),
            input: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            grad_logits: Matrix::zeros(0, 0),
        }
    }
}

impl OptInterNet {
    /// Builds a freshly-initialised network for the given architecture.
    pub fn new(cfg: OptInterConfig, dims: DataDims, architecture: Architecture) -> Self {
        assert_eq!(
            architecture.num_pairs(),
            dims.num_pairs,
            "architecture does not match dataset pair count"
        );
        let s1 = cfg.orig_dim;
        let s2 = cfg.cross_dim;
        let mut slots = Vec::with_capacity(dims.num_pairs);
        let mut input_offset = dims.num_fields * s1;
        let mut compact_offset = 0u32;
        let mut mem_slot = 0usize;
        for p in 0..dims.num_pairs {
            let method = architecture.method(p);
            let slot = PairSlot {
                method,
                input_offset,
                mem_slot,
                compact_offset,
            };
            match method {
                Method::Memorize => {
                    input_offset += s2;
                    compact_offset += dims.pair_vocab_sizes[p];
                    mem_slot += 1;
                }
                Method::Factorize => {
                    input_offset += s1;
                }
                Method::Naive => {}
            }
            slots.push(slot);
        }
        let num_memorized = mem_slot;
        let input_dim = input_offset;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF17ED);
        // Dense stores draw exactly what `EmbeddingTable::new` always drew
        // here, so `StoreKind::Dense` configs keep historical trajectories.
        let mut e_orig = EmbedStore::new(
            cfg.orig_store,
            &mut rng,
            dims.orig_vocab as usize,
            s1,
            cfg.seed ^ 0x0517_0E0A,
        );
        let mut e_cross = EmbedStore::new(
            cfg.cross_store,
            &mut rng,
            compact_offset.max(1) as usize,
            s2,
            cfg.seed ^ 0x0517_0ECA,
        );
        e_orig.set_optimizer_mode(cfg.embed_opt);
        e_cross.set_optimizer_mode(cfg.embed_opt);
        let mut mlp = Mlp::new(
            &mut rng,
            &MlpConfig {
                input_dim,
                hidden: cfg.hidden.clone(),
                output_dim: 1,
                layer_norm: cfg.layer_norm,
                ln_eps: 1e-5,
            },
        );
        let pool = Pool::new(cfg.num_threads);
        mlp.set_pool(&pool);
        let adam_net = Adam::with_lr_eps(cfg.lr, cfg.adam_eps);
        let adam_cross = Adam::with_lr_eps(cfg.lr_cross, cfg.adam_eps);
        // Generalized-product weights start at 1: it reduces to Hadamard.
        let fact_weights = (cfg.fact_fn == FactFn::Generalized)
            .then(|| Parameter::new(Matrix::filled(dims.num_pairs, s1, 1.0)));
        Self {
            cfg,
            dims,
            architecture,
            slots,
            num_memorized,
            e_orig,
            e_cross,
            fact_weights,
            mlp,
            input_dim,
            adam_net,
            adam_cross,
            pool,
            scr: NetScratch::new(),
            ws: Workspace::new(),
        }
    }

    /// The fixed architecture.
    pub fn architecture(&self) -> &Architecture {
        &self.architecture
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &OptInterConfig {
        &self.cfg
    }

    /// The original-feature and cross-product embedding stores (the
    /// serving freezer reads their storage kind and hash seed to record
    /// matching store descriptors in the artifact).
    pub fn embedding_stores(&self) -> (&EmbedStore, &EmbedStore) {
        (&self.e_orig, &self.e_cross)
    }

    /// MLP input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of memorized pairs.
    pub fn num_memorized(&self) -> usize {
        self.num_memorized
    }

    /// Total trainable parameters. The compact cross table only holds rows
    /// for memorized pairs, so parameter counts track the architecture.
    pub fn num_params(&mut self) -> usize {
        let cross = if self.num_memorized == 0 {
            0
        } else {
            self.e_cross.num_params()
        };
        // Generalized-product weights: only factorized pairs' rows are live.
        let fact = if self.fact_weights.is_some() {
            let factorized = self.architecture.counts()[Method::Factorize.index()];
            factorized * self.cfg.orig_dim
        } else {
            0
        };
        self.e_orig.num_params() + cross + fact + self.mlp.num_params()
    }

    /// Translates a batch's global cross ids into compact table ids for the
    /// memorized pairs only, into `out` (cleared first): `[B * num_memorized]`.
    fn gather_mem_ids_into(&self, batch: &Batch, out: &mut Vec<u32>) {
        out.clear();
        if self.num_memorized == 0 {
            return;
        }
        assert!(
            !batch.cross.is_empty(),
            "architecture memorizes pairs but the batch has no cross features"
        );
        let p_count = self.dims.num_pairs;
        let b = batch.len();
        out.reserve(b * self.num_memorized);
        for r in 0..b {
            let row = &batch.cross[r * p_count..(r + 1) * p_count];
            for (p, slot) in self.slots.iter().enumerate() {
                if slot.method == Method::Memorize {
                    let local = row[p] - self.dims.pair_offsets[p];
                    out.push(slot.compact_offset + local);
                }
            }
        }
    }

    /// Forward pass producing `[B, 1]` logits.
    pub fn forward(&mut self, batch: &Batch) -> Matrix {
        self.forward_step(batch);
        self.scr.logits.clone()
    }

    /// Forward pass into the persistent scratch buffers; `self.scr.logits`
    /// holds the `[B, 1]` logits afterwards. Allocation-free at steady state.
    fn forward_step(&mut self, batch: &Batch) {
        let m = self.dims.num_fields;
        let s1 = self.cfg.orig_dim;
        let s2 = self.cfg.cross_dim;
        assert_eq!(batch.num_fields, m, "OptInterNet: field count mismatch");
        let b = batch.len();
        self.e_orig
            .lookup_fields_pooled_into(&batch.fields, m, &self.pool, &mut self.scr.eo);
        let mut mem_ids = std::mem::take(&mut self.scr.mem_ids);
        self.gather_mem_ids_into(batch, &mut mem_ids);
        self.scr.mem_ids = mem_ids;
        if self.num_memorized > 0 {
            self.e_cross.lookup_fields_pooled_into(
                &self.scr.mem_ids,
                self.num_memorized,
                &self.pool,
                &mut self.scr.em,
            );
        } else {
            self.scr.em.reset(b, 0);
        }
        // Assemble the MLP input, sharded over batch rows. Every element is
        // written exactly once by the job owning its row, so the result is
        // bit-identical to serial assembly for any thread count.
        self.scr.input.reset(b, self.input_dim);
        {
            let input_dim = self.input_dim;
            let slots = &self.slots;
            let pairs = self.dims.pairs();
            let fact_fn = self.cfg.fact_fn;
            let fw_val = self.fact_weights.as_ref().map(|fw| &fw.value);
            let eo_ref = &self.scr.eo;
            let em_ref = &self.scr.em;
            self.pool
                .for_rows(self.scr.input.as_mut_slice(), input_dim, |r, dst_row| {
                    let eo_row = eo_ref.row(r);
                    dst_row[..m * s1].copy_from_slice(eo_row);
                    for (p, slot) in slots.iter().enumerate() {
                        match slot.method {
                            Method::Memorize => {
                                let src =
                                    &em_ref.row(r)[slot.mem_slot * s2..(slot.mem_slot + 1) * s2];
                                dst_row[slot.input_offset..slot.input_offset + s2]
                                    .copy_from_slice(src);
                            }
                            Method::Factorize => {
                                let (i, j) = pairs.pair_at(p);
                                let (ei_start, ej_start) = (i * s1, j * s1);
                                match fact_fn {
                                    FactFn::Hadamard => {
                                        for c in 0..s1 {
                                            dst_row[slot.input_offset + c] =
                                                eo_row[ei_start + c] * eo_row[ej_start + c];
                                        }
                                    }
                                    FactFn::PointwiseAdd => {
                                        for c in 0..s1 {
                                            dst_row[slot.input_offset + c] =
                                                eo_row[ei_start + c] + eo_row[ej_start + c];
                                        }
                                    }
                                    FactFn::Generalized => {
                                        let Some(fw) = fw_val else {
                                            unreachable!("generalized slot without fact_weights")
                                        };
                                        let w = fw.row(p);
                                        for c in 0..s1 {
                                            dst_row[slot.input_offset + c] =
                                                w[c] * eo_row[ei_start + c] * eo_row[ej_start + c];
                                        }
                                    }
                                }
                            }
                            Method::Naive => {}
                        }
                    }
                });
        }
        let (input, logits) = (&self.scr.input, &mut self.scr.logits);
        self.mlp.forward_into(input, logits);
    }

    /// Backward pass from logit gradients. `batch` must be the one the
    /// matching [`forward`](Self::forward) saw — the persistent scratch
    /// holds that forward's activations but not the batch itself.
    pub fn backward(&mut self, batch: &Batch, grad_logits: &Matrix) {
        let m = self.dims.num_fields;
        let s1 = self.cfg.orig_dim;
        let s2 = self.cfg.cross_dim;
        let b = grad_logits.rows();
        assert_eq!(
            self.scr.input.rows(),
            b,
            "OptInterNet::backward before forward"
        );
        let mut dinput = self.ws.take(b, self.input_dim);
        {
            let input = &self.scr.input;
            self.mlp.backward_into(input, grad_logits, &mut dinput);
        }
        let mut d_eo = self.ws.take(0, 0);
        dinput.block_into(0, m * s1, &mut d_eo);
        let mut d_em = self.ws.take(b, self.num_memorized * s2);
        let fact_fn = self.cfg.fact_fn;
        let pairs = self.dims.pairs();
        let slots = &self.slots;
        let eo_ref = &self.scr.eo;
        let dinput_ref = &dinput;

        // Pass A — parallel over pairs (generalized product only): each
        // factorized pair owns its weight-gradient row, accumulated over
        // ascending batch rows exactly as the fused serial loop does.
        if let Some(fw) = self.fact_weights.as_mut() {
            self.pool.for_rows(fw.grad.as_mut_slice(), s1, |p, dw| {
                let slot = &slots[p];
                if slot.method != Method::Factorize {
                    return;
                }
                let (i, j) = pairs.pair_at(p);
                for r in 0..b {
                    let eo_row = eo_ref.row(r);
                    let (ei, ej) = (&eo_row[i * s1..(i + 1) * s1], &eo_row[j * s1..(j + 1) * s1]);
                    let g_row = dinput_ref.row(r);
                    for c in 0..s1 {
                        let g = g_row[slot.input_offset + c];
                        dw[c] += g * ei[c] * ej[c];
                    }
                }
            });
        }

        // Pass B — parallel over batch rows: d e^m copies and the d e^o
        // accumulation. Iterating pairs in ascending order inside each row
        // job reproduces the fused loop's per-element accumulation order,
        // so the gradients are bit-identical for any thread count.
        {
            let eo_width = m * s1;
            let em_width = self.num_memorized * s2;
            let fw_val = self.fact_weights.as_ref().map(|fw| &fw.value);
            self.pool.for_rows2(
                d_eo.as_mut_slice(),
                eo_width,
                d_em.as_mut_slice(),
                em_width,
                |r, d_row, dem_full| {
                    let eo_row = eo_ref.row(r);
                    let g_row = dinput_ref.row(r);
                    for (p, slot) in slots.iter().enumerate() {
                        match slot.method {
                            Method::Memorize => {
                                let src = &g_row[slot.input_offset..slot.input_offset + s2];
                                dem_full[slot.mem_slot * s2..(slot.mem_slot + 1) * s2]
                                    .copy_from_slice(src);
                            }
                            Method::Factorize => {
                                let (i, j) = pairs.pair_at(p);
                                let (ei, ej) =
                                    (&eo_row[i * s1..(i + 1) * s1], &eo_row[j * s1..(j + 1) * s1]);
                                match fact_fn {
                                    FactFn::Hadamard => {
                                        for c in 0..s1 {
                                            let g = g_row[slot.input_offset + c];
                                            d_row[i * s1 + c] += g * ej[c];
                                            d_row[j * s1 + c] += g * ei[c];
                                        }
                                    }
                                    FactFn::PointwiseAdd => {
                                        for c in 0..s1 {
                                            let g = g_row[slot.input_offset + c];
                                            d_row[i * s1 + c] += g;
                                            d_row[j * s1 + c] += g;
                                        }
                                    }
                                    FactFn::Generalized => {
                                        let Some(fw) = fw_val else {
                                            unreachable!("generalized slot without fact_weights")
                                        };
                                        let w = fw.row(p);
                                        for c in 0..s1 {
                                            let g = g_row[slot.input_offset + c];
                                            d_row[i * s1 + c] += g * w[c] * ej[c];
                                            d_row[j * s1 + c] += g * w[c] * ei[c];
                                        }
                                    }
                                }
                            }
                            Method::Naive => {}
                        }
                    }
                },
            );
        }
        self.e_orig
            .accumulate_grad_fields_pooled(&batch.fields, m, &d_eo, &self.pool);
        if self.num_memorized > 0 {
            self.e_cross.accumulate_grad_fields_pooled(
                &self.scr.mem_ids,
                self.num_memorized,
                &d_em,
                &self.pool,
            );
        }
        self.ws.recycle(dinput);
        self.ws.recycle(d_eo);
        self.ws.recycle(d_em);
    }

    /// Applies one Adam step to all weights.
    pub fn step(&mut self) {
        self.adam_net.begin_step();
        let mut adam = self.adam_net;
        self.mlp.visit_params(&mut |p| adam.step(p, 0.0));
        if let Some(fw) = self.fact_weights.as_mut() {
            adam.step(fw, 0.0);
        }
        self.adam_net = adam;
        self.e_orig.apply_adam(&self.adam_net, self.cfg.l2_orig);
        if self.num_memorized > 0 {
            self.adam_cross.begin_step();
            self.e_cross.apply_adam(&self.adam_cross, self.cfg.l2_cross);
        }
    }

    /// Replays any optimizer updates the `LazyCatchUp` embedding mode
    /// deferred, bringing every row up to the current timestep. Call before
    /// exporting or freezing weights; a no-op for the other modes.
    pub fn catch_up_embeddings(&mut self) {
        self.e_orig.catch_up_all(&self.adam_net, self.cfg.l2_orig);
        if self.num_memorized > 0 {
            self.e_cross
                .catch_up_all(&self.adam_cross, self.cfg.l2_cross);
        }
    }

    /// Exports every trainable weight as `(name, matrix)` pairs in a
    /// stable order (used by [`crate::persist`]). Dense stores export one
    /// tensor (`e_orig` / `e_cross`); hashed stores export their two
    /// sub-tables (`e_orig.t1` / `e_orig.t2`, etc.). Lazy optimizer tails
    /// are flushed first so the export reflects the full trajectory.
    pub fn export_weights(&mut self) -> Vec<(String, Matrix)> {
        self.catch_up_embeddings();
        let mut out = Vec::new();
        self.e_orig.push_weights("e_orig", &mut out);
        self.e_cross.push_weights("e_cross", &mut out);
        if let Some(fw) = self.fact_weights.as_ref() {
            out.push(("fact_weights".to_string(), fw.value.clone()));
        }
        let mut idx = 0usize;
        self.mlp.visit_params(&mut |p| {
            out.push((format!("mlp.{idx}"), p.value.clone()));
            idx += 1;
        });
        out
    }

    /// Imports weights previously produced by
    /// [`export_weights`](Self::export_weights). Optimizer state is reset.
    ///
    /// # Errors
    /// Returns an error when a name is missing or a shape mismatches.
    pub fn import_weights(&mut self, weights: &[(String, Matrix)]) -> Result<(), String> {
        use std::collections::HashMap;
        let map: HashMap<&str, &Matrix> = weights.iter().map(|(n, m)| (n.as_str(), m)).collect();
        let fetch = |name: &str, expect: (usize, usize)| -> Result<Matrix, String> {
            let m = map
                .get(name)
                .ok_or_else(|| format!("missing weight `{name}`"))?;
            if m.shape() != expect {
                return Err(format!(
                    "weight `{name}` shape {:?} does not match expected {:?}",
                    m.shape(),
                    expect
                ));
            }
            Ok((*m).clone())
        };
        self.e_orig
            .import_weights("e_orig", &mut |name, shape| fetch(name, shape))?;
        self.e_cross
            .import_weights("e_cross", &mut |name, shape| fetch(name, shape))?;
        if let Some(fw) = self.fact_weights.as_mut() {
            fw.value = fetch("fact_weights", fw.value.shape())?;
            fw.reset_opt_state();
        }
        let mut idx = 0usize;
        let mut err: Option<String> = None;
        self.mlp.visit_params(&mut |p| {
            if err.is_some() {
                return;
            }
            match fetch(&format!("mlp.{idx}"), p.value.shape()) {
                Ok(m) => {
                    p.value = m;
                    p.grad.fill_zero();
                    p.reset_opt_state();
                }
                Err(e) => err = Some(e),
            }
            idx += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        // Poison the scratch so a stale backward cannot pair old activations
        // with the imported weights.
        self.scr.input.reset(0, 0);
        Ok(())
    }

    /// One training step; returns the mean batch loss.
    pub fn train_batch(&mut self, batch: &Batch) -> f32 {
        self.forward_step(batch);
        let mut grad = std::mem::replace(&mut self.scr.grad_logits, Matrix::zeros(0, 0));
        let loss_value = bce_with_logits_into(&self.scr.logits, &batch.labels, &mut grad);
        self.backward(batch, &grad);
        self.scr.grad_logits = grad;
        self.step();
        loss_value
    }

    /// Predicted probabilities.
    pub fn predict(&mut self, batch: &Batch) -> Vec<f32> {
        self.forward_step(batch);
        loss::probabilities(&self.scr.logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_data::{BatchIter, Profile};

    fn setup(
        arch_fn: impl Fn(usize) -> Architecture,
    ) -> (OptInterNet, optinter_data::DatasetBundle) {
        let bundle = Profile::Tiny.bundle_with_rows(1500, 11);
        let dims = DataDims::of(&bundle.data);
        let arch = arch_fn(dims.num_pairs);
        let cfg = OptInterConfig {
            seed: 5,
            ..OptInterConfig::test_small()
        };
        (OptInterNet::new(cfg, dims, arch), bundle)
    }

    #[test]
    fn all_naive_has_smallest_input() {
        let (naive, _) = setup(|p| Architecture::uniform(Method::Naive, p));
        let (fac, _) = setup(|p| Architecture::uniform(Method::Factorize, p));
        let (mem, _) = setup(|p| Architecture::uniform(Method::Memorize, p));
        assert!(naive.input_dim() < fac.input_dim());
        assert!(naive.input_dim() < mem.input_dim());
    }

    #[test]
    fn param_count_tracks_architecture() {
        let (mut naive, _) = setup(|p| Architecture::uniform(Method::Naive, p));
        let (mut fac, _) = setup(|p| Architecture::uniform(Method::Factorize, p));
        let (mut mem, _) = setup(|p| Architecture::uniform(Method::Memorize, p));
        let n_naive = naive.num_params();
        let n_fac = fac.num_params();
        let n_mem = mem.num_params();
        assert!(
            n_mem > n_fac,
            "memorize {n_mem} must exceed factorize {n_fac}"
        );
        assert!(
            n_fac > n_naive,
            "factorize {n_fac} must exceed naive {n_naive}"
        );
    }

    #[test]
    fn mixed_architecture_trains() {
        let (mut net, bundle) = setup(|p| {
            let mut methods = Vec::with_capacity(p);
            for i in 0..p {
                methods.push(Method::from_index(i % 3));
            }
            Architecture::new(methods)
        });
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..3 {
            for batch in BatchIter::new(&bundle.data, 0..1000, 128, Some(epoch)) {
                last = net.train_batch(&batch);
                first.get_or_insert(last);
            }
        }
        assert!(last < first.unwrap(), "loss did not decrease");
    }

    #[test]
    fn all_naive_ignores_cross_features() {
        let (mut net, bundle) = setup(|p| Architecture::uniform(Method::Naive, p));
        let batch = BatchIter::new(&bundle.data, 0..16, 16, None)
            .next()
            .unwrap();
        let with_cross = net.predict(&batch);
        let mut no_cross = batch.clone();
        no_cross.cross.clear();
        let without = net.predict(&no_cross);
        assert_eq!(with_cross, without);
    }

    #[test]
    fn memorized_ids_stay_in_compact_range() {
        let (net, bundle) = setup(|p| Architecture::uniform(Method::Memorize, p));
        let batch = BatchIter::new(&bundle.data, 0..64, 64, None)
            .next()
            .unwrap();
        let mut ids = Vec::new();
        net.gather_mem_ids_into(&batch, &mut ids);
        assert_eq!(ids.len(), 64 * net.num_memorized());
        let max = net.e_cross.key_space() as u32;
        assert!(ids.iter().all(|&id| id < max));
    }

    #[test]
    fn all_fact_fns_train_and_predict() {
        use crate::config::FactFn;
        let bundle = Profile::Tiny.bundle_with_rows(1500, 11);
        let dims = DataDims::of(&bundle.data);
        let mut aucs = Vec::new();
        for fact_fn in [FactFn::Hadamard, FactFn::PointwiseAdd, FactFn::Generalized] {
            let cfg = OptInterConfig {
                seed: 5,
                fact_fn,
                ..OptInterConfig::test_small()
            };
            let arch = Architecture::uniform(Method::Factorize, dims.num_pairs);
            let mut net = OptInterNet::new(cfg, dims.clone(), arch);
            for batch in BatchIter::new(&bundle.data, 0..1000, 128, Some(1)) {
                let loss = net.train_batch(&batch);
                assert!(loss.is_finite(), "{}: loss {loss}", fact_fn.tag());
            }
            let batch = BatchIter::new(&bundle.data, 1000..1400, 400, None)
                .next()
                .unwrap();
            let probs = net.predict(&batch);
            assert!(probs.iter().all(|p| p.is_finite()), "{}", fact_fn.tag());
            aucs.push(optinter_metrics::auc(&probs, &batch.labels));
        }
        for (i, auc) in aucs.iter().enumerate() {
            assert!(*auc > 0.52, "fact fn {i} AUC {auc} at chance");
        }
    }

    #[test]
    fn generalized_product_initialises_to_hadamard() {
        use crate::config::FactFn;
        let bundle = Profile::Tiny.bundle_with_rows(300, 12);
        let dims = DataDims::of(&bundle.data);
        let arch = Architecture::uniform(Method::Factorize, dims.num_pairs);
        let cfg_h = OptInterConfig {
            seed: 9,
            fact_fn: FactFn::Hadamard,
            ..OptInterConfig::test_small()
        };
        let cfg_g = OptInterConfig {
            seed: 9,
            fact_fn: FactFn::Generalized,
            ..OptInterConfig::test_small()
        };
        let mut h = OptInterNet::new(cfg_h, dims.clone(), arch.clone());
        let mut g = OptInterNet::new(cfg_g, dims, arch);
        let batch = BatchIter::new(&bundle.data, 0..32, 32, None)
            .next()
            .unwrap();
        // With weights at 1 the generalized product equals the Hadamard one.
        assert_eq!(h.predict(&batch), g.predict(&batch));
        // But the generalized variant has more trainable parameters.
        assert!(g.num_params() > h.num_params());
    }

    #[test]
    fn predictions_are_probabilities() {
        let (mut net, bundle) = setup(|p| Architecture::uniform(Method::Factorize, p));
        let batch = BatchIter::new(&bundle.data, 0..32, 32, None)
            .next()
            .unwrap();
        let probs = net.predict(&batch);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
