//! Model persistence: architectures as compact strings, trained network
//! weights as a small self-describing binary format.
//!
//! A production CTR system re-trains offline and serves the frozen model;
//! this module provides that handoff. Architectures serialize to a string
//! of `M`/`F`/`N` tags (one per pair, flat order); weights serialize to a
//! length-prefixed binary file with a magic header.

use crate::arch::{Architecture, Method};
use crate::net::OptInterNet;
use optinter_tensor::Matrix;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic header of the weight file format.
const MAGIC: &[u8; 8] = b"OPTINTR1";

/// Serializes an architecture as one tag character per pair, e.g. `"MMFN"`.
pub fn architecture_to_string(arch: &Architecture) -> String {
    arch.methods().iter().map(|m| m.tag()).collect()
}

/// Parses an architecture from its string form.
///
/// # Errors
/// Returns an error for empty input or unknown tag characters.
pub fn architecture_from_string(s: &str) -> Result<Architecture, String> {
    if s.is_empty() {
        return Err("empty architecture string".to_string());
    }
    let methods = s
        .chars()
        .map(|c| match c {
            'M' => Ok(Method::Memorize),
            'F' => Ok(Method::Factorize),
            'N' => Ok(Method::Naive),
            other => Err(format!("unknown method tag `{other}`")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Architecture::new(methods))
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes named matrices to a binary file.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_weights(path: &Path, weights: &[(String, Matrix)]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, weights.len() as u32)?;
    for (name, m) in weights {
        let name_bytes = name.as_bytes();
        write_u32(&mut w, name_bytes.len() as u32)?;
        w.write_all(name_bytes)?;
        write_u32(&mut w, m.rows() as u32)?;
        write_u32(&mut w, m.cols() as u32)?;
        for &v in m.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads named matrices from a binary file written by [`write_weights`].
///
/// # Errors
/// Fails on I/O errors or a malformed header.
pub fn read_weights(path: &Path) -> io::Result<Vec<(String, Matrix)>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an OptInter weight file (bad magic)",
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "weight name too long",
            ));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        let mut data = vec![0.0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in data.iter_mut() {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        out.push((name, Matrix::from_vec(rows, cols, data)));
    }
    Ok(out)
}

/// Saves a trained network's weights and architecture:
/// `<path>` holds the weights, `<path>.arch` the architecture string.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_net(net: &mut OptInterNet, path: &Path) -> io::Result<()> {
    write_weights(path, &net.export_weights())?;
    std::fs::write(
        path.with_extension("arch"),
        architecture_to_string(net.architecture()),
    )
}

/// Loads weights saved by [`save_net`] into a freshly-built network of the
/// same configuration and architecture.
///
/// # Errors
/// Fails on I/O errors or shape mismatches.
pub fn load_net_weights(net: &mut OptInterNet, path: &Path) -> io::Result<()> {
    let weights = read_weights(path)?;
    net.import_weights(&weights)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptInterConfig;
    use crate::net::DataDims;
    use crate::trainer::train_fixed;
    use optinter_data::{BatchIter, Profile};

    #[test]
    fn architecture_string_roundtrip() {
        let arch = Architecture::new(vec![
            Method::Memorize,
            Method::Factorize,
            Method::Naive,
            Method::Memorize,
        ]);
        let s = architecture_to_string(&arch);
        assert_eq!(s, "MFNM");
        assert_eq!(architecture_from_string(&s).expect("parse"), arch);
    }

    #[test]
    fn architecture_string_rejects_garbage() {
        assert!(architecture_from_string("").is_err());
        assert!(architecture_from_string("MFX").is_err());
    }

    #[test]
    fn weight_file_roundtrip() {
        let dir = std::env::temp_dir().join("optinter-persist-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("weights.bin");
        let weights = vec![
            (
                "a".to_string(),
                Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
            ),
            ("b.long/name".to_string(), Matrix::filled(1, 3, -0.5)),
        ];
        write_weights(&path, &weights).expect("write");
        let back = read_weights(&path).expect("read");
        assert_eq!(back, weights);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join("optinter-persist-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"NOTMAGIC0000").expect("write");
        assert!(read_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trained_net_roundtrips_predictions() {
        let bundle = Profile::Tiny.bundle_with_rows(1200, 41);
        let cfg = OptInterConfig {
            seed: 4,
            retrain_epochs: 1,
            ..OptInterConfig::test_small()
        };
        let arch = Architecture::uniform(Method::Memorize, bundle.data.num_pairs);
        let (mut net, _) = train_fixed(&bundle, &cfg, arch.clone());
        let batch = BatchIter::new(&bundle.data, 0..64, 64, None)
            .next()
            .expect("batch");
        let before = net.predict(&batch);

        let dir = std::env::temp_dir().join("optinter-persist-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("model.bin");
        save_net(&mut net, &path).expect("save");

        // Fresh net with different seed: predictions differ before loading.
        let cfg2 = OptInterConfig {
            seed: 99,
            ..cfg.clone()
        };
        let mut fresh = OptInterNet::new(cfg2, DataDims::of(&bundle.data), arch);
        assert_ne!(fresh.predict(&batch), before);
        load_net_weights(&mut fresh, &path).expect("load");
        assert_eq!(fresh.predict(&batch), before);

        // The architecture side-file parses back.
        let arch_str = std::fs::read_to_string(path.with_extension("arch")).expect("arch file");
        assert_eq!(
            architecture_from_string(&arch_str).expect("parse"),
            *net.architecture()
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(path.with_extension("arch")).ok();
    }

    #[test]
    fn import_rejects_shape_mismatch() {
        let bundle = Profile::Tiny.bundle_with_rows(300, 43);
        let cfg = OptInterConfig::test_small();
        let arch = Architecture::uniform(Method::Factorize, bundle.data.num_pairs);
        let mut net = OptInterNet::new(cfg, DataDims::of(&bundle.data), arch);
        let mut weights = net.export_weights();
        weights[0].1 = Matrix::zeros(1, 1);
        assert!(net.import_weights(&weights).is_err());
    }
}
