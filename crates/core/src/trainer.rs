//! Shared training / evaluation loops and the full two-stage pipeline
//! (search → re-train, paper Algorithms 1–2).

use crate::arch::Architecture;
use crate::config::OptInterConfig;
use crate::net::{DataDims, OptInterNet};
use crate::search::{search_architecture, SearchStrategy};
use crate::supernet::Supernet;
use optinter_data::{BatchStream, DatasetBundle};
use optinter_metrics::{evaluate, EvalResult};
use std::ops::Range;

/// Outcome of training a model on a bundle.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Test-set AUC.
    pub auc: f64,
    /// Test-set log-loss.
    pub log_loss: f64,
    /// Trainable parameter count of the evaluated model.
    pub num_params: usize,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f32,
    /// The architecture used (when applicable).
    pub architecture: Option<Architecture>,
}

/// Evaluates a fixed-architecture network over a row range.
pub fn evaluate_net(
    net: &mut OptInterNet,
    bundle: &DatasetBundle,
    range: Range<usize>,
    batch_size: usize,
) -> EvalResult {
    let mut probs = Vec::with_capacity(range.len());
    let mut labels = Vec::with_capacity(range.len());
    BatchStream::new(&bundle.data, range, batch_size, None)
        .prefetch(net.config().prefetch)
        .for_each(|batch| {
            probs.extend(net.predict(batch));
            labels.extend_from_slice(&batch.labels);
        });
    evaluate(&probs, &labels)
}

/// Evaluates a supernet (soft architecture, no re-train) over a row range —
/// the Table IX "without re-train" condition.
pub fn evaluate_supernet(
    net: &mut Supernet,
    bundle: &DatasetBundle,
    range: Range<usize>,
    batch_size: usize,
    tau: f32,
) -> EvalResult {
    let mut probs = Vec::with_capacity(range.len());
    let mut labels = Vec::with_capacity(range.len());
    BatchStream::new(&bundle.data, range, batch_size, None)
        .prefetch(net.config().prefetch)
        .for_each(|batch| {
            probs.extend(net.predict(batch, tau));
            labels.extend_from_slice(&batch.labels);
        });
    evaluate(&probs, &labels)
}

/// Trains a fixed architecture from scratch (Algorithm 2) with epoch-level
/// early stopping on the validation split, and reports the test metrics of
/// the best-validation epoch. Returns the trained network and its report.
///
/// `cfg.retrain_epochs` is the epoch budget; training stops early once the
/// validation AUC has not improved for two consecutive epochs (deep CTR
/// models at this data scale overfit quickly, so every model — baseline or
/// OptInter — is trained under the same rule).
pub fn train_fixed(
    bundle: &DatasetBundle,
    cfg: &OptInterConfig,
    architecture: Architecture,
) -> (OptInterNet, TrainReport) {
    let mut net = OptInterNet::new(cfg.clone(), DataDims::of(&bundle.data), architecture);
    let mut final_loss = 0.0f32;
    let mut best_val = f64::NEG_INFINITY;
    let mut best_test = None;
    let mut since_best = 0usize;
    for epoch in 0..cfg.retrain_epochs.max(1) {
        let mut epoch_loss = 0.0f32;
        let mut count = 0usize;
        BatchStream::new(
            &bundle.data,
            bundle.split.train.clone(),
            cfg.batch_size,
            Some(cfg.seed.wrapping_add(0x5EED + epoch as u64)),
        )
        .prefetch(cfg.prefetch)
        .for_each(|batch| {
            epoch_loss += net.train_batch(batch);
            count += 1;
        });
        final_loss = epoch_loss / count.max(1) as f32;
        let val = evaluate_net(&mut net, bundle, bundle.split.val.clone(), cfg.batch_size);
        if val.auc > best_val {
            best_val = val.auc;
            best_test = Some(evaluate_net(
                &mut net,
                bundle,
                bundle.split.test.clone(),
                cfg.batch_size,
            ));
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= 2 {
                break;
            }
        }
    }
    let eval = best_test.unwrap_or_else(|| {
        evaluate_net(&mut net, bundle, bundle.split.test.clone(), cfg.batch_size)
    });
    let report = TrainReport {
        auc: eval.auc,
        log_loss: eval.log_loss,
        num_params: net.num_params(),
        final_train_loss: final_loss,
        architecture: Some(net.architecture().clone()),
    };
    (net, report)
}

/// The full OptInter pipeline: search stage (Algorithm 1 or an ablation
/// strategy) followed by re-training from scratch (Algorithm 2).
pub fn run_two_stage(
    bundle: &DatasetBundle,
    cfg: &OptInterConfig,
    strategy: SearchStrategy,
) -> TrainReport {
    let outcome = search_architecture(bundle, cfg, strategy);
    let (_, report) = train_fixed(bundle, cfg, outcome.architecture);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Method;
    use optinter_data::Profile;

    fn setup() -> (DatasetBundle, OptInterConfig) {
        let bundle = Profile::Tiny.bundle_with_rows(2500, 31);
        let cfg = OptInterConfig {
            seed: 2,
            retrain_epochs: 2,
            ..OptInterConfig::test_small()
        };
        (bundle, cfg)
    }

    #[test]
    fn fixed_training_beats_chance() {
        let (bundle, cfg) = setup();
        let arch = Architecture::uniform(Method::Memorize, bundle.data.num_pairs);
        let (_, report) = train_fixed(&bundle, &cfg, arch);
        assert!(report.auc > 0.6, "AUC {} too low", report.auc);
        assert!(report.log_loss < 0.8);
        assert!(report.num_params > 0);
    }

    #[test]
    fn two_stage_pipeline_runs() {
        let (bundle, cfg) = setup();
        let report = run_two_stage(&bundle, &cfg, SearchStrategy::Joint);
        assert!(report.auc > 0.55, "AUC {}", report.auc);
        assert!(report.architecture.is_some());
    }

    #[test]
    fn oracle_architecture_performs_well() {
        let (bundle, cfg) = setup();
        let oracle = Architecture::oracle(&bundle.planted);
        let (_, report) = train_fixed(&bundle, &cfg, oracle);
        assert!(report.auc > 0.65, "oracle AUC {}", report.auc);
    }

    #[test]
    fn retraining_is_deterministic() {
        let (bundle, cfg) = setup();
        let arch = Architecture::uniform(Method::Factorize, bundle.data.num_pairs);
        let (_, r1) = train_fixed(&bundle, &cfg, arch.clone());
        let (_, r2) = train_fixed(&bundle, &cfg, arch);
        assert_eq!(r1.auc, r2.auc);
        assert_eq!(r1.log_loss, r2.log_loss);
    }
}
