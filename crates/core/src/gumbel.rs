//! The Gumbel-softmax relaxation (paper Eqs. 16–18).
//!
//! Architecture parameters are stored as unconstrained logits `a_k`
//! (playing the role of `log α_k` in Eq. 16). A relaxed selection is
//!
//! `p_k = softmax((a_k + g_k) / τ)`, `g_k = -log(-log(u_k))`, `u_k ~ U(0,1)`
//!
//! which is differentiable in `a_k`, so the architecture parameters learn
//! by plain gradient descent jointly with the network weights.

use crate::arch::Method;
use optinter_tensor::ops::{softmax_backward_slice, softmax_into};
use rand::Rng;

/// Size of the search space per pair: `K = |{memorize, factorize, naive}|`.
/// Fixed at compile time so a [`GumbelSample`] is a plain value type and
/// drawing one never touches the heap (the supernet draws one per pair per
/// step — see `tests/alloc_steady_state.rs`).
pub const K: usize = Method::ALL.len();

/// Draws one standard Gumbel noise sample.
#[inline]
pub fn gumbel_noise(rng: &mut impl Rng) -> f32 {
    // Clamp away from 0 and 1 to keep the double log finite.
    let u: f32 = rng.gen::<f32>().clamp(1e-10, 1.0 - 1e-7);
    -(-u.ln()).ln()
}

/// One relaxed selection over `K` candidates: the sampled probabilities and
/// the cached pieces needed to backpropagate into the logits.
#[derive(Debug, Clone, Copy)]
pub struct GumbelSample {
    /// Relaxed probabilities `p_k` (sum to 1).
    pub probs: [f32; K],
    tau: f32,
}

impl GumbelSample {
    /// Samples `p = softmax((logits + g) / tau)` with fresh Gumbel noise.
    pub fn draw(logits: &[f32], tau: f32, rng: &mut impl Rng) -> Self {
        assert_eq!(logits.len(), K, "expected {K} method logits");
        let mut perturbed = [0.0f32; K];
        for (p, &a) in perturbed.iter_mut().zip(logits.iter()) {
            *p = a + gumbel_noise(rng);
        }
        let mut probs = [0.0f32; K];
        softmax_into(&perturbed, tau, &mut probs);
        Self { probs, tau }
    }

    /// Deterministic variant without noise (used at evaluation time when a
    /// soft architecture is still active, and in tests).
    pub fn deterministic(logits: &[f32], tau: f32) -> Self {
        assert_eq!(logits.len(), K, "expected {K} method logits");
        let mut probs = [0.0f32; K];
        softmax_into(logits, tau, &mut probs);
        Self { probs, tau }
    }

    /// Backpropagates an upstream gradient on the probabilities into the
    /// logits: `d L / d a_k` (the Gumbel noise is a constant w.r.t. `a`).
    pub fn backward(&self, dprobs: &[f32], dlogits: &mut [f32]) {
        softmax_backward_slice(&self.probs, dprobs, self.tau, dlogits);
    }
}

/// Linear temperature annealing schedule from `tau_start` to `tau_end`.
#[derive(Debug, Clone, Copy)]
pub struct TauSchedule {
    /// Initial temperature.
    pub start: f32,
    /// Final temperature.
    pub end: f32,
}

impl TauSchedule {
    /// Temperature at training progress `frac` in `[0, 1]`.
    pub fn at(&self, frac: f32) -> f32 {
        let f = frac.clamp(0.0, 1.0);
        (self.start + (self.end - self.start) * f).max(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_tensor::ops::softmax_slice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_has_gumbel_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| gumbel_noise(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        // Gumbel mean is the Euler–Mascheroni constant ~0.5772.
        assert!((mean - 0.5772).abs() < 0.02, "mean {mean}");
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        // Gumbel variance is pi^2/6 ~ 1.6449.
        assert!((var - 1.6449).abs() < 0.08, "var {var}");
    }

    #[test]
    fn sample_probs_are_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = GumbelSample::draw(&[0.3, -0.5, 1.2], 0.7, &mut rng);
            let sum: f32 = s.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.probs.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn argmax_frequency_matches_softmax_weights() {
        // Sampling property of the Gumbel trick: argmax(logits + g) is a
        // categorical draw with probabilities softmax(logits).
        let logits = [1.0f32, 0.0, -1.0];
        let expected = softmax_slice(&logits, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 30_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            let s = GumbelSample::draw(&logits, 0.05, &mut rng);
            let arg = optinter_tensor::ops::argmax(&s.probs);
            counts[arg] += 1;
        }
        for k in 0..3 {
            let freq = counts[k] as f32 / n as f32;
            assert!(
                (freq - expected[k]).abs() < 0.02,
                "class {k}: freq {freq} vs expected {}",
                expected[k]
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let logits = [0.2f32, -0.4, 0.9];
        let tau = 0.6;
        let dprobs = [0.5f32, -1.0, 0.25];
        let s = GumbelSample::deterministic(&logits, tau);
        let mut dlogits = [0.0f32; 3];
        s.backward(&dprobs, &mut dlogits);
        let eps = 1e-3;
        for k in 0..3 {
            let mut lp = logits;
            lp[k] += eps;
            let mut lm = logits;
            lm[k] -= eps;
            let pp = GumbelSample::deterministic(&lp, tau).probs;
            let pm = GumbelSample::deterministic(&lm, tau).probs;
            let mut num = 0.0;
            for j in 0..3 {
                num += dprobs[j] * (pp[j] - pm[j]) / (2.0 * eps);
            }
            assert!(
                (dlogits[k] - num).abs() < 2e-3,
                "k={k}: {} vs {num}",
                dlogits[k]
            );
        }
    }

    #[test]
    fn tau_schedule_interpolates() {
        let s = TauSchedule {
            start: 1.0,
            end: 0.2,
        };
        assert_eq!(s.at(0.0), 1.0);
        assert!((s.at(0.5) - 0.6).abs() < 1e-6);
        assert!((s.at(1.0) - 0.2).abs() < 1e-6);
        // Clamped outside [0, 1].
        assert_eq!(s.at(-1.0), 1.0);
        assert!((s.at(2.0) - 0.2).abs() < 1e-6);
    }
}
