//! Search strategies over the architecture space (paper Sec. II-C2 and the
//! Table VIII ablation).
//!
//! - [`SearchStrategy::Joint`] — the paper's algorithm: network weights Θ
//!   and architecture parameters α are updated simultaneously on every
//!   training batch (Algorithm 1);
//! - [`SearchStrategy::BiLevel`] — DARTS-style alternation: Θ on training
//!   batches, α on validation batches;
//! - [`SearchStrategy::Random`] — uniform random assignment (the paper
//!   reports the mean of ten random architectures).

use crate::arch::{Architecture, Method};
use crate::config::OptInterConfig;
use crate::net::DataDims;
use crate::supernet::Supernet;
use optinter_data::{Batch, BatchIter, BatchStream, DatasetBundle};
use optinter_nn::bce_with_logits;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How to search for the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Simultaneous Θ/α updates on training data (the paper's choice).
    Joint,
    /// Alternating Θ (train split) / α (validation split) updates.
    BiLevel,
    /// Uniform random architecture drawn with the given seed.
    Random {
        /// Seed for the random draw.
        seed: u64,
    },
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The selected discrete architecture.
    pub architecture: Architecture,
    /// Mean training loss of the final epoch (0 for random search).
    pub final_loss: f32,
    /// Peak supernet parameter count (0 for random search) — bi-level and
    /// joint share the supernet, but bi-level needs a second gradient pass,
    /// which is what runs the paper's Avazu experiment out of GPU memory.
    pub supernet_params: usize,
}

/// Runs the search stage and returns the selected architecture.
pub fn search_architecture(
    bundle: &DatasetBundle,
    cfg: &OptInterConfig,
    strategy: SearchStrategy,
) -> SearchOutcome {
    match strategy {
        SearchStrategy::Random { seed } => random_architecture(bundle.data.num_pairs, seed),
        SearchStrategy::Joint => joint_search(bundle, cfg),
        SearchStrategy::BiLevel => bilevel_search(bundle, cfg),
    }
}

fn random_architecture(num_pairs: usize, seed: u64) -> SearchOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let methods = (0..num_pairs)
        .map(|_| Method::from_index(rng.gen_range(0..3)))
        .collect();
    SearchOutcome {
        architecture: Architecture::new(methods),
        final_loss: 0.0,
        supernet_params: 0,
    }
}

fn joint_search(bundle: &DatasetBundle, cfg: &OptInterConfig) -> SearchOutcome {
    let (_, outcome) = joint_search_supernet(bundle, cfg);
    outcome
}

/// Runs the joint search and also returns the trained supernet, so callers
/// can evaluate the soft architecture directly (the Table IX
/// "without re-train" condition).
pub fn joint_search_supernet(
    bundle: &DatasetBundle,
    cfg: &OptInterConfig,
) -> (Supernet, SearchOutcome) {
    let mut net = Supernet::new(cfg.clone(), DataDims::of(&bundle.data));
    let supernet_params = net.num_params();
    let epochs = cfg.search_epochs.max(1);
    let total_batches = {
        let per_epoch = BatchIter::new(
            &bundle.data,
            bundle.split.train.clone(),
            cfg.batch_size,
            None,
        )
        .num_batches();
        (per_epoch * epochs).max(1)
    };
    let mut seen = 0usize;
    let mut final_loss = 0.0f32;
    for epoch in 0..epochs {
        let mut epoch_loss = 0.0f32;
        let mut count = 0usize;
        BatchStream::new(
            &bundle.data,
            bundle.split.train.clone(),
            cfg.batch_size,
            Some(cfg.seed.wrapping_add(epoch as u64)),
        )
        .prefetch(cfg.prefetch)
        .for_each(|batch| {
            let tau = cfg.tau.at(seen as f32 / total_batches as f32);
            epoch_loss += net.train_batch(batch, tau);
            seen += 1;
            count += 1;
        });
        final_loss = epoch_loss / count.max(1) as f32;
    }
    let outcome = SearchOutcome {
        architecture: net.extract_architecture(),
        final_loss,
        supernet_params,
    };
    (net, outcome)
}

fn bilevel_search(bundle: &DatasetBundle, cfg: &OptInterConfig) -> SearchOutcome {
    let mut net = Supernet::new(cfg.clone(), DataDims::of(&bundle.data));
    let supernet_params = net.num_params();
    let epochs = cfg.search_epochs.max(1);
    let train_batches = BatchIter::new(
        &bundle.data,
        bundle.split.train.clone(),
        cfg.batch_size,
        None,
    )
    .num_batches();
    let total = (train_batches * epochs).max(1);
    let mut seen = 0usize;
    let mut final_loss = 0.0f32;
    // The α updates pull validation batches on demand (they interleave with
    // the Θ steps, so they cannot be prefetched); a single recycled buffer
    // keeps the pull path allocation-free.
    let mut val_buf = Batch::empty();
    for epoch in 0..epochs {
        // A fresh (cycling) validation stream per epoch for the α updates.
        let mut val_iter = BatchIter::new(
            &bundle.data,
            bundle.split.val.clone(),
            cfg.batch_size,
            Some(cfg.seed.wrapping_add(1000 + epoch as u64)),
        );
        let mut epoch_loss = 0.0f32;
        let mut count = 0usize;
        BatchStream::new(
            &bundle.data,
            bundle.split.train.clone(),
            cfg.batch_size,
            Some(cfg.seed.wrapping_add(epoch as u64)),
        )
        .prefetch(cfg.prefetch)
        .for_each(|batch| {
            let tau = cfg.tau.at(seen as f32 / total as f32);
            // Θ step on the training batch.
            let logits = net.forward(batch, tau, true);
            let (l, grad) = bce_with_logits(&logits, &batch.labels);
            net.backward(batch, &grad);
            net.step_weights();
            net.zero_arch_grad();
            epoch_loss += l;
            // α step on a validation batch.
            if !val_iter.next_into(&mut val_buf) {
                val_iter = BatchIter::new(
                    &bundle.data,
                    bundle.split.val.clone(),
                    cfg.batch_size,
                    Some(cfg.seed.wrapping_add(2000 + seen as u64)),
                );
                if !val_iter.next_into(&mut val_buf) {
                    return; // empty validation split
                }
            }
            let logits = net.forward(&val_buf, tau, true);
            let (_, grad) = bce_with_logits(&logits, &val_buf.labels);
            net.backward(&val_buf, &grad);
            net.step_arch();
            net.zero_weight_grads();
            seen += 1;
            count += 1;
        });
        final_loss = epoch_loss / count.max(1) as f32;
    }
    SearchOutcome {
        architecture: net.extract_architecture(),
        final_loss,
        supernet_params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_data::Profile;

    fn tiny_bundle() -> DatasetBundle {
        Profile::Tiny.bundle_with_rows(1500, 23)
    }

    fn tiny_cfg() -> OptInterConfig {
        OptInterConfig {
            seed: 1,
            search_epochs: 1,
            ..OptInterConfig::test_small()
        }
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let b = tiny_bundle();
        let a1 = search_architecture(&b, &tiny_cfg(), SearchStrategy::Random { seed: 9 });
        let a2 = search_architecture(&b, &tiny_cfg(), SearchStrategy::Random { seed: 9 });
        assert_eq!(a1.architecture, a2.architecture);
        let a3 = search_architecture(&b, &tiny_cfg(), SearchStrategy::Random { seed: 10 });
        assert_ne!(a1.architecture, a3.architecture);
    }

    #[test]
    fn joint_search_completes_and_reports_loss() {
        let b = tiny_bundle();
        let out = search_architecture(&b, &tiny_cfg(), SearchStrategy::Joint);
        assert_eq!(out.architecture.num_pairs(), b.data.num_pairs);
        assert!(out.final_loss > 0.0 && out.final_loss < 2.0);
        assert!(out.supernet_params > 0);
    }

    #[test]
    fn bilevel_search_completes() {
        let b = tiny_bundle();
        let out = search_architecture(&b, &tiny_cfg(), SearchStrategy::BiLevel);
        assert_eq!(out.architecture.num_pairs(), b.data.num_pairs);
    }

    #[test]
    fn joint_is_reproducible() {
        let b = tiny_bundle();
        let a1 = search_architecture(&b, &tiny_cfg(), SearchStrategy::Joint);
        let a2 = search_architecture(&b, &tiny_cfg(), SearchStrategy::Joint);
        assert_eq!(a1.architecture, a2.architecture);
    }
}
