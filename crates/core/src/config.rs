//! OptInter hyper-parameters — the Table IV analogue, scaled to the
//! single-core synthetic substrate.

use crate::gumbel::TauSchedule;
use optinter_nn::{EmbedOptimizerMode, StoreKind};

/// The factorization function used by the factorized branch (paper Sec.
/// II-C1). The paper takes the Hadamard product as the representative and
/// notes the framework "can be extended easily to taking multiple
/// operations into account" — the other two variants implement that
/// extension and are compared by the `ablation` bench binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactFn {
    /// Element-wise product `e_i ⊗ e_j` (Eq. 14; the paper's choice).
    Hadamard,
    /// Element-wise sum `e_i ⊕ e_j`.
    PointwiseAdd,
    /// Generalized product `w_(i,j) ⊙ e_i ⊙ e_j` with a learnable
    /// per-pair weight vector.
    Generalized,
}

impl FactFn {
    /// Display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            FactFn::Hadamard => "hadamard",
            FactFn::PointwiseAdd => "pointwise-add",
            FactFn::Generalized => "generalized",
        }
    }
}

/// Hyper-parameters for OptInter training (search and re-train stages).
#[derive(Debug, Clone)]
pub struct OptInterConfig {
    /// Embedding size for original features (Table IV: `s1`).
    pub orig_dim: usize,
    /// Embedding size for cross-product features (Table IV: `s2`).
    pub cross_dim: usize,
    /// MLP hidden widths (Table IV: `net`).
    pub hidden: Vec<usize>,
    /// Apply LayerNorm in the MLP (Table IV: `LN`).
    pub layer_norm: bool,
    /// Mini-batch size (Table IV: `bs`).
    pub batch_size: usize,
    /// Learning rate for network weights and `E^o` (Table IV: `lr_o`).
    pub lr: f32,
    /// Learning rate for the cross-product table `E^m` (Table IV: `lr_c`).
    pub lr_cross: f32,
    /// Learning rate for architecture parameters (Table IV: `lr_a`).
    pub lr_arch: f32,
    /// Adam epsilon (Table IV: `eps`).
    pub adam_eps: f32,
    /// L2 on original embeddings (Table IV: `l2_o`).
    pub l2_orig: f32,
    /// L2 on cross-product embeddings (Table IV: `l2_c`).
    pub l2_cross: f32,
    /// Epochs for the search stage.
    pub search_epochs: usize,
    /// Epochs for the re-train stage.
    pub retrain_epochs: usize,
    /// Factorization function for the factorized branch.
    pub fact_fn: FactFn,
    /// Gumbel-softmax temperature annealing over the search stage.
    pub tau: TauSchedule,
    /// Master seed for weight init, shuffling and Gumbel noise.
    pub seed: u64,
    /// Intra-batch data-parallel threads (1 = serial). Any value produces
    /// bit-identical results; see `optinter_tensor::pool`.
    pub num_threads: usize,
    /// Overlap batch assembly with compute via the prefetching
    /// `optinter_data::BatchStream` (default on). Either value produces
    /// bit-identical results; off keeps training entirely on the caller
    /// thread (A/B timing, single-threaded debugging).
    pub prefetch: bool,
    /// Storage scheme for the original-feature table `E^o`
    /// ([`StoreKind::Dense`] reproduces historical trajectories bitwise;
    /// the hashed kinds trade exactness for `O(√V)` memory at giant
    /// vocabularies).
    pub orig_store: StoreKind,
    /// Storage scheme for the cross-product table `E^m`.
    pub cross_store: StoreKind,
    /// Embedding-optimizer row-visiting policy (sparse touched-row,
    /// dense full-sweep reference, or lazy catch-up; see
    /// `optinter_nn::EmbedOptimizerMode`). All modes with `l2 = 0` are
    /// bitwise-equivalent on touched rows; `LazyCatchUp` defers
    /// weight-decay-only updates until rows are next touched.
    pub embed_opt: EmbedOptimizerMode,
}

impl Default for OptInterConfig {
    fn default() -> Self {
        Self {
            orig_dim: 16,
            cross_dim: 8,
            hidden: vec![64, 32],
            layer_norm: true,
            batch_size: 128,
            // The paper's learning rates (e.g. 5e-4) assume tens of millions
            // of samples; our scaled datasets see ~100x fewer optimizer
            // steps, so the rates are scaled up accordingly.
            lr: 5e-3,
            lr_cross: 1e-2,
            lr_arch: 2e-2,
            adam_eps: 1e-8,
            l2_orig: 0.0,
            l2_cross: 1e-3,
            search_epochs: 2,
            retrain_epochs: 8,
            fact_fn: FactFn::Hadamard,
            tau: TauSchedule {
                start: 1.0,
                end: 0.2,
            },
            seed: 0,
            num_threads: 1,
            prefetch: true,
            orig_store: StoreKind::Dense,
            cross_store: StoreKind::Dense,
            embed_opt: EmbedOptimizerMode::Sparse,
        }
    }
}

impl OptInterConfig {
    /// A configuration shrunk for unit tests: tiny widths, small batches
    /// and aggressive learning rates so a few hundred optimizer steps are
    /// enough to see learning.
    pub fn test_small() -> Self {
        Self {
            orig_dim: 6,
            cross_dim: 4,
            hidden: vec![16],
            batch_size: 64,
            lr: 1e-2,
            lr_cross: 1e-2,
            lr_arch: 5e-2,
            search_epochs: 2,
            retrain_epochs: 8,
            ..Self::default()
        }
    }

    /// Width of the mixed pair embedding during search (candidates are
    /// zero-padded to a common width so they can be convexly combined).
    pub fn mixed_dim(&self) -> usize {
        self.orig_dim.max(self.cross_dim)
    }

    /// Returns a copy with a different seed (for repeated significance runs).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self {
            seed,
            ..self.clone()
        }
    }

    /// Returns a copy with a different cross-embedding size (Figure 4's
    /// `s2` sweep).
    pub fn with_cross_dim(&self, cross_dim: usize) -> Self {
        Self {
            cross_dim,
            ..self.clone()
        }
    }

    /// Returns a copy with a different factorization function (the
    /// factorization-function ablation).
    pub fn with_fact_fn(&self, fact_fn: FactFn) -> Self {
        Self {
            fact_fn,
            ..self.clone()
        }
    }

    /// Returns a copy with a different data-parallel thread count.
    pub fn with_threads(&self, num_threads: usize) -> Self {
        Self {
            num_threads,
            ..self.clone()
        }
    }

    /// Returns a copy with input prefetching toggled (the bench
    /// `--no-prefetch` A/B switch).
    pub fn with_prefetch(&self, prefetch: bool) -> Self {
        Self {
            prefetch,
            ..self.clone()
        }
    }

    /// Returns a copy with both embedding tables moved to the given
    /// storage scheme (the giant-vocab dense-vs-hashed A/B switch).
    pub fn with_stores(&self, orig_store: StoreKind, cross_store: StoreKind) -> Self {
        Self {
            orig_store,
            cross_store,
            ..self.clone()
        }
    }

    /// Returns a copy with a different embedding-optimizer policy.
    pub fn with_embed_opt(&self, embed_opt: EmbedOptimizerMode) -> Self {
        Self {
            embed_opt,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = OptInterConfig::default();
        assert!(c.orig_dim >= c.cross_dim);
        assert_eq!(c.mixed_dim(), c.orig_dim);
        assert!(c.batch_size > 0);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = OptInterConfig::default();
        let b = a.with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.hidden, b.hidden);
        assert_eq!(a.orig_dim, b.orig_dim);
    }

    #[test]
    fn mixed_dim_is_max() {
        let c = OptInterConfig {
            orig_dim: 4,
            cross_dim: 10,
            ..OptInterConfig::default()
        };
        assert_eq!(c.mixed_dim(), 10);
    }
}
