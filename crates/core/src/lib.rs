//! OptInter: learning the optimal feature-interaction modelling method for
//! every feature pair (the paper's primary contribution).
//!
//! The framework (paper Fig. 2) stacks an input layer (cross-product
//! transform, provided by `optinter-data`), an embedding layer (`E^o` for
//! original features, `E^m` for cross-product features), a feature
//! interaction layer whose *combination block* picks per pair among
//!
//! - **memorized** — the pair's own cross-product embedding `e^m_(i,j)`,
//! - **factorized** — the Hadamard product `e^o_i ⊗ e^o_j` (Eq. 14),
//! - **naïve** — the empty embedding,
//!
//! and an MLP classifier. Crate layout:
//!
//! - [`arch`] — [`arch::Method`] / [`arch::Architecture`]: one choice per pair;
//! - [`gumbel`] — the Gumbel-softmax relaxation (Eqs. 16–18);
//! - [`config`] — hyper-parameters (Table IV analogue);
//! - [`supernet`] — the search-stage model: all three candidates computed
//!   per pair and mixed by relaxed architecture weights, trained jointly
//!   with the architecture parameters `α` (Algorithm 1);
//! - [`net`] — the fixed-architecture model used by OptInter-M, OptInter-F
//!   and the re-train stage (Algorithm 2 / Eq. 19), with a *compact* cross
//!   embedding table holding only the memorized pairs;
//! - [`search`] — joint (paper), bi-level and random search strategies
//!   (the Table VIII ablation);
//! - [`trainer`] — shared training/evaluation loops and the two-stage
//!   search → re-train pipeline.

#![forbid(unsafe_code)]

pub mod arch;
pub mod config;
pub mod gumbel;
pub mod net;
pub mod persist;
pub mod search;
pub mod supernet;
pub mod trainer;

pub use arch::{Architecture, Method};
pub use config::{FactFn, OptInterConfig};
pub use net::OptInterNet;
pub use search::{joint_search_supernet, search_architecture, SearchOutcome, SearchStrategy};
pub use supernet::Supernet;
pub use trainer::{evaluate_net, run_two_stage, train_fixed, TrainReport};
