//! Shared experiment execution: one row of Table V per call.

use crate::configs::{baseline_config, optinter_config};
use optinter_core::{
    run_two_stage, train_fixed, Architecture, Method, SearchStrategy, TrainReport,
};
use optinter_data::{DatasetBundle, Profile};
use optinter_models::autofis::run_autofis;
use optinter_models::{build_model, run_model, ModelKind};
use serde::Serialize;

/// One result row (Table V format, plus Table VI counts when available).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Dataset profile name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Test AUC.
    pub auc: f64,
    /// Test log-loss.
    pub log_loss: f64,
    /// Trainable parameter count.
    pub params: usize,
    /// `[memorize, factorize, naive]` counts (hybrid / OptInter rows only).
    pub arch_counts: Option<[usize; 3]>,
    /// Agreement with the planted ground truth (searched rows only).
    pub planted_agreement: Option<f64>,
}

/// Runs one baseline on a bundle with `threads` data-parallel workers.
pub fn run_baseline_row(
    kind: ModelKind,
    profile: Profile,
    bundle: &DatasetBundle,
    seed: u64,
    threads: usize,
) -> Row {
    let cfg = baseline_config(profile, seed, threads);
    if kind == ModelKind::AutoFis {
        let (report, counts) = run_autofis(bundle, &cfg);
        return Row {
            dataset: profile.name().into(),
            model: report.model,
            auc: report.auc,
            log_loss: report.log_loss,
            params: report.num_params,
            arch_counts: Some(counts),
            planted_agreement: None,
        };
    }
    let mut model = build_model(kind, &cfg, &bundle.data);
    let report = run_model(model.as_mut(), bundle, &cfg);
    Row {
        dataset: profile.name().into(),
        model: report.model,
        auc: report.auc,
        log_loss: report.log_loss,
        params: report.num_params,
        arch_counts: None,
        planted_agreement: None,
    }
}

fn report_to_row(
    profile: Profile,
    name: &str,
    report: &TrainReport,
    bundle: &DatasetBundle,
) -> Row {
    let (counts, agreement) = match &report.architecture {
        Some(arch) => (
            Some(arch.counts()),
            Some(arch.agreement_with(&bundle.planted)),
        ),
        None => (None, None),
    };
    Row {
        dataset: profile.name().into(),
        model: name.into(),
        auc: report.auc,
        log_loss: report.log_loss,
        params: report.num_params,
        arch_counts: counts,
        planted_agreement: agreement,
    }
}

/// Runs OptInter-F, OptInter-M and full OptInter (joint search + re-train)
/// on a bundle, returning three rows.
pub fn run_optinter_rows(
    profile: Profile,
    bundle: &DatasetBundle,
    seed: u64,
    threads: usize,
) -> Vec<Row> {
    let cfg = optinter_config(profile, seed, threads);
    let mut rows = Vec::with_capacity(3);
    let (_, rf) = train_fixed(
        bundle,
        &cfg,
        Architecture::uniform(Method::Factorize, bundle.data.num_pairs),
    );
    rows.push(report_to_row(profile, "OptInter-F", &rf, bundle));
    let (_, rm) = train_fixed(
        bundle,
        &cfg,
        Architecture::uniform(Method::Memorize, bundle.data.num_pairs),
    );
    rows.push(report_to_row(profile, "OptInter-M", &rm, bundle));
    let ro = run_two_stage(bundle, &cfg, SearchStrategy::Joint);
    rows.push(report_to_row(profile, "OptInter", &ro, bundle));
    rows
}
