//! Markdown / JSON experiment reporting.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// A simple column-aligned markdown table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn push(&mut self, row: Vec<String>) {
        // lint: allow(panic-free, reason="bench-only report table; reaches the serve cones only through the conservative .push name fallback and never runs while serving")
        assert_eq!(row.len(), self.header.len(), "table row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned markdown.
    pub fn render(&self) -> String {
        render_table(&self.header, &self.rows)
    }
}

/// Renders header + rows as column-aligned markdown.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for c in 0..cols {
            line.push_str(&format!(" {:<w$} |", cells[c], w = widths[c]));
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Saves a serializable result to `results/<name>.json` (relative to the
/// current directory), creating the directory if needed. Failure to write
/// is reported on stderr but never aborts an experiment.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: could not create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Formats a parameter count like the paper (`0.5M`, `13M`, `493K`).
pub fn format_params(n: usize) -> String {
    if n >= 10_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["model", "auc"]);
        t.push(vec!["LR".into(), "0.77".into()]);
        t.push(vec!["OptInter".into(), "0.81".into()]);
        let r = t.render();
        assert!(r.contains("| model    | auc  |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.push(vec!["x".into()]);
    }

    #[test]
    fn param_formatting() {
        assert_eq!(format_params(493_273), "493K");
        assert_eq!(format_params(1_500_000), "1.5M");
        assert_eq!(format_params(25_000_000), "25M");
        assert_eq!(format_params(42), "42");
    }
}
