//! Design-choice ablations beyond the paper's tables (DESIGN.md §5):
//!
//! 1. **Factorization function** — the paper picks the Hadamard product as
//!    the representative factorized method (Sec. II-C1) and notes the
//!    framework extends to other operations. We compare Hadamard,
//!    pointwise-addition and the generalized (learned-weight) product both
//!    as OptInter-F and inside the full two-stage pipeline.
//! 2. **Temperature schedule** — the Gumbel-softmax temperature τ is
//!    annealed during search; we compare annealing against fixed high/low
//!    temperatures.

use crate::configs::{optinter_config, ExpOptions};
use crate::report::{format_params, save_json, Table};
use optinter_core::gumbel::TauSchedule;
use optinter_core::{run_two_stage, train_fixed, Architecture, FactFn, Method, SearchStrategy};
use optinter_data::Profile;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    ablation: String,
    variant: String,
    auc: f64,
    log_loss: f64,
    params: usize,
}

/// Runs both ablations on the Criteo-like profile.
pub fn run(opts: &ExpOptions) {
    let profile = Profile::CriteoLike;
    let bundle = opts.bundle(profile);
    let mut json = Vec::new();

    println!("\n## Ablation A — factorization function (criteo_like)\n");
    let mut table = Table::new(&[
        "Fact. fn",
        "OptInter-F AUC",
        "OptInter AUC",
        "OptInter params",
    ]);
    for fact_fn in [FactFn::Hadamard, FactFn::PointwiseAdd, FactFn::Generalized] {
        let cfg = optinter_config(profile, opts.seed, opts.threads).with_fact_fn(fact_fn);
        let (_, rf) = train_fixed(
            &bundle,
            &cfg,
            Architecture::uniform(Method::Factorize, bundle.data.num_pairs),
        );
        let ro = run_two_stage(&bundle, &cfg, SearchStrategy::Joint);
        table.push(vec![
            fact_fn.tag().into(),
            format!("{:.4}", rf.auc),
            format!("{:.4}", ro.auc),
            format_params(ro.num_params),
        ]);
        json.push(JsonRow {
            ablation: "fact_fn".into(),
            variant: fact_fn.tag().into(),
            auc: ro.auc,
            log_loss: ro.log_loss,
            params: ro.num_params,
        });
    }
    println!("{}", table.render());

    println!("## Ablation B — Gumbel-softmax temperature schedule (criteo_like)\n");
    let mut table = Table::new(&["Schedule", "AUC", "Log loss", "Arch [m,f,n]"]);
    for (name, tau) in [
        (
            "annealed 1.0 -> 0.2",
            TauSchedule {
                start: 1.0,
                end: 0.2,
            },
        ),
        (
            "fixed 1.0",
            TauSchedule {
                start: 1.0,
                end: 1.0,
            },
        ),
        (
            "fixed 0.2",
            TauSchedule {
                start: 0.2,
                end: 0.2,
            },
        ),
        (
            "fixed 5.0",
            TauSchedule {
                start: 5.0,
                end: 5.0,
            },
        ),
    ] {
        let mut cfg = optinter_config(profile, opts.seed, opts.threads);
        cfg.tau = tau;
        let r = run_two_stage(&bundle, &cfg, SearchStrategy::Joint);
        let Some(arch) = r.architecture.as_ref() else {
            eprintln!("tau ablation `{name}`: two-stage run yielded no architecture; skipping row");
            continue;
        };
        table.push(vec![
            name.into(),
            format!("{:.4}", r.auc),
            format!("{:.4}", r.log_loss),
            arch.counts_string(),
        ]);
        json.push(JsonRow {
            ablation: "tau".into(),
            variant: name.into(),
            auc: r.auc,
            log_loss: r.log_loss,
            params: r.num_params,
        });
    }
    println!("{}", table.render());
    save_json("ablation", &json);
}
