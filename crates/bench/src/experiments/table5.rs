//! Table V: overall performance comparison — every baseline plus the three
//! OptInter variants on the four dataset profiles — and the paired
//! significance test of OptInter against the best baseline (Sec. III-A5).

use crate::configs::{optinter_config, ExpOptions};
use crate::report::{format_params, save_json, Table};
use crate::runner::{run_baseline_row, run_optinter_rows, Row};
use optinter_core::{run_two_stage, train_fixed, Architecture, Method, SearchStrategy};
use optinter_data::Profile;
use optinter_metrics::paired_t_test;
use optinter_models::ModelKind;
use std::time::Instant;

/// Runs Table V and returns all rows (reused by `table6`).
pub fn run(opts: &ExpOptions) -> Vec<Row> {
    println!("\n## Table V — overall performance comparison\n");
    let mut all_rows = Vec::new();
    for profile in Profile::paper_datasets() {
        let t0 = Instant::now();
        let bundle = opts.bundle(profile);
        let mut rows = Vec::new();
        for kind in ModelKind::table5_baselines() {
            rows.push(run_baseline_row(
                kind,
                profile,
                &bundle,
                opts.seed,
                opts.threads,
            ));
        }
        rows.extend(run_optinter_rows(profile, &bundle, opts.seed, opts.threads));
        let mut table = Table::new(&["Model", "AUC", "Log loss", "Param.", "Arch [m,f,n]"]);
        for row in &rows {
            table.push(vec![
                row.model.clone(),
                format!("{:.4}", row.auc),
                format!("{:.4}", row.log_loss),
                format_params(row.params),
                row.arch_counts
                    .map(|c| format!("[{},{},{}]", c[0], c[1], c[2]))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        println!(
            "### {} ({} rows, {:.1?})\n",
            profile.name(),
            bundle.len(),
            t0.elapsed()
        );
        println!("{}", table.render());
        all_rows.extend(rows);
    }
    if opts.repeats >= 2 {
        significance(opts);
    }
    save_json("table5", &all_rows);
    all_rows
}

/// Paired t-test of OptInter vs the best baseline (OptInter-M) over
/// repeated runs with different seeds, as in the paper's Sec. III-A5.
fn significance(opts: &ExpOptions) {
    println!(
        "### Significance (paired t-test over {} seeds, OptInter vs OptInter-M)\n",
        opts.repeats
    );
    let mut table = Table::new(&[
        "Dataset",
        "OptInter mean AUC",
        "OptInter-M mean AUC",
        "t",
        "p-value",
    ]);
    for profile in Profile::paper_datasets() {
        let bundle = opts.bundle(profile);
        let mut optinter = Vec::new();
        let mut optinter_m = Vec::new();
        for rep in 0..opts.repeats {
            let cfg = optinter_config(profile, opts.seed + 1 + rep as u64, opts.threads);
            let r = run_two_stage(&bundle, &cfg, SearchStrategy::Joint);
            optinter.push(r.auc);
            let (_, rm) = train_fixed(
                &bundle,
                &cfg,
                Architecture::uniform(Method::Memorize, bundle.data.num_pairs),
            );
            optinter_m.push(rm.auc);
        }
        let t = paired_t_test(&optinter, &optinter_m);
        table.push(vec![
            profile.name().into(),
            format!(
                "{:.4}",
                optinter.iter().sum::<f64>() / optinter.len() as f64
            ),
            format!(
                "{:.4}",
                optinter_m.iter().sum::<f64>() / optinter_m.len() as f64
            ),
            format!("{:.2}", t.t),
            format!("{:.4}", t.p_value),
        ]);
    }
    println!("{}", table.render());
}
