//! Table IX: ablation on the re-train stage — evaluating the searched
//! supernet directly ("w.o.") vs re-training the selected architecture from
//! scratch ("w.", the paper's Algorithm 2).

use crate::configs::{optinter_config, ExpOptions};
use crate::report::{save_json, Table};
use optinter_core::search::joint_search_supernet;
use optinter_core::trainer::{evaluate_supernet, train_fixed};
use optinter_data::Profile;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    dataset: String,
    with_retrain_auc: f64,
    with_retrain_logloss: f64,
    without_retrain_auc: f64,
    without_retrain_logloss: f64,
}

/// Runs Table IX on the Criteo- and Avazu-like profiles.
pub fn run(opts: &ExpOptions) {
    println!("\n## Table IX — re-train stage ablation\n");
    let mut table = Table::new(&[
        "Dataset",
        "AUC w.",
        "Log loss w.",
        "AUC w.o.",
        "Log loss w.o.",
    ]);
    let mut json = Vec::new();
    for profile in [Profile::CriteoLike, Profile::AvazuLike] {
        let bundle = opts.bundle(profile);
        let cfg = optinter_config(profile, opts.seed, opts.threads);
        let (mut supernet, outcome) = joint_search_supernet(&bundle, &cfg);
        // Without re-train: the supernet as-is, soft architecture at the
        // final annealed temperature.
        let wo = evaluate_supernet(
            &mut supernet,
            &bundle,
            bundle.split.test.clone(),
            cfg.batch_size,
            cfg.tau.end,
        );
        // With re-train: discrete architecture, fresh weights (Alg. 2).
        let (_, w) = train_fixed(&bundle, &cfg, outcome.architecture);
        table.push(vec![
            profile.name().into(),
            format!("{:.4}", w.auc),
            format!("{:.4}", w.log_loss),
            format!("{:.4}", wo.auc),
            format!("{:.4}", wo.log_loss),
        ]);
        json.push(JsonRow {
            dataset: profile.name().into(),
            with_retrain_auc: w.auc,
            with_retrain_logloss: w.log_loss,
            without_retrain_auc: wo.auc,
            without_retrain_logloss: wo.log_loss,
        });
    }
    println!("{}", table.render());
    save_json("table9", &json);
}
