//! Figure 5: mean mutual-information score of the feature interactions
//! selected by each method (paper Sec. III-G1, Eq. 21). The expected shape:
//! memorized pairs carry the highest MI, naïve the lowest.

use crate::configs::{optinter_config, ExpOptions};
use crate::report::{save_json, Table};
use optinter_core::{search_architecture, Method, SearchStrategy};
use optinter_data::{DatasetBundle, Profile};
use optinter_metrics::mutual_information_corrected;
use serde::Serialize;

/// Mutual information between every pair's cross feature and the label,
/// estimated on the training split with the Miller–Madow bias correction
/// (the plug-in estimator would spuriously favour high-cardinality pairs at
/// this sample size).
pub fn pair_mutual_info(bundle: &DatasetBundle) -> Vec<f64> {
    let train = bundle.split.train.clone();
    let labels: Vec<f32> = bundle.data.labels[train.clone()].to_vec();
    (0..bundle.data.num_pairs)
        .map(|p| {
            let ids: Vec<u32> = train.clone().map(|n| bundle.data.row_cross(n)[p]).collect();
            mutual_information_corrected(&ids, &labels)
        })
        .collect()
}

#[derive(Serialize)]
struct JsonRow {
    dataset: String,
    method: String,
    num_pairs: usize,
    mean_mi: f64,
}

/// Runs Figure 5 on the Criteo- and Avazu-like profiles.
pub fn run(opts: &ExpOptions) {
    println!("\n## Figure 5 — mean mutual information per selected method\n");
    let mut json = Vec::new();
    for profile in [Profile::CriteoLike, Profile::AvazuLike] {
        let bundle = opts.bundle(profile);
        let cfg = optinter_config(profile, opts.seed, opts.threads);
        let arch = search_architecture(&bundle, &cfg, SearchStrategy::Joint).architecture;
        let mi = pair_mutual_info(&bundle);
        let mut table = Table::new(&["Method", "#pairs", "mean MI (nats)"]);
        for method in Method::ALL {
            let pairs = arch.pairs_with(method);
            let mean = if pairs.is_empty() {
                0.0
            } else {
                pairs.iter().map(|&p| mi[p]).sum::<f64>() / pairs.len() as f64
            };
            table.push(vec![
                match method {
                    Method::Memorize => "memorize".into(),
                    Method::Factorize => "factorize".into(),
                    Method::Naive => "naive".into(),
                },
                pairs.len().to_string(),
                format!("{:.5}", mean),
            ]);
            json.push(JsonRow {
                dataset: profile.name().into(),
                method: method.tag().into(),
                num_pairs: pairs.len(),
                mean_mi: mean,
            });
        }
        println!("### {}\n", profile.name());
        println!("{}", table.render());
    }
    save_json("figure5", &json);
}
