//! One module per paper table/figure; each exposes `run(&ExpOptions)`.

pub mod ablation;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod table2;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
