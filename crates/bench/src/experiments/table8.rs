//! Table VIII: ablation on the search stage — random vs bi-level vs the
//! paper's joint search, on the three public profiles.

use crate::configs::{optinter_config, ExpOptions};
use crate::report::{format_params, save_json, Table};
use optinter_core::{run_two_stage, search_architecture, train_fixed, SearchStrategy};
use optinter_data::Profile;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    dataset: String,
    strategy: String,
    auc: f64,
    log_loss: f64,
    arch: Option<[usize; 3]>,
    params: usize,
}

/// Runs Table VIII.
pub fn run(opts: &ExpOptions) {
    println!("\n## Table VIII — search-algorithm ablation\n");
    let mut json = Vec::new();
    for profile in Profile::public_datasets() {
        let bundle = opts.bundle(profile);
        let cfg = optinter_config(profile, opts.seed, opts.threads);
        let mut table = Table::new(&["Search", "AUC", "Log loss", "Arch [m,f,n]", "Param."]);
        // Random: mean over `repeats` random architectures (paper: 10).
        let trials = opts.repeats.max(2);
        let mut aucs = Vec::new();
        let mut lls = Vec::new();
        let mut params = Vec::new();
        for t in 0..trials {
            let out = search_architecture(
                &bundle,
                &cfg,
                SearchStrategy::Random {
                    seed: opts.seed + 100 + t as u64,
                },
            );
            let (_, r) = train_fixed(&bundle, &cfg, out.architecture);
            aucs.push(r.auc);
            lls.push(r.log_loss);
            params.push(r.num_params);
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_params =
            (params.iter().sum::<usize>() as f64 / params.len() as f64).round() as usize;
        table.push(vec![
            format!("Random (mean of {trials})"),
            format!("{:.4}", mean(&aucs)),
            format!("{:.4}", mean(&lls)),
            "-".into(),
            format_params(mean_params),
        ]);
        json.push(JsonRow {
            dataset: profile.name().into(),
            strategy: "random".into(),
            auc: mean(&aucs),
            log_loss: mean(&lls),
            arch: None,
            params: mean_params,
        });
        for (name, strat) in [
            ("Bi-level", SearchStrategy::BiLevel),
            ("OptInter (joint)", SearchStrategy::Joint),
        ] {
            let r = run_two_stage(&bundle, &cfg, strat);
            let Some(arch) = r.architecture.as_ref() else {
                eprintln!(
                    "table8 `{name}` on {}: two-stage run yielded no architecture; skipping row",
                    profile.name()
                );
                continue;
            };
            table.push(vec![
                name.into(),
                format!("{:.4}", r.auc),
                format!("{:.4}", r.log_loss),
                arch.counts_string(),
                format_params(r.num_params),
            ]);
            json.push(JsonRow {
                dataset: profile.name().into(),
                strategy: name.into(),
                auc: r.auc,
                log_loss: r.log_loss,
                arch: Some(arch.counts()),
                params: r.num_params,
            });
        }
        println!("### {}\n", profile.name());
        println!("{}", table.render());
    }
    save_json("table8", &json);
}
