//! Table II: dataset statistics for the four profiles.

use crate::configs::ExpOptions;
use crate::report::save_json;
use optinter_data::stats::DatasetStats;
use optinter_data::Profile;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    name: String,
    samples: usize,
    num_categorical: usize,
    num_cross: usize,
    orig_values: u64,
    cross_values: u64,
    pos_ratio: f64,
}

/// Prints Table II for the four paper profiles.
pub fn run(opts: &ExpOptions) {
    println!("\n## Table II — dataset statistics (synthetic profiles)\n");
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::separator());
    let mut json = Vec::new();
    for profile in Profile::paper_datasets() {
        let bundle = opts.bundle(profile);
        let stats = DatasetStats::compute(&bundle);
        println!("{}", stats.row());
        json.push(JsonRow {
            name: stats.name.clone(),
            samples: stats.samples,
            num_categorical: stats.num_categorical,
            num_cross: stats.num_cross,
            orig_values: stats.orig_values,
            cross_values: stats.cross_values,
            pos_ratio: stats.pos_ratio,
        });
    }
    save_json("table2", &json);
    println!();
}
