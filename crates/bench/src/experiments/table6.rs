//! Table VI: method selection for different feature interactions —
//! `[memorize, factorize, naive]` counts per model on the three public
//! profiles, plus the planted ground truth for reference (something the
//! paper cannot show on real data, but our synthetic substrate can).

use crate::configs::{baseline_config, optinter_config, ExpOptions};
use crate::report::{save_json, Table};
use optinter_core::{search_architecture, Method, SearchStrategy};
use optinter_data::{PlantedKind, Profile};
use optinter_models::autofis::AutoFis;
use optinter_models::train_model;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    model: String,
    dataset: String,
    counts: [usize; 3],
    planted_agreement: Option<f64>,
}

fn planted_counts(planted: &[PlantedKind]) -> [usize; 3] {
    let mut c = [0usize; 3];
    for k in planted {
        match k {
            PlantedKind::Memorized => c[0] += 1,
            PlantedKind::Factorized => c[1] += 1,
            PlantedKind::None => c[2] += 1,
        }
    }
    c
}

/// Runs Table VI.
pub fn run(opts: &ExpOptions) {
    println!("\n## Table VI — method selection per model\n");
    let profiles = Profile::public_datasets();
    let mut table = Table::new(&["Method", "criteo_like", "avazu_like", "ipinyou_like"]);
    let mut json = Vec::new();
    let fmt = |c: [usize; 3]| format!("[{},{},{}]", c[0], c[1], c[2]);

    type CountsFn = fn(usize) -> [usize; 3];
    let fixed_rows: [(&str, CountsFn); 3] = [
        ("Naive", |p| [0, 0, p]),
        ("OptInter-M", |p| [p, 0, 0]),
        ("OptInter-F", |p| [0, p, 0]),
    ];
    for (name, counts_fn) in &fixed_rows {
        let mut cells = vec![name.to_string()];
        for profile in profiles {
            let pairs = profile.spec().schema().num_pairs();
            let counts = counts_fn(pairs);
            cells.push(fmt(counts));
            json.push(JsonRow {
                model: name.to_string(),
                dataset: profile.name().into(),
                counts,
                planted_agreement: None,
            });
        }
        table.push(cells);
    }

    // AutoFIS: search phase selects {factorize, naive}.
    let mut cells = vec!["AutoFIS".to_string()];
    for profile in profiles {
        let bundle = opts.bundle(profile);
        let cfg = baseline_config(profile, opts.seed, opts.threads);
        let mut model = AutoFis::new(&cfg, bundle.data.orig_vocab, bundle.data.num_fields);
        train_model(&mut model, &bundle, &cfg);
        let counts = model.selection_counts();
        cells.push(fmt(counts));
        json.push(JsonRow {
            model: "AutoFIS".into(),
            dataset: profile.name().into(),
            counts,
            planted_agreement: None,
        });
    }
    table.push(cells);

    // OptInter: joint search.
    let mut cells = vec!["OptInter".to_string()];
    let mut truth_cells = vec!["(planted truth)".to_string()];
    for profile in profiles {
        let bundle = opts.bundle(profile);
        let cfg = optinter_config(profile, opts.seed, opts.threads);
        let arch = search_architecture(&bundle, &cfg, SearchStrategy::Joint).architecture;
        let counts = arch.counts();
        let agreement = arch.agreement_with(&bundle.planted);
        cells.push(format!("{} (agree {:.2})", fmt(counts), agreement));
        truth_cells.push(fmt(planted_counts(&bundle.planted)));
        json.push(JsonRow {
            model: "OptInter".into(),
            dataset: profile.name().into(),
            counts,
            planted_agreement: Some(agreement),
        });
        // Sanity diagnostics: OptInter should memorize at least one pair
        // and drop at least one pair on every profile.
        let _ = Method::ALL;
    }
    table.push(cells);
    table.push(truth_cells);

    println!("{}", table.render());
    save_json("table6", &json);
}
