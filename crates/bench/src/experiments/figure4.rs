//! Figure 4: efficiency–effectiveness trade-off. Sweeps the memorized
//! embedding size `s2` and reports (parameter count, AUC) points for
//! OptInter-M and OptInter, mirroring the paper's OptInter-M(X) /
//! OptInter(Y) curves.

use crate::configs::{optinter_config, ExpOptions};
use crate::report::{format_params, save_json, Table};
use optinter_core::{search_architecture, train_fixed, Architecture, Method, SearchStrategy};
use optinter_data::Profile;
use serde::Serialize;

#[derive(Serialize)]
struct JsonPoint {
    dataset: String,
    series: String,
    cross_dim: usize,
    params: usize,
    auc: f64,
}

/// Cross-embedding sizes swept (the paper varies 5 and 10).
const SWEEP: [usize; 4] = [2, 4, 8, 12];

/// Runs Figure 4 on the Criteo- and Avazu-like profiles.
pub fn run(opts: &ExpOptions) {
    println!("\n## Figure 4 — efficiency vs effectiveness (params vs AUC)\n");
    let mut json = Vec::new();
    for profile in [Profile::CriteoLike, Profile::AvazuLike] {
        let bundle = opts.bundle(profile);
        let base_cfg = optinter_config(profile, opts.seed, opts.threads);
        // Search once at the default size; the sweep re-trains the same
        // architecture with different memorized-embedding sizes.
        let searched = search_architecture(&bundle, &base_cfg, SearchStrategy::Joint).architecture;
        let mut table = Table::new(&["Series", "Cross.E.", "Param.", "AUC"]);
        for s2 in SWEEP {
            let cfg = optinter_config(profile, opts.seed, opts.threads).with_cross_dim(s2);
            let (_, rm) = train_fixed(
                &bundle,
                &cfg,
                Architecture::uniform(Method::Memorize, bundle.data.num_pairs),
            );
            table.push(vec![
                format!("OptInter-M({s2})"),
                s2.to_string(),
                format_params(rm.num_params),
                format!("{:.4}", rm.auc),
            ]);
            json.push(JsonPoint {
                dataset: profile.name().into(),
                series: "OptInter-M".into(),
                cross_dim: s2,
                params: rm.num_params,
                auc: rm.auc,
            });
            let (_, ro) = train_fixed(&bundle, &cfg, searched.clone());
            table.push(vec![
                format!("OptInter({s2})"),
                s2.to_string(),
                format_params(ro.num_params),
                format!("{:.4}", ro.auc),
            ]);
            json.push(JsonPoint {
                dataset: profile.name().into(),
                series: "OptInter".into(),
                cross_dim: s2,
                params: ro.num_params,
                auc: ro.auc,
            });
        }
        println!("### {}\n", profile.name());
        println!("{}", table.render());
    }
    save_json("figure4", &json);
}
