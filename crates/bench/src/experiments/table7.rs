//! Table VII: comparison with naïve and factorized models given roughly the
//! same parameter budget as OptInter — the paper enlarges the baselines'
//! embedding sizes until their parameter counts match, and shows that the
//! extra capacity does not close the gap.

use crate::configs::{baseline_config, optinter_config, ExpOptions};
use crate::report::{format_params, save_json, Table};
use optinter_core::{run_two_stage, SearchStrategy};
use optinter_data::Profile;
use optinter_models::{build_model, run_model, ModelKind};
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow {
    dataset: String,
    model: String,
    embed_dim: usize,
    auc: f64,
    log_loss: f64,
    params: usize,
}

/// Runs Table VII on the Criteo- and Avazu-like profiles.
pub fn run(opts: &ExpOptions) {
    println!("\n## Table VII — equal-parameter comparison\n");
    let mut json = Vec::new();
    for profile in [Profile::CriteoLike, Profile::AvazuLike] {
        let bundle = opts.bundle(profile);
        // OptInter reference run.
        let ocfg = optinter_config(profile, opts.seed, opts.threads);
        let oreport = run_two_stage(&bundle, &ocfg, SearchStrategy::Joint);
        // Enlarge baseline embeddings until the (embedding-dominated)
        // parameter count matches OptInter's.
        let vocab = bundle.data.orig_vocab as usize;
        let enlarged_dim = (oreport.num_params / vocab).max(ocfg.orig_dim + 1);
        let mut table = Table::new(&["Model", "AUC", "Log loss", "Orig.E.", "Cross.E.", "Param."]);
        for kind in [
            ModelKind::Fm,
            ModelKind::Fnn,
            ModelKind::Ipnn,
            ModelKind::DeepFm,
        ] {
            let mut cfg = baseline_config(profile, opts.seed, opts.threads);
            cfg.embed_dim = enlarged_dim;
            let mut model = build_model(kind, &cfg, &bundle.data);
            let r = run_model(model.as_mut(), &bundle, &cfg);
            table.push(vec![
                r.model.clone(),
                format!("{:.4}", r.auc),
                format!("{:.4}", r.log_loss),
                enlarged_dim.to_string(),
                "0".into(),
                format_params(r.num_params),
            ]);
            json.push(JsonRow {
                dataset: profile.name().into(),
                model: r.model,
                embed_dim: enlarged_dim,
                auc: r.auc,
                log_loss: r.log_loss,
                params: r.num_params,
            });
        }
        table.push(vec![
            "OptInter".into(),
            format!("{:.4}", oreport.auc),
            format!("{:.4}", oreport.log_loss),
            ocfg.orig_dim.to_string(),
            ocfg.cross_dim.to_string(),
            format_params(oreport.num_params),
        ]);
        json.push(JsonRow {
            dataset: profile.name().into(),
            model: "OptInter".into(),
            embed_dim: ocfg.orig_dim,
            auc: oreport.auc,
            log_loss: oreport.log_loss,
            params: oreport.num_params,
        });
        println!(
            "### {} (baseline embeddings enlarged to {})\n",
            profile.name(),
            enlarged_dim
        );
        println!("{}", table.render());
    }
    save_json("table7", &json);
}
