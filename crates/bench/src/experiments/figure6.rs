//! Figure 6: the interpretability case study — a heat-map of mutual
//! information per field pair next to the searched method map, rendered as
//! text matrices. The two maps should correlate: high-MI pairs get
//! memorized, low-MI pairs dropped (paper Sec. III-G2).

use crate::configs::{optinter_config, ExpOptions};
use crate::experiments::figure5::pair_mutual_info;
use crate::report::save_json;
use optinter_core::{search_architecture, SearchStrategy};
use optinter_data::{PairIndexer, Profile};
use optinter_tensor::stats::spearman;
use serde::Serialize;

#[derive(Serialize)]
struct JsonOut {
    dataset: String,
    mi: Vec<f64>,
    methods: Vec<String>,
    mi_method_spearman: f64,
}

/// MI bucket for the text heat-map: `.` low, `+` medium, `#` high.
fn mi_glyph(mi: f64, lo: f64, hi: f64) -> char {
    if hi <= lo {
        return '.';
    }
    let frac = (mi - lo) / (hi - lo);
    if frac > 0.66 {
        '#'
    } else if frac > 0.33 {
        '+'
    } else {
        '.'
    }
}

/// Runs Figure 6 on the Avazu-like profile (the paper's case study).
pub fn run(opts: &ExpOptions) {
    println!("\n## Figure 6 — MI heat-map vs searched method map (avazu_like)\n");
    let profile = Profile::AvazuLike;
    let bundle = opts.bundle(profile);
    let cfg = optinter_config(profile, opts.seed, opts.threads);
    let arch = search_architecture(&bundle, &cfg, SearchStrategy::Joint).architecture;
    let mi = pair_mutual_info(&bundle);
    let m = bundle.data.num_fields;
    let pairs = PairIndexer::new(m);
    let (lo, hi) = optinter_tensor::stats::min_max(&mi);

    println!("(a) mutual information ('#' high, '+' medium, '.' low)\n");
    print_matrix(m, |i, j| mi_glyph(mi[pairs.index_of(i, j)], lo, hi));
    println!("\n(b) searched methods (M memorize, F factorize, N naive)\n");
    print_matrix(m, |i, j| {
        arch.method(pairs.index_of(i, j))
            .tag()
            .chars()
            .next()
            .unwrap_or('?')
    });

    // Quantify the correlation the paper shows visually: rank-correlate MI
    // with the "strength" of the selected method (M=2, F=1, N=0).
    let method_rank: Vec<f64> = (0..pairs.num_pairs())
        .map(|p| match arch.method(p) {
            optinter_core::Method::Memorize => 2.0,
            optinter_core::Method::Factorize => 1.0,
            optinter_core::Method::Naive => 0.0,
        })
        .collect();
    let rho = spearman(&mi, &method_rank);
    println!("\nSpearman correlation between MI and selected-method strength: {rho:.3}\n");
    save_json(
        "figure6",
        &JsonOut {
            dataset: profile.name().into(),
            mi,
            methods: (0..pairs.num_pairs())
                .map(|p| arch.method(p).tag().to_string())
                .collect(),
            mi_method_spearman: rho,
        },
    );
}

fn print_matrix(m: usize, cell: impl Fn(usize, usize) -> char) {
    print!("    ");
    for j in 0..m {
        print!("{j:>3}");
    }
    println!();
    for i in 0..m {
        print!("{i:>3} ");
        for j in 0..m {
            if j > i {
                print!("  {}", cell(i, j));
            } else {
                print!("   ");
            }
        }
        println!();
    }
}
