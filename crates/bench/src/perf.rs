//! Fixed-workload substrate performance measurements with a committed
//! JSON trajectory (`results/BENCH_substrate.json`).
//!
//! Every entry appended by [`run`] is labelled, so before/after pairs from
//! perf-focused PRs remain comparable forever. The workload is frozen (see
//! the `--bin perf` docs); only iteration counts shrink under `--quick`.

use optinter_core::net::DataDims;
use optinter_core::{Architecture, Method, OptInterConfig, OptInterNet, Supernet};
use optinter_data::cross::{raw_cross, CrossVocab};
use optinter_data::{Batch, BatchIter, BatchStream, Profile, Schema, SyntheticGenerator};
use optinter_nn::{
    Adam, DenseOptimizer, EmbedOptimizerMode, EmbedStore, EmbeddingTable, StoreKind,
};
use optinter_serve::{
    freeze, run_zipf_load, FrozenScorer, LoadSpec, MicroBatchOptions, MonotonicClock, Quant,
};
use optinter_tensor::kernels::{self, Backend};
use optinter_tensor::stats::percentile_sorted;
use optinter_tensor::{init, Matrix, Pool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// Options for a perf run.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Entry label recorded in the JSON (e.g. `pr3-before`).
    pub label: String,
    /// Smoke mode: tiny iteration counts, same workload and shapes.
    pub quick: bool,
    /// Output JSON path.
    pub out: String,
    /// Overlap batch assembly with compute in the epoch measurements
    /// (`--no-prefetch` disables it for A/B runs; the affected rows are
    /// labelled `stream_serial` instead of `prefetch`).
    pub prefetch: bool,
    /// Path to a committed trajectory to regression-check against: the
    /// run fails if any train-step `rows_per_sec` drops more than
    /// [`REGRESSION_TOLERANCE`] below the matching `(model, threads)` row
    /// of that file's last entry.
    pub check_against: Option<String>,
    /// Kernel backend forced for the train/input/serve sections
    /// (`--backend scalar|avx2fma`); `None` keeps the process default
    /// (env override or CPU detection). The kernel section always measures
    /// every supported backend side by side regardless.
    pub backend: Option<String>,
}

/// Allowed fractional train-step throughput drop before
/// `--check-against` fails the run.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Tolerance for rows whose thread count exceeds the machine's cores.
/// Oversubscribed rows measure the OS scheduler as much as the kernels —
/// on a 1-core CI runner a t4 median routinely swings ±20% between runs —
/// so the gate only fails them on drops large enough to be a real
/// regression rather than contention noise.
pub const OVERSUBSCRIBED_TOLERANCE: f64 = 0.30;

/// Cores available to this process (1 if the query fails).
fn machine_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for PerfOptions {
    fn default() -> Self {
        Self {
            label: "dev".to_string(),
            quick: false,
            out: "results/BENCH_substrate.json".to_string(),
            prefetch: true,
            check_against: None,
            backend: None,
        }
    }
}

/// One timed kernel measurement.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Kernel name (`matmul`, `matmul_at_b`, `matmul_a_bt`).
    pub kernel: String,
    /// Kernel variant: a backend name (`scalar` / `avx2fma`, dispatched
    /// through the pooled entry points) or the `naive` reference.
    pub variant: String,
    /// `A` rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// `B` columns.
    pub n: usize,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Median wall-clock per call.
    pub ns_per_call: f64,
    /// Throughput in `2*m*k*n / time` GFLOP/s.
    pub gflops: f64,
}

/// Embedding-path measurement (batch 256 x 12 fields, 50k x 16 table).
#[derive(Debug, Clone, Serialize)]
pub struct EmbeddingRow {
    /// Measured operation.
    pub op: String,
    /// Median wall-clock per call.
    pub ns_per_call: f64,
    /// Batch rows processed per second.
    pub rows_per_sec: f64,
}

/// Memory-scaled embedding measurement on a giant-vocab key space.
///
/// Ops are scale-suffixed (`lookup_grad@1e7` full, `lookup_grad@2e5`
/// quick) so `--check-against` keys from a quick smoke run can never
/// cross-match a committed full-scale baseline: absent keys pass the
/// gate, mismatched scales never compare.
#[derive(Debug, Clone, Serialize)]
pub struct EmbedScaleRow {
    /// Measured operation (`lookup_grad@SCALE`, `adam_apply@SCALE`,
    /// `train_step@SCALE`).
    pub op: String,
    /// Store or optimizer variant (`dense` / `hashed_qr` /
    /// `hashed_double`; `dense_apply` / `lazy` for the optimizer wall).
    pub variant: String,
    /// Resident training bytes per key-space row: f32 weights plus the
    /// two Adam moment planes, divided by the key space served.
    pub bytes_per_row: f64,
    /// Median wall-clock per call (per epoch for `train_step`).
    pub ns_per_call: f64,
    /// Batch (or trained) rows processed per second.
    pub rows_per_sec: f64,
    /// Validation AUC (`train_step` rows only; 0 for micro ops).
    pub auc: f64,
}

/// Full train-step measurement at batch 256.
#[derive(Debug, Clone, Serialize)]
pub struct TrainRow {
    /// Model (`supernet` or `optinternet`).
    pub model: String,
    /// Worker threads.
    pub threads: usize,
    /// Median wall-clock per training step.
    pub ns_per_step: f64,
    /// Examples per second at batch 256.
    pub rows_per_sec: f64,
    /// Final-step loss, as a cross-run determinism fingerprint.
    pub last_loss: f32,
}

/// Input-pipeline measurement on the AvazuLike profile (10 fields, 45
/// pairs): cross-vocabulary build, row encoding, batch assembly, and full
/// training epochs with and without the prefetching stream.
#[derive(Debug, Clone, Serialize)]
pub struct InputRow {
    /// Measured operation (`cross_vocab_build`, `encode_rows`,
    /// `batch_assembly`, `epoch_optinternet`, `epoch_supernet`).
    pub op: String,
    /// Variant (`hashmap_reference`/`open_addressing`, `serial`/`pooled`,
    /// `alloc_per_batch`/`recycled`, `batchiter`/`prefetch`).
    pub variant: String,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Median wall-clock per call (per epoch for the epoch ops).
    pub ns_per_call: f64,
    /// Raw/encoded/trained rows processed per second.
    pub rows_per_sec: f64,
}

/// Serving-path latency/throughput measurement on a frozen artifact:
/// the single-request scorer and the micro-batching front door under a
/// Zipf-hot open-loop load, at 1, 2 and 4 threads.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRow {
    /// Measured path (`single_request` or `micro_batch`).
    pub op: String,
    /// Scorer pool threads.
    pub threads: usize,
    /// Median request latency.
    pub p50_ns: f64,
    /// 99th-percentile request latency.
    pub p99_ns: f64,
    /// 99.9th-percentile request latency.
    pub p999_ns: f64,
    /// Requests scored per second over the whole run.
    pub rows_per_sec: f64,
}

/// One labelled perf run (an element of the JSON trajectory array).
#[derive(Debug, Clone, Serialize)]
pub struct PerfEntry {
    /// Run label (`--label`).
    pub label: String,
    /// Whether this was a `--quick` smoke run.
    pub quick: bool,
    /// Kernel backend the train/input/serve sections ran under.
    pub backend: String,
    /// Kernel micro measurements.
    pub matmul: Vec<KernelRow>,
    /// Embedding accumulate/update measurements.
    pub embedding: Vec<EmbeddingRow>,
    /// Memory-scaled embedding measurements (giant-vocab key space).
    pub embedding_scale: Vec<EmbedScaleRow>,
    /// End-to-end train-step measurements.
    pub train_step: Vec<TrainRow>,
    /// Input-pipeline measurements.
    pub input: Vec<InputRow>,
    /// Serving-path latency measurements.
    pub serve: Vec<ServeRow>,
}

/// Median nanoseconds per call of `f` over `samples` timed runs.
fn time_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    f(); // warm-up
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    times[times.len() / 2]
}

const MATMUL_SHAPES: [(usize, usize, usize); 2] = [(256, 720, 64), (128, 256, 64)];

fn bench_matmul_variant(
    rows: &mut Vec<KernelRow>,
    variant: &str,
    samples: usize,
    run: &dyn Fn(&str, &Matrix, &Matrix, &mut Matrix, &Pool),
) {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    for &(m, k, n) in &MATMUL_SHAPES {
        // Forward product `[m,k] x [k,n]`, the weight-gradient shape
        // `[m,k]^T x [m,n]` and the input-gradient shape `[m,n] x [k,n]^T`.
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let b = init::uniform(&mut rng, k, n, -1.0, 1.0);
        let g = init::uniform(&mut rng, m, n, -1.0, 1.0);
        let cases: [(&str, &Matrix, &Matrix, (usize, usize)); 3] = [
            ("matmul", &a, &b, (m, n)),
            ("matmul_at_b", &a, &g, (k, n)),
            ("matmul_a_bt", &g, &b, (m, k)),
        ];
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for (name, lhs, rhs, (or, oc)) in cases {
                let mut out = Matrix::zeros(or, oc);
                let ns = time_ns(samples, || run(name, lhs, rhs, &mut out, &pool));
                std::hint::black_box(out.as_slice());
                rows.push(KernelRow {
                    kernel: name.to_string(),
                    variant: variant.to_string(),
                    m,
                    k,
                    n,
                    threads,
                    ns_per_call: ns,
                    gflops: 2.0 * (m * k * n) as f64 / ns,
                });
            }
        }
    }
}

fn bench_matmuls(quick: bool) -> Vec<KernelRow> {
    let samples = if quick { 3 } else { 30 };
    let mut rows = Vec::new();
    // Per-backend section: each supported backend is forced active for its
    // rows so the pooled entry points dispatch to it, then the caller's
    // selection is restored. These rows are reported, never gated — the
    // committed trajectory stays scalar-comparable while the SIMD win is
    // documented side by side.
    let prev = kernels::active();
    let mut backends = vec![Backend::Scalar];
    if Backend::AvxFma.is_supported() {
        backends.push(Backend::AvxFma);
    }
    for b in backends {
        kernels::set_active(b);
        bench_matmul_variant(
            &mut rows,
            b.name(),
            samples,
            &|name, lhs, rhs, out, pool| match name {
                "matmul" => lhs.matmul_into_pooled(rhs, out, pool),
                "matmul_at_b" => {
                    out.fill_zero();
                    lhs.matmul_at_b_accumulate_pooled(rhs, out, 1.0, pool)
                }
                _ => lhs.matmul_a_bt_into_pooled(rhs, out, pool),
            },
        );
    }
    kernels::set_active(prev);
    bench_matmul_variant(
        &mut rows,
        "naive",
        samples,
        &|name, lhs, rhs, out, _pool| {
            use optinter_tensor::reference;
            match name {
                "matmul" => {
                    out.fill_zero();
                    reference::matmul_accumulate(lhs, rhs, out, 1.0)
                }
                "matmul_at_b" => {
                    out.fill_zero();
                    reference::matmul_at_b_accumulate(lhs, rhs, out, 1.0)
                }
                _ => reference::matmul_a_bt_into(lhs, rhs, out),
            }
        },
    );
    rows
}

fn bench_embedding(quick: bool) -> Vec<EmbeddingRow> {
    let samples = if quick { 3 } else { 30 };
    let (vocab, dim, batch, fields) = (50_000usize, 16usize, 256usize, 12usize);
    let mut rng = StdRng::seed_from_u64(0xE3B);
    let mut table = EmbeddingTable::new(&mut rng, vocab, dim);
    let ids: Vec<u32> = (0..batch * fields)
        .map(|i| (i * 37 % vocab) as u32)
        .collect();
    let grad = Matrix::from_fn(batch, fields * dim, |r, c| {
        ((r * 31 + c) as f32 * 0.01).sin()
    });
    let mut rows = Vec::new();
    let lookup_ns = time_ns(samples, || {
        std::hint::black_box(table.lookup_fields(&ids, fields));
    });
    rows.push(EmbeddingRow {
        op: "lookup_fields".to_string(),
        ns_per_call: lookup_ns,
        rows_per_sec: batch as f64 / (lookup_ns * 1e-9),
    });
    let adam = Adam::with_lr_eps(1e-3, 1e-8);
    let acc_ns = time_ns(samples, || {
        table.accumulate_grad_fields(&ids, fields, &grad);
        table.apply_adam(&adam, 1e-4);
    });
    rows.push(EmbeddingRow {
        op: "accumulate_and_sparse_adam".to_string(),
        ns_per_call: acc_ns,
        rows_per_sec: batch as f64 / (acc_ns * 1e-9),
    });
    rows
}

/// Resident training bytes per key: f32 weights plus the two Adam moment
/// planes the optimizer materializes, over the key space served.
fn bytes_per_row(params: usize, key_space: usize) -> f64 {
    (params * 3 * std::mem::size_of::<f32>()) as f64 / key_space.max(1) as f64
}

/// Memory-scaled embedding measurements, the `giant_vocab` perf axis:
///
/// - `lookup_grad@SCALE`: one Zipf-hot lookup + gradient-accumulate +
///   sparse-Adam touch per store scheme (dense vs the two compositional
///   tables) over the raw key space, with resident bytes/row alongside —
///   the memory/throughput tradeoff in one row.
/// - `adam_apply@SCALE`: the optimizer wall. A full training touch under
///   `DenseApply` (O(key_space) sweep per step) vs `LazyCatchUp`
///   (touched rows only, deferred zero-grad replay) on the same dense
///   table.
/// - `train_step@SCALE`: end-to-end OptInterNet epochs on the
///   `giant_vocab` profile, dense vs hashed stores, with validation AUC
///   recorded so the memory saving is tied to model quality.
///
/// Full runs use the profile's ≥10⁷ raw key space; `--quick` shrinks to
/// 2·10⁵ keys and relabels the ops so smoke keys never gate against a
/// committed full-scale baseline.
fn bench_embedding_scale(quick: bool) -> Vec<EmbedScaleRow> {
    let (key_space, scale) = if quick {
        (200_000usize, "@2e5")
    } else {
        (10_000_000usize, "@1e7")
    };
    let dim = 16usize;
    let fields = 6usize; // giant_vocab field count
    let batch = 1024usize;
    let samples = if quick { 3 } else { 10 };

    // Zipf-hot ids at the giant_vocab exponent: the head dominates, the
    // tail keeps the touched-row set honest.
    let zipf = optinter_data::zipf::Zipf::new(key_space as u32, 1.25);
    let mut rng = StdRng::seed_from_u64(0x61A7);
    let ids: Vec<u32> = (0..batch * fields).map(|_| zipf.sample(&mut rng)).collect();
    let grad = Matrix::from_fn(batch, fields * dim, |r, c| {
        ((r * 29 + c) as f32 * 0.01).cos()
    });
    let pool = Pool::serial();
    let mut rows = Vec::new();

    // Store-scheme comparison at matched sub-table budgets (~2·sqrt(V)
    // rows, the quotient-remainder optimum).
    let bucket = (key_space as f64).sqrt().ceil() as u32;
    for (variant, kind) in [
        ("dense", StoreKind::Dense),
        ("hashed_qr", StoreKind::HashedQr { bucket }),
        ("hashed_double", StoreKind::HashedDouble { rows: bucket }),
    ] {
        let mut store_rng = StdRng::seed_from_u64(0x5E);
        let mut store = EmbedStore::new(kind, &mut store_rng, key_space, dim, 0xD1CE);
        let mut adam = Adam::with_lr_eps(1e-3, 1e-8);
        let mut out = Matrix::zeros(0, 0);
        let ns = time_ns(samples, || {
            adam.begin_step();
            store.lookup_fields_pooled_into(&ids, fields, &pool, &mut out);
            store.accumulate_grad_fields_pooled(&ids, fields, &grad, &pool);
            store.apply_adam(&adam, 1e-4);
        });
        std::hint::black_box(out.as_slice());
        rows.push(EmbedScaleRow {
            op: format!("lookup_grad{scale}"),
            variant: variant.to_string(),
            bytes_per_row: bytes_per_row(store.num_params(), store.key_space()),
            ns_per_call: ns,
            rows_per_sec: batch as f64 / (ns * 1e-9),
            auc: 0.0,
        });
    }

    // The optimizer wall: identical touch sequence, dense full-sweep
    // apply vs the lazy touched-row path, on the same dense table.
    for (variant, mode) in [
        ("dense_apply", EmbedOptimizerMode::DenseApply),
        ("lazy", EmbedOptimizerMode::LazyCatchUp),
    ] {
        // The dense sweep costs seconds per step at 10^7 rows; a median
        // of 3 bounds the section's wall clock without losing the
        // orders-of-magnitude signal.
        let apply_samples = if quick { 2 } else { 3 };
        let mut store_rng = StdRng::seed_from_u64(0x5E);
        let mut table = EmbeddingTable::new(&mut store_rng, key_space, dim);
        table.set_optimizer_mode(mode);
        let mut adam = Adam::with_lr_eps(1e-3, 1e-8);
        let mut out = Matrix::zeros(0, 0);
        let ns = time_ns(apply_samples, || {
            adam.begin_step();
            table.lookup_fields_into(&ids, fields, &mut out);
            table.accumulate_grad_fields(&ids, fields, &grad);
            table.apply_adam(&adam, 1e-4);
        });
        std::hint::black_box(out.as_slice());
        rows.push(EmbedScaleRow {
            op: format!("adam_apply{scale}"),
            variant: variant.to_string(),
            bytes_per_row: bytes_per_row(table.num_params(), table.vocab()),
            ns_per_call: ns,
            rows_per_sec: batch as f64 / (ns * 1e-9),
            auc: 0.0,
        });
    }

    // End-to-end: dense vs hashed stores on the giant_vocab profile at
    // equal AUC. The hashed bucket targets ~6x fewer resident rows over
    // the *materialized* vocabularies (a large remainder table keeps the
    // Zipf-hot head near-private, so AUC tracks dense).
    let n_rows = if quick { 6_000 } else { 60_000 };
    let epochs = if quick { 1u64 } else { 2 };
    let bundle = Profile::GiantVocab.bundle_with_rows(n_rows, 17);
    let dims = DataDims::of(&bundle.data);
    let train = bundle.split.train.clone();
    let orig_bucket = (dims.orig_vocab / 6).max(1) as u32;
    // The cross store only holds rows for memorized pairs (the M/F/N
    // cycle memorizes every third pair), so size its bucket from that
    // compact key space, not the full cross vocabulary.
    let compact_cross: u32 = (0..dims.num_pairs)
        .filter(|&p| Method::from_index(p % 3) == Method::Memorize)
        .map(|p| dims.pair_vocab_sizes[p])
        .sum();
    let cross_bucket = (compact_cross / 6).max(1);
    for (variant, orig_kind, cross_kind) in [
        ("dense", StoreKind::Dense, StoreKind::Dense),
        (
            "hashed_qr",
            StoreKind::HashedQr {
                bucket: orig_bucket,
            },
            StoreKind::HashedQr {
                bucket: cross_bucket,
            },
        ),
    ] {
        let cfg = OptInterConfig {
            seed: 7,
            num_threads: 1,
            batch_size: 256,
            orig_dim: 16,
            cross_dim: 8,
            ..OptInterConfig::test_small()
        }
        .with_stores(orig_kind, cross_kind);
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        let mut net = OptInterNet::new(cfg, dims.clone(), arch);
        let t0 = Instant::now();
        for epoch in 0..epochs {
            for b in BatchIter::new(&bundle.data, train.clone(), 256, Some(epoch)) {
                std::hint::black_box(net.train_batch(&b));
            }
        }
        let span = t0.elapsed().as_secs_f64().max(1e-9);
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for b in BatchIter::new(&bundle.data, bundle.split.val.clone(), 512, None) {
            probs.extend(net.predict(&b));
            labels.extend_from_slice(&b.labels);
        }
        let auc = optinter_metrics::auc(&probs, &labels);
        let (orig, cross) = net.embedding_stores();
        rows.push(EmbedScaleRow {
            op: format!("train_step{scale}"),
            variant: variant.to_string(),
            bytes_per_row: bytes_per_row(
                orig.num_params() + cross.num_params(),
                orig.key_space() + cross.key_space(),
            ),
            ns_per_call: span * 1e9 / epochs as f64,
            rows_per_sec: (train.len() as u64 * epochs) as f64 / span,
            auc,
        });
    }
    rows
}

fn train_batch_256(bundle: &optinter_data::DatasetBundle) -> Option<Batch> {
    BatchIter::new(&bundle.data, 0..256, 256, None).next()
}

fn bench_train_steps(quick: bool) -> Vec<TrainRow> {
    // Quick mode still takes a real median here: these rows feed the
    // `--check-against` regression gate, and a median of 3 sub-millisecond
    // steps is noisy enough to trip a 10% tolerance on an idle machine.
    // 15 samples cost single-digit milliseconds per config.
    let steps = if quick { 15 } else { 25 };
    let bundle = Profile::Tiny.bundle_with_rows(2_000, 9);
    let dims = DataDims::of(&bundle.data);
    let Some(batch) = train_batch_256(&bundle) else {
        eprintln!("perf: could not build a 256-row batch");
        return Vec::new();
    };
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = OptInterConfig {
            seed: 7,
            num_threads: threads,
            batch_size: 256,
            ..OptInterConfig::test_small()
        };
        let mut super_net = Supernet::new(cfg.clone(), dims.clone());
        let mut last_loss = 0.0f32;
        let ns = time_ns(steps, || {
            last_loss = super_net.train_batch(&batch, 0.7);
        });
        rows.push(TrainRow {
            model: "supernet".to_string(),
            threads,
            ns_per_step: ns,
            rows_per_sec: 256.0 / (ns * 1e-9),
            last_loss,
        });
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        let mut net = OptInterNet::new(cfg, dims.clone(), arch);
        let ns = time_ns(steps, || {
            last_loss = net.train_batch(&batch);
        });
        rows.push(TrainRow {
            model: "optinternet".to_string(),
            threads,
            ns_per_step: ns,
            rows_per_sec: 256.0 / (ns * 1e-9),
            last_loss,
        });
    }
    rows
}

/// The pre-open-addressing cross-vocabulary build (per-pair SipHash
/// `HashMap` counting, sorted id assignment into a second `HashMap`), kept
/// here as the before-side of the `cross_vocab_build` and `encode_rows`
/// comparisons. Returns the per-pair id maps and the total vocabulary size
/// (the latter feeds a divergence check against the production path).
#[allow(clippy::type_complexity)]
fn reference_cross_vocab(
    schema: &Schema,
    rows: &[u32],
    min_count: u32,
) -> (Vec<std::collections::HashMap<u64, u32>>, u32) {
    use std::collections::HashMap;
    let indexer = schema.pairs();
    let m = schema.num_fields();
    let n = rows.len() / m;
    let mut maps = Vec::with_capacity(indexer.num_pairs());
    let mut total = 0u32;
    for (i, j) in indexer.iter() {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for r in 0..n {
            *counts
                .entry(raw_cross(rows[r * m + i], rows[r * m + j]))
                .or_insert(0) += 1;
        }
        let mut kept: Vec<u64> = counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&v, _)| v)
            .collect();
        kept.sort_unstable();
        let ids: HashMap<u64, u32> = kept
            .iter()
            .enumerate()
            .map(|(idx, &v)| (v, idx as u32 + 1))
            .collect();
        total += kept.len() as u32 + 1; // +1 for the OOV bucket
        maps.push(ids);
    }
    (maps, total)
}

/// The pre-open-addressing row encoder: per-pair global offset plus a
/// SipHash `HashMap` lookup per cross value.
fn reference_encode_rows(
    schema: &Schema,
    maps: &[std::collections::HashMap<u64, u32>],
    rows: &[u32],
) -> Vec<u32> {
    let indexer = schema.pairs();
    let m = schema.num_fields();
    let np = indexer.num_pairs();
    let n = rows.len() / m;
    let mut offsets = Vec::with_capacity(np);
    let mut offset = 0u32;
    for ids in maps {
        offsets.push(offset);
        offset += ids.len() as u32 + 1;
    }
    let mut out = vec![0u32; n * np];
    for r in 0..n {
        let row = &rows[r * m..(r + 1) * m];
        for (p, (i, j)) in indexer.iter().enumerate() {
            let raw = raw_cross(row[i], row[j]);
            out[r * np + p] = offsets[p] + maps[p].get(&raw).copied().unwrap_or(0);
        }
    }
    out
}

/// Input-pipeline measurements on the AvazuLike profile. The epoch ops use
/// an intentionally small network (embedding dims 4/2, one hidden layer of
/// 16) so batch assembly is a visible fraction of the step — the regime
/// the prefetcher targets.
fn bench_input(quick: bool, prefetch: bool) -> Vec<InputRow> {
    let samples = if quick { 2 } else { 12 };
    let n_raw = if quick { 4_000 } else { 40_000 };
    let min_count = Profile::AvazuLike.min_count();
    let raw = SyntheticGenerator::new(Profile::AvazuLike.spec()).generate(n_raw, 11);
    let mut rows = Vec::new();

    // Cross-vocabulary build: historical HashMap path vs the open-addressing
    // table, serial and pair-sharded.
    let (ref_maps, expected_total) = reference_cross_vocab(&raw.schema, &raw.rows, min_count);
    let built_total = CrossVocab::build(&raw.schema, &raw.rows, min_count).total();
    assert_eq!(
        built_total, expected_total,
        "open-addressing cross vocabulary diverges from the HashMap reference"
    );
    let ns = time_ns(samples, || {
        std::hint::black_box(reference_cross_vocab(&raw.schema, &raw.rows, min_count).1);
    });
    rows.push(InputRow {
        op: "cross_vocab_build".to_string(),
        variant: "hashmap_reference".to_string(),
        threads: 1,
        ns_per_call: ns,
        rows_per_sec: n_raw as f64 / (ns * 1e-9),
    });
    for threads in [1usize, 2, 4] {
        let pool = Pool::new(threads);
        let ns = time_ns(samples, || {
            std::hint::black_box(
                CrossVocab::build_with_pool(&raw.schema, &raw.rows, min_count, &pool).total(),
            );
        });
        rows.push(InputRow {
            op: "cross_vocab_build".to_string(),
            variant: "open_addressing".to_string(),
            threads,
            ns_per_call: ns,
            rows_per_sec: n_raw as f64 / (ns * 1e-9),
        });
    }

    // Row encoding through the built vocabulary: historical HashMap lookup
    // path, then the production encoder serial and row-sharded.
    let vocab = CrossVocab::build(&raw.schema, &raw.rows, min_count);
    assert_eq!(
        vocab.encode_rows(&raw.schema, &raw.rows),
        reference_encode_rows(&raw.schema, &ref_maps, &raw.rows),
        "open-addressing encode diverges from the HashMap reference"
    );
    let ns = time_ns(samples, || {
        std::hint::black_box(reference_encode_rows(&raw.schema, &ref_maps, &raw.rows).len());
    });
    rows.push(InputRow {
        op: "encode_rows".to_string(),
        variant: "hashmap_reference".to_string(),
        threads: 1,
        ns_per_call: ns,
        rows_per_sec: n_raw as f64 / (ns * 1e-9),
    });
    for threads in [1usize, 2, 4] {
        let pool = Pool::new(threads);
        let ns = time_ns(samples, || {
            std::hint::black_box(
                vocab
                    .encode_rows_with_pool(&raw.schema, &raw.rows, &pool)
                    .len(),
            );
        });
        rows.push(InputRow {
            op: "encode_rows".to_string(),
            variant: if threads == 1 { "serial" } else { "pooled" }.to_string(),
            threads,
            ns_per_call: ns,
            rows_per_sec: n_raw as f64 / (ns * 1e-9),
        });
    }

    // Batch assembly over the encoded dataset: the allocating iterator vs
    // the recycled-buffer stream (both on the caller thread).
    let n_encoded = if quick { 2_000 } else { 20_000 };
    let bundle = Profile::AvazuLike.bundle_with_rows(n_encoded, 11);
    let train = bundle.split.train.clone();
    let assembly_samples = if quick { 2 } else { 20 };
    let ns = time_ns(assembly_samples, || {
        for batch in BatchIter::new(&bundle.data, train.clone(), 256, Some(42)) {
            std::hint::black_box(batch.len());
        }
    });
    rows.push(InputRow {
        op: "batch_assembly".to_string(),
        variant: "alloc_per_batch".to_string(),
        threads: 1,
        ns_per_call: ns,
        rows_per_sec: train.len() as f64 / (ns * 1e-9),
    });
    let ns = time_ns(assembly_samples, || {
        BatchStream::new(&bundle.data, train.clone(), 256, Some(42))
            .prefetch(false)
            .for_each(|batch| {
                std::hint::black_box(batch.len());
            });
    });
    rows.push(InputRow {
        op: "batch_assembly".to_string(),
        variant: "recycled".to_string(),
        threads: 1,
        ns_per_call: ns,
        rows_per_sec: train.len() as f64 / (ns * 1e-9),
    });

    // Full training epochs: legacy allocating iterator vs the stream. The
    // stream variant honours `--no-prefetch` so the overlap itself can be
    // A/B-ed; the row is relabelled so the JSON stays unambiguous.
    let epoch_samples = if quick { 1 } else { 5 };
    let stream_variant = if prefetch {
        "prefetch"
    } else {
        "stream_serial"
    };
    let dims = DataDims::of(&bundle.data);
    for threads in [1usize, 2, 4] {
        let cfg = OptInterConfig {
            seed: 7,
            num_threads: threads,
            batch_size: 256,
            orig_dim: 4,
            cross_dim: 2,
            hidden: vec![16],
            ..OptInterConfig::test_small()
        };
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        let mut net = OptInterNet::new(cfg.clone(), dims.clone(), arch);
        let ns = time_ns(epoch_samples, || {
            for batch in BatchIter::new(&bundle.data, train.clone(), cfg.batch_size, Some(42)) {
                std::hint::black_box(net.train_batch(&batch));
            }
        });
        rows.push(InputRow {
            op: "epoch_optinternet".to_string(),
            variant: "batchiter".to_string(),
            threads,
            ns_per_call: ns,
            rows_per_sec: train.len() as f64 / (ns * 1e-9),
        });
        let ns = time_ns(epoch_samples, || {
            BatchStream::new(&bundle.data, train.clone(), cfg.batch_size, Some(42))
                .prefetch(prefetch)
                .for_each(|batch| {
                    std::hint::black_box(net.train_batch(batch));
                });
        });
        rows.push(InputRow {
            op: "epoch_optinternet".to_string(),
            variant: stream_variant.to_string(),
            threads,
            ns_per_call: ns,
            rows_per_sec: train.len() as f64 / (ns * 1e-9),
        });
        let mut super_net = Supernet::new(cfg.clone(), dims.clone());
        let ns = time_ns(epoch_samples, || {
            for batch in BatchIter::new(&bundle.data, train.clone(), cfg.batch_size, Some(42)) {
                std::hint::black_box(super_net.train_batch(&batch, 0.7));
            }
        });
        rows.push(InputRow {
            op: "epoch_supernet".to_string(),
            variant: "batchiter".to_string(),
            threads,
            ns_per_call: ns,
            rows_per_sec: train.len() as f64 / (ns * 1e-9),
        });
        let ns = time_ns(epoch_samples, || {
            BatchStream::new(&bundle.data, train.clone(), cfg.batch_size, Some(42))
                .prefetch(prefetch)
                .for_each(|batch| {
                    std::hint::black_box(super_net.train_batch(batch, 0.7));
                });
        });
        rows.push(InputRow {
            op: "epoch_supernet".to_string(),
            variant: stream_variant.to_string(),
            threads,
            ns_per_call: ns,
            rows_per_sec: train.len() as f64 / (ns * 1e-9),
        });
    }
    rows
}

/// Serving-path measurements on a frozen Tiny-profile model: per-request
/// latency of the single-request scorer (one-row batches, Zipf-hot rows)
/// and of the micro-batching front door under a saturating open-loop
/// Zipf load, at 1, 2 and 4 scorer threads.
fn bench_serve(quick: bool) -> Vec<ServeRow> {
    let single_requests = if quick { 500 } else { 20_000 };
    let load_requests = if quick { 2_000 } else { 50_000 };
    let bundle = Profile::Tiny.bundle_with_rows(2_000, 9);
    let dims = DataDims::of(&bundle.data);
    let arch = Architecture::new(
        (0..dims.num_pairs)
            .map(|p| Method::from_index(p % 3))
            .collect(),
    );
    let cfg = OptInterConfig {
        seed: 7,
        num_threads: 1,
        batch_size: 256,
        ..OptInterConfig::test_small()
    };
    let mut net = OptInterNet::new(cfg, dims, arch);
    let frozen = freeze(&mut net, &bundle.data, Quant::F32);
    let zipf = optinter_data::zipf::Zipf::new(bundle.data.len() as u32, 1.05);

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut scorer = match FrozenScorer::new(&frozen, threads) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf: frozen scorer failed to load: {e}");
                return rows;
            }
        };

        // Single-request path: per-call wall clock around `score_into`.
        let mut rng = StdRng::seed_from_u64(0x5E21);
        let mut batch = Batch::empty();
        let mut probs = Vec::new();
        let mut score_row = |scorer: &mut FrozenScorer, batch: &mut Batch, r: usize| {
            batch.begin(bundle.data.num_fields, bundle.data.num_pairs);
            batch.push_row(bundle.data.row_fields(r), bundle.data.row_cross(r), 0.0);
            // Dataset rows are always in-vocab; a rejection here would be
            // a harness bug and shows up as empty probabilities.
            let _ = scorer.score_into(batch, &mut probs);
        };
        for _ in 0..64 {
            let r = zipf.sample(&mut rng) as usize;
            score_row(&mut scorer, &mut batch, r);
        }
        let mut lat: Vec<f64> = Vec::with_capacity(single_requests);
        let t0 = Instant::now();
        for _ in 0..single_requests {
            let r = zipf.sample(&mut rng) as usize;
            let start = Instant::now();
            score_row(&mut scorer, &mut batch, r);
            lat.push(start.elapsed().as_nanos() as f64);
        }
        let span = t0.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(&probs);
        lat.sort_by(f64::total_cmp);
        rows.push(ServeRow {
            op: "single_request".to_string(),
            threads,
            p50_ns: percentile_sorted(&lat, 0.50),
            p99_ns: percentile_sorted(&lat, 0.99),
            p999_ns: percentile_sorted(&lat, 0.999),
            rows_per_sec: single_requests as f64 / span,
        });

        // Micro-batching front door: saturating open-loop Zipf load.
        let clock = MonotonicClock::new();
        let opts = MicroBatchOptions {
            queue_slots: 64,
            max_batch: 32,
            deadline_ns: 200_000,
        };
        let spec = LoadSpec {
            requests: load_requests,
            zipf_s: 1.05,
            seed: 0x10AD,
            interarrival_ns: 0,
        };
        let report = run_zipf_load(&mut scorer, &bundle.data, &clock, &opts, &spec);
        let s = report.summary();
        rows.push(ServeRow {
            op: "micro_batch".to_string(),
            threads,
            p50_ns: s.p50_ns,
            p99_ns: s.p99_ns,
            p999_ns: s.p999_ns,
            rows_per_sec: s.rows_per_sec,
        });
    }
    rows
}

/// Appends `entry` to the JSON trajectory array at `path`, creating the
/// file (and `results/`) when missing. The existing file is spliced
/// textually — the serde shim has no parser — so entries written by older
/// kernel versions are preserved byte-for-byte.
fn append_entry(path: &str, entry: &PerfEntry) {
    let rendered = match serde_json::to_string_pretty(entry) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("perf: could not serialize entry: {e}");
            return;
        }
    };
    if let Some(dir) = std::path::Path::new(path).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("perf: could not create {}: {e}", dir.display());
            return;
        }
    }
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => {
                    // Existing but empty array.
                    format!("[\n{rendered}\n]\n")
                }
                Some(head) => format!("{}\n,\n{rendered}\n]\n", head.trim_end()),
                None => {
                    eprintln!("perf: {path} is not a JSON array; rewriting");
                    format!("[\n{rendered}\n]\n")
                }
            }
        }
        Err(_) => format!("[\n{rendered}\n]\n"),
    };
    match std::fs::write(path, merged) {
        Ok(()) => println!("perf: appended entry `{}` to {path}", entry.label),
        Err(e) => eprintln!("perf: could not write {path}: {e}"),
    }
}

/// A `(model, threads, rows_per_sec)` train-step baseline row recovered
/// from a committed trajectory file.
type BaselineRow = (String, usize, f64);

/// Extracts the train-step rows of the *last* entry in a committed
/// trajectory JSON (the output format of [`append_entry`]). Hand-rolled:
/// the serde_json shim only serializes, and the three fields we need sit
/// in flat objects. Returns an error when the file or the expected keys
/// are missing — a silent pass on malformed input would defeat the gate.
pub fn last_train_step_rows(text: &str) -> Result<Vec<BaselineRow>, String> {
    let key = "\"train_step\"";
    let at = text
        .rfind(key)
        .ok_or_else(|| "no \"train_step\" key in trajectory file".to_string())?;
    let rest = &text[at + key.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| "\"train_step\" is not an array".to_string())?;
    let mut depth = 0usize;
    let mut end = None;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let end = end.ok_or_else(|| "unterminated \"train_step\" array".to_string())?;
    let body = &rest[open + 1..end];
    let mut rows = Vec::new();
    // Objects in the array are flat (no nested braces), so splitting on
    // '}' yields one object body per chunk.
    for obj in body.split('}') {
        let Some(brace) = obj.find('{') else { continue };
        let obj = &obj[brace + 1..];
        let model = extract_json_string(obj, "model")?;
        let threads = extract_json_number(obj, "threads")? as usize;
        let rows_per_sec = extract_json_number(obj, "rows_per_sec")?;
        rows.push((model, threads, rows_per_sec));
    }
    if rows.is_empty() {
        return Err("last \"train_step\" array holds no rows".to_string());
    }
    Ok(rows)
}

fn extract_json_string(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("missing key \"{key}\""))?;
    let rest = &obj[at + pat.len()..];
    let colon = rest
        .find(':')
        .ok_or_else(|| format!("malformed \"{key}\""))?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("\"{key}\" is not a string"))?;
    let close = rest
        .find('"')
        .ok_or_else(|| format!("unterminated \"{key}\""))?;
    Ok(rest[..close].to_string())
}

fn extract_json_number(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\"");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("missing key \"{key}\""))?;
    let rest = &obj[at + pat.len()..];
    let colon = rest
        .find(':')
        .ok_or_else(|| format!("malformed \"{key}\""))?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .map_err(|e| format!("\"{key}\" is not a number: {e}"))
}

/// Extracts the serve rows `(op, threads, rows_per_sec)` of the most
/// recent entry carrying a `"serve"` section. Entries written before the
/// serving path existed have none — that is not an error; an empty
/// baseline simply disables the serve gate for the transition run.
pub fn last_serve_rows(text: &str) -> Result<Vec<BaselineRow>, String> {
    let key = "\"serve\"";
    let Some(at) = text.rfind(key) else {
        return Ok(Vec::new());
    };
    let rest = &text[at + key.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| "\"serve\" is not an array".to_string())?;
    let mut depth = 0usize;
    let mut end = None;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let end = end.ok_or_else(|| "unterminated \"serve\" array".to_string())?;
    let body = &rest[open + 1..end];
    let mut rows = Vec::new();
    for obj in body.split('}') {
        let Some(brace) = obj.find('{') else { continue };
        let obj = &obj[brace + 1..];
        let op = extract_json_string(obj, "op")?;
        let threads = extract_json_number(obj, "threads")? as usize;
        let rows_per_sec = extract_json_number(obj, "rows_per_sec")?;
        rows.push((op, threads, rows_per_sec));
    }
    Ok(rows)
}

/// Extracts `(op/variant, 1, rows_per_sec)` keys from the most recent
/// entry carrying an `"embedding_scale"` section. Entries written before
/// the giant-vocab axis existed have none — an empty baseline disables
/// the gate for the transition run, exactly like the serve section.
pub fn last_embed_scale_rows(text: &str) -> Result<Vec<BaselineRow>, String> {
    let key = "\"embedding_scale\"";
    let Some(at) = text.rfind(key) else {
        return Ok(Vec::new());
    };
    let rest = &text[at + key.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| "\"embedding_scale\" is not an array".to_string())?;
    let mut depth = 0usize;
    let mut end = None;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let end = end.ok_or_else(|| "unterminated \"embedding_scale\" array".to_string())?;
    let body = &rest[open + 1..end];
    let mut rows = Vec::new();
    for obj in body.split('}') {
        let Some(brace) = obj.find('{') else { continue };
        let obj = &obj[brace + 1..];
        let op = extract_json_string(obj, "op")?;
        let variant = extract_json_string(obj, "variant")?;
        let rows_per_sec = extract_json_number(obj, "rows_per_sec")?;
        rows.push((format!("{op}/{variant}"), 1, rows_per_sec));
    }
    Ok(rows)
}

/// Embedding-scale ops whose throughput the gate ratchets, by prefix.
/// `train_step@` rows are reported but not gated: they are a single
/// epoch-scale sample whose variance on a shared runner dwarfs the
/// tolerance (the AUC column is the invariant that matters there).
/// The scale suffix keeps quick-mode keys (`@2e5`) from ever matching a
/// committed full-scale (`@1e7`) baseline — absent keys pass.
const GATED_EMBED_OPS: &[&str] = &["lookup_grad@", "adam_apply@"];

/// Compares measured embedding-scale rows against a committed baseline,
/// keyed by `op/variant` on `rows_per_sec`. Messages are prefixed
/// `embed` so retain-keys never collide with the other sections.
pub fn embed_scale_regressions(
    measured: &[EmbedScaleRow],
    baseline: &[BaselineRow],
    tolerance: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    for row in measured {
        if !GATED_EMBED_OPS.iter().any(|p| row.op.starts_with(p)) {
            continue;
        }
        let key = format!("{}/{}", row.op, row.variant);
        let Some((_, _, base_rps)) = baseline.iter().find(|(k, _, _)| *k == key) else {
            continue;
        };
        if *base_rps <= 0.0 {
            continue;
        }
        let ratio = row.rows_per_sec / base_rps;
        if ratio < 1.0 - tolerance {
            problems.push(format!(
                "embed {key}: {:.0} rows/s vs committed {:.0} ({:+.1}%), below the \
                 {:.0}% regression tolerance",
                row.rows_per_sec,
                base_rps,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    problems
}

/// Per-row gate tolerance: `tolerance` where the row's thread count fits
/// the machine, [`OVERSUBSCRIBED_TOLERANCE`] where it does not.
fn row_tolerance(tolerance: f64, threads: usize, cores: usize) -> f64 {
    if threads > cores {
        tolerance.max(OVERSUBSCRIBED_TOLERANCE)
    } else {
        tolerance
    }
}

/// Serve ops whose throughput the gate ratchets. `micro_batch` rows are
/// reported in the results file but never gated: the open-loop front
/// door always runs a submitter thread plus the batcher alongside the
/// scorer pool, so on a small CI runner its rows/sec measures the OS
/// scheduler, not the scoring kernels — 2x run-to-run swings were
/// observed on one core. `single_request` isolates the kernels and is
/// stable enough to ratchet.
const GATED_SERVE_OPS: &[&str] = &["single_request"];

/// Compares measured serve rows against a committed baseline, keyed by
/// `(op, threads)` on `rows_per_sec`. Only [`GATED_SERVE_OPS`] rows are
/// gated; pairs absent from the baseline pass; rows oversubscribing
/// `cores` get the wider tolerance. Messages are prefixed `serve` so
/// their retain-keys never collide with train-step model names.
pub fn serve_regressions(
    measured: &[ServeRow],
    baseline: &[BaselineRow],
    tolerance: f64,
    cores: usize,
) -> Vec<String> {
    let mut problems = Vec::new();
    for row in measured {
        if !GATED_SERVE_OPS.contains(&row.op.as_str()) {
            continue;
        }
        let Some((_, _, base_rps)) = baseline
            .iter()
            .find(|(op, t, _)| *op == row.op && *t == row.threads)
        else {
            continue;
        };
        if *base_rps <= 0.0 {
            continue;
        }
        let tolerance = row_tolerance(tolerance, row.threads, cores);
        let ratio = row.rows_per_sec / base_rps;
        if ratio < 1.0 - tolerance {
            problems.push(format!(
                "serve {} t{}: {:.0} rows/s vs committed {:.0} ({:+.1}%), below the \
                 {:.0}% regression tolerance",
                row.op,
                row.threads,
                row.rows_per_sec,
                base_rps,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    problems
}

/// Compares measured train-step rows against a committed baseline.
/// Returns one message per `(model, threads)` pair whose throughput
/// dropped more than the row's tolerance (`tolerance`, widened for rows
/// oversubscribing `cores`); pairs absent from the baseline pass.
pub fn train_step_regressions(
    measured: &[TrainRow],
    baseline: &[BaselineRow],
    tolerance: f64,
    cores: usize,
) -> Vec<String> {
    let mut problems = Vec::new();
    for row in measured {
        let Some((_, _, base_rps)) = baseline
            .iter()
            .find(|(m, t, _)| *m == row.model && *t == row.threads)
        else {
            continue;
        };
        if *base_rps <= 0.0 {
            continue;
        }
        let tolerance = row_tolerance(tolerance, row.threads, cores);
        let ratio = row.rows_per_sec / base_rps;
        if ratio < 1.0 - tolerance {
            problems.push(format!(
                "{} t{}: {:.0} rows/s vs committed {:.0} ({:+.1}%), below the {:.0}% \
                 regression tolerance",
                row.model,
                row.threads,
                row.rows_per_sec,
                base_rps,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    problems
}

/// Runs the fixed workload and appends a labelled entry to the trajectory.
/// With `check_against` set, returns `Err` when any train-step throughput
/// regressed beyond [`REGRESSION_TOLERANCE`] (the entry is still written
/// first, so the failing numbers are inspectable).
pub fn run(opts: &PerfOptions) -> Result<(), String> {
    if let Some(name) = &opts.backend {
        let b = Backend::parse(name)
            .ok_or_else(|| format!("unknown kernel backend `{name}` (scalar|avx2fma)"))?;
        if !b.is_supported() {
            return Err(format!(
                "kernel backend `{name}` is not supported on this host"
            ));
        }
        kernels::set_active(b);
    }
    let backend = kernels::active().name().to_string();
    println!(
        "perf: label={} quick={} out={} backend={backend}",
        opts.label, opts.quick, opts.out
    );
    let matmul = bench_matmuls(opts.quick);
    for row in &matmul {
        println!(
            "  {:>12} {:>7} {}x{}x{} t{}: {:>10.0} ns  {:>6.2} GFLOP/s",
            row.kernel, row.variant, row.m, row.k, row.n, row.threads, row.ns_per_call, row.gflops
        );
    }
    let embedding = bench_embedding(opts.quick);
    for row in &embedding {
        println!(
            "  {:>26}: {:>10.0} ns  {:>10.0} rows/s",
            row.op, row.ns_per_call, row.rows_per_sec
        );
    }
    let embedding_scale = bench_embedding_scale(opts.quick);
    for row in &embedding_scale {
        println!(
            "  {:>16} {:>12}: {:>7.1} B/row  {:>12.0} ns  {:>10.0} rows/s  auc {:.4}",
            row.op, row.variant, row.bytes_per_row, row.ns_per_call, row.rows_per_sec, row.auc
        );
    }
    let train_step = bench_train_steps(opts.quick);
    for row in &train_step {
        println!(
            "  {:>12} t{}: {:>12.0} ns/step  {:>8.0} rows/s  loss {:.6}",
            row.model, row.threads, row.ns_per_step, row.rows_per_sec, row.last_loss
        );
    }
    let input = bench_input(opts.quick, opts.prefetch);
    for row in &input {
        println!(
            "  {:>18} {:>17} t{}: {:>12.0} ns  {:>10.0} rows/s",
            row.op, row.variant, row.threads, row.ns_per_call, row.rows_per_sec
        );
    }
    let serve = bench_serve(opts.quick);
    for row in &serve {
        println!(
            "  {:>16} t{}: p50 {:>9.0} ns  p99 {:>10.0} ns  p999 {:>10.0} ns  {:>8.0} rows/s",
            row.op, row.threads, row.p50_ns, row.p99_ns, row.p999_ns, row.rows_per_sec
        );
    }
    let entry = PerfEntry {
        label: opts.label.clone(),
        quick: opts.quick,
        backend,
        matmul,
        embedding,
        embedding_scale,
        train_step,
        input,
        serve,
    };
    // Snapshot the baseline BEFORE appending: with the default `--out` the
    // trajectory and the baseline are the same file, and reading afterwards
    // would compare the new entry against itself.
    let baseline = match &opts.check_against {
        Some(baseline_path) => {
            let text = std::fs::read_to_string(baseline_path)
                .map_err(|e| format!("check-against: cannot read {baseline_path}: {e}"))?;
            let train = last_train_step_rows(&text)
                .map_err(|e| format!("check-against: {baseline_path}: {e}"))?;
            let serve = last_serve_rows(&text)
                .map_err(|e| format!("check-against: {baseline_path}: {e}"))?;
            let embed = last_embed_scale_rows(&text)
                .map_err(|e| format!("check-against: {baseline_path}: {e}"))?;
            Some((train, serve, embed))
        }
        None => None,
    };
    append_entry(&opts.out, &entry);
    if let (Some(baseline_path), Some((train_baseline, serve_baseline, embed_baseline))) =
        (&opts.check_against, baseline)
    {
        let cores = machine_cores();
        let mut problems = train_step_regressions(
            &entry.train_step,
            &train_baseline,
            REGRESSION_TOLERANCE,
            cores,
        );
        problems.extend(serve_regressions(
            &entry.serve,
            &serve_baseline,
            REGRESSION_TOLERANCE,
            cores,
        ));
        problems.extend(embed_scale_regressions(
            &entry.embedding_scale,
            &embed_baseline,
            REGRESSION_TOLERANCE,
        ));
        if !problems.is_empty() {
            // A single median can sink below the tolerance from external
            // noise alone (shared CI runners; oversubscribed t2/t4 rows on
            // small machines). Re-measure once and fail only the rows that
            // regress in BOTH measurements: one-off noise passes, a real
            // regression reproduces.
            println!("perf: throughput regression suspected; re-measuring to confirm");
            let retry = bench_train_steps(opts.quick);
            let mut confirmed =
                train_step_regressions(&retry, &train_baseline, REGRESSION_TOLERANCE, cores);
            let retry_serve = bench_serve(opts.quick);
            confirmed.extend(serve_regressions(
                &retry_serve,
                &serve_baseline,
                REGRESSION_TOLERANCE,
                cores,
            ));
            let retry_embed = bench_embedding_scale(opts.quick);
            confirmed.extend(embed_scale_regressions(
                &retry_embed,
                &embed_baseline,
                REGRESSION_TOLERANCE,
            ));
            let confirmed_rows: Vec<&str> = confirmed
                .iter()
                .filter_map(|p| p.split(':').next())
                .collect();
            problems.retain(|p| {
                p.split(':')
                    .next()
                    .is_some_and(|k| confirmed_rows.contains(&k))
            });
        }
        if problems.is_empty() {
            println!(
                "perf: train-step, serve and embedding-scale throughput within {:.0}% of \
                 {baseline_path}",
                REGRESSION_TOLERANCE * 100.0
            );
        } else {
            return Err(format!(
                "throughput regressed vs {baseline_path}:\n  {}",
                problems.join("\n  ")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory(rps_a: f64, rps_b: f64) -> String {
        // Two entries: the extractor must pick the LAST one.
        format!(
            r#"[
{{
  "label": "old",
  "train_step": [
    {{"model": "supernet", "threads": 1, "ns_per_step": 1.0, "rows_per_sec": 1.0, "last_loss": 0.1}}
  ]
}}
,
{{
  "label": "new",
  "train_step": [
    {{"model": "supernet", "threads": 1, "ns_per_step": 1.0, "rows_per_sec": {rps_a}, "last_loss": 0.1}},
    {{"model": "optinternet", "threads": 2, "ns_per_step": 1.0, "rows_per_sec": {rps_b}, "last_loss": 0.2}}
  ]
}}
]"#
        )
    }

    fn measured(model: &str, threads: usize, rows_per_sec: f64) -> TrainRow {
        TrainRow {
            model: model.to_string(),
            threads,
            ns_per_step: 0.0,
            rows_per_sec,
            last_loss: 0.0,
        }
    }

    #[test]
    fn extractor_reads_the_last_entry() {
        let rows = last_train_step_rows(&trajectory(1000.0, 2000.0)).expect("parse");
        assert_eq!(
            rows,
            vec![
                ("supernet".to_string(), 1, 1000.0),
                ("optinternet".to_string(), 2, 2000.0),
            ]
        );
    }

    #[test]
    fn extractor_rejects_malformed_input() {
        assert!(last_train_step_rows("{}").is_err());
        assert!(last_train_step_rows("{\"train_step\": 3}").is_err());
        assert!(last_train_step_rows("{\"train_step\": []}").is_err());
        assert!(last_train_step_rows("{\"train_step\": [{\"model\": \"x\"}]}").is_err());
    }

    fn serve_trajectory(rps: f64) -> String {
        format!(
            r#"[
{{
  "label": "new",
  "train_step": [
    {{"model": "supernet", "threads": 1, "ns_per_step": 1.0, "rows_per_sec": 1.0, "last_loss": 0.1}}
  ],
  "serve": [
    {{"op": "single_request", "threads": 1, "p50_ns": 10.0, "p99_ns": 20.0, "p999_ns": 30.0, "rows_per_sec": {rps}}},
    {{"op": "single_request", "threads": 4, "p50_ns": 10.0, "p99_ns": 20.0, "p999_ns": 30.0, "rows_per_sec": 8000.0}},
    {{"op": "micro_batch", "threads": 4, "p50_ns": 10.0, "p99_ns": 20.0, "p999_ns": 30.0, "rows_per_sec": 9000.0}}
  ]
}}
]"#
        )
    }

    fn measured_serve(op: &str, threads: usize, rows_per_sec: f64) -> ServeRow {
        ServeRow {
            op: op.to_string(),
            threads,
            p50_ns: 0.0,
            p99_ns: 0.0,
            p999_ns: 0.0,
            rows_per_sec,
        }
    }

    #[test]
    fn serve_extractor_tolerates_pre_serving_trajectories() {
        // Entries written before the serving path have no "serve" section:
        // that must be an empty baseline, not an error.
        assert_eq!(
            last_serve_rows(&trajectory(1.0, 2.0)).expect("tolerated"),
            Vec::new()
        );
        let rows = last_serve_rows(&serve_trajectory(5000.0)).expect("parse");
        assert_eq!(
            rows,
            vec![
                ("single_request".to_string(), 1, 5000.0),
                ("single_request".to_string(), 4, 8000.0),
                ("micro_batch".to_string(), 4, 9000.0),
            ]
        );
        // A present-but-broken section still fails loudly.
        assert!(last_serve_rows("{\"serve\": [{\"op\": \"x\"}]}").is_err());
    }

    #[test]
    fn serve_gate_fires_only_beyond_tolerance() {
        let baseline = last_serve_rows(&serve_trajectory(5000.0)).expect("parse");
        let ok = [
            measured_serve("single_request", 1, 4800.0),
            measured_serve("single_request", 4, 20000.0),
        ];
        assert!(serve_regressions(&ok, &baseline, 0.10, usize::MAX).is_empty());
        let bad = [measured_serve("single_request", 1, 4000.0)];
        let problems = serve_regressions(&bad, &baseline, 0.10, usize::MAX);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].starts_with("serve single_request t1"),
            "{problems:?}"
        );
        // Unknown (op, threads) pairs are skipped, not failed.
        let unknown = [measured_serve("single_request", 9, 1.0)];
        assert!(serve_regressions(&unknown, &baseline, 0.10, usize::MAX).is_empty());
        // micro_batch rows are never gated, however bad: the open-loop
        // front door's throughput is scheduler noise on a small machine.
        let micro = [measured_serve("micro_batch", 4, 1.0)];
        assert!(serve_regressions(&micro, &baseline, 0.10, usize::MAX).is_empty());
    }

    #[test]
    fn oversubscribed_rows_get_the_wider_tolerance() {
        // Baseline: single_request t1 = 5000 and t4 = 8000.
        let baseline = last_serve_rows(&serve_trajectory(5000.0)).expect("parse");
        // A 20% drop on a t4 row: fails on a 4-core machine, passes on a
        // 1-core machine where t4 medians are scheduling noise.
        let dropped = [measured_serve("single_request", 4, 6400.0)];
        assert_eq!(serve_regressions(&dropped, &baseline, 0.10, 4).len(), 1);
        assert!(serve_regressions(&dropped, &baseline, 0.10, 1).is_empty());
        // Even on 1 core, a drop beyond OVERSUBSCRIBED_TOLERANCE fails.
        let collapsed = [measured_serve("single_request", 4, 4000.0)];
        assert_eq!(serve_regressions(&collapsed, &baseline, 0.10, 1).len(), 1);
        // Fitting rows keep the strict tolerance regardless of cores.
        let t1_dropped = [measured_serve("single_request", 1, 4000.0)];
        assert_eq!(serve_regressions(&t1_dropped, &baseline, 0.10, 1).len(), 1);
        // Train rows widen the same way.
        let train_baseline = last_train_step_rows(&trajectory(1000.0, 2000.0)).expect("parse");
        let t2_dropped = [measured("optinternet", 2, 1700.0)];
        assert_eq!(
            train_step_regressions(&t2_dropped, &train_baseline, 0.10, 2).len(),
            1
        );
        assert!(train_step_regressions(&t2_dropped, &train_baseline, 0.10, 1).is_empty());
    }

    fn embed_trajectory(rps: f64) -> String {
        format!(
            r#"[
{{
  "label": "new",
  "embedding_scale": [
    {{"op": "lookup_grad@1e7", "variant": "dense", "bytes_per_row": 192.0, "ns_per_call": 1.0, "rows_per_sec": {rps}, "auc": 0.0}},
    {{"op": "adam_apply@1e7", "variant": "lazy", "bytes_per_row": 192.0, "ns_per_call": 1.0, "rows_per_sec": 9000.0, "auc": 0.0}},
    {{"op": "train_step@1e7", "variant": "hashed_qr", "bytes_per_row": 30.0, "ns_per_call": 1.0, "rows_per_sec": 4000.0, "auc": 0.79}}
  ]
}}
]"#
        )
    }

    fn measured_embed(op: &str, variant: &str, rows_per_sec: f64) -> EmbedScaleRow {
        EmbedScaleRow {
            op: op.to_string(),
            variant: variant.to_string(),
            bytes_per_row: 0.0,
            ns_per_call: 0.0,
            rows_per_sec,
            auc: 0.0,
        }
    }

    #[test]
    fn embed_extractor_tolerates_pre_scale_trajectories() {
        // Entries written before the giant-vocab axis have no
        // "embedding_scale" section: empty baseline, not an error.
        assert_eq!(
            last_embed_scale_rows(&trajectory(1.0, 2.0)).expect("tolerated"),
            Vec::new()
        );
        let rows = last_embed_scale_rows(&embed_trajectory(5000.0)).expect("parse");
        assert_eq!(
            rows,
            vec![
                ("lookup_grad@1e7/dense".to_string(), 1, 5000.0),
                ("adam_apply@1e7/lazy".to_string(), 1, 9000.0),
                ("train_step@1e7/hashed_qr".to_string(), 1, 4000.0),
            ]
        );
        assert!(last_embed_scale_rows("{\"embedding_scale\": [{\"op\": \"x\"}]}").is_err());
    }

    #[test]
    fn embed_gate_fires_only_on_gated_ops_beyond_tolerance() {
        let baseline = last_embed_scale_rows(&embed_trajectory(5000.0)).expect("parse");
        let ok = [measured_embed("lookup_grad@1e7", "dense", 4800.0)];
        assert!(embed_scale_regressions(&ok, &baseline, 0.10).is_empty());
        let bad = [measured_embed("lookup_grad@1e7", "dense", 4000.0)];
        let problems = embed_scale_regressions(&bad, &baseline, 0.10);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(
            problems[0].starts_with("embed lookup_grad@1e7/dense"),
            "{problems:?}"
        );
        // Quick-mode keys carry a different scale suffix and never match
        // a committed full-scale baseline.
        let quick = [measured_embed("lookup_grad@2e5", "dense", 1.0)];
        assert!(embed_scale_regressions(&quick, &baseline, 0.10).is_empty());
        // train_step rows are reported, never gated.
        let train = [measured_embed("train_step@1e7", "hashed_qr", 1.0)];
        assert!(embed_scale_regressions(&train, &baseline, 0.10).is_empty());
    }

    #[test]
    fn regression_gate_fires_only_beyond_tolerance() {
        let baseline = last_train_step_rows(&trajectory(1000.0, 2000.0)).expect("parse");
        // Within tolerance (and even faster) passes.
        let ok = [
            measured("supernet", 1, 950.0),
            measured("optinternet", 2, 2500.0),
        ];
        assert!(train_step_regressions(&ok, &baseline, 0.10, usize::MAX).is_empty());
        // An 11% drop fails, and names the offending pair.
        let bad = [
            measured("supernet", 1, 890.0),
            measured("optinternet", 2, 2000.0),
        ];
        let problems = train_step_regressions(&bad, &baseline, 0.10, usize::MAX);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("supernet t1"), "{problems:?}");
        // Pairs with no committed counterpart are skipped, not failed.
        let unknown = [measured("fm", 4, 1.0)];
        assert!(train_step_regressions(&unknown, &baseline, 0.10, usize::MAX).is_empty());
    }
}
