//! Fixed-workload substrate performance measurements with a committed
//! JSON trajectory (`results/BENCH_substrate.json`).
//!
//! Every entry appended by [`run`] is labelled, so before/after pairs from
//! perf-focused PRs remain comparable forever. The workload is frozen (see
//! the `--bin perf` docs); only iteration counts shrink under `--quick`.

use optinter_core::net::DataDims;
use optinter_core::{Architecture, Method, OptInterConfig, OptInterNet, Supernet};
use optinter_data::{Batch, BatchIter, Profile};
use optinter_nn::{Adam, EmbeddingTable};
use optinter_tensor::{init, Matrix, Pool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// Options for a perf run.
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Entry label recorded in the JSON (e.g. `pr3-before`).
    pub label: String,
    /// Smoke mode: tiny iteration counts, same workload and shapes.
    pub quick: bool,
    /// Output JSON path.
    pub out: String,
}

impl Default for PerfOptions {
    fn default() -> Self {
        Self {
            label: "dev".to_string(),
            quick: false,
            out: "results/BENCH_substrate.json".to_string(),
        }
    }
}

/// One timed kernel measurement.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Kernel name (`matmul`, `matmul_at_b`, `matmul_a_bt`).
    pub kernel: String,
    /// Kernel variant (`naive` reference or `blocked`).
    pub variant: String,
    /// `A` rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// `B` columns.
    pub n: usize,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Median wall-clock per call.
    pub ns_per_call: f64,
    /// Throughput in `2*m*k*n / time` GFLOP/s.
    pub gflops: f64,
}

/// Embedding-path measurement (batch 256 x 12 fields, 50k x 16 table).
#[derive(Debug, Clone, Serialize)]
pub struct EmbeddingRow {
    /// Measured operation.
    pub op: String,
    /// Median wall-clock per call.
    pub ns_per_call: f64,
    /// Batch rows processed per second.
    pub rows_per_sec: f64,
}

/// Full train-step measurement at batch 256.
#[derive(Debug, Clone, Serialize)]
pub struct TrainRow {
    /// Model (`supernet` or `optinternet`).
    pub model: String,
    /// Worker threads.
    pub threads: usize,
    /// Median wall-clock per training step.
    pub ns_per_step: f64,
    /// Examples per second at batch 256.
    pub rows_per_sec: f64,
    /// Final-step loss, as a cross-run determinism fingerprint.
    pub last_loss: f32,
}

/// One labelled perf run (an element of the JSON trajectory array).
#[derive(Debug, Clone, Serialize)]
pub struct PerfEntry {
    /// Run label (`--label`).
    pub label: String,
    /// Whether this was a `--quick` smoke run.
    pub quick: bool,
    /// Kernel micro measurements.
    pub matmul: Vec<KernelRow>,
    /// Embedding accumulate/update measurements.
    pub embedding: Vec<EmbeddingRow>,
    /// End-to-end train-step measurements.
    pub train_step: Vec<TrainRow>,
}

/// Median nanoseconds per call of `f` over `samples` timed runs.
fn time_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    f(); // warm-up
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    times[times.len() / 2]
}

const MATMUL_SHAPES: [(usize, usize, usize); 2] = [(256, 720, 64), (128, 256, 64)];

fn bench_matmul_variant(
    rows: &mut Vec<KernelRow>,
    variant: &str,
    samples: usize,
    run: &dyn Fn(&str, &Matrix, &Matrix, &mut Matrix, &Pool),
) {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    for &(m, k, n) in &MATMUL_SHAPES {
        // Forward product `[m,k] x [k,n]`, the weight-gradient shape
        // `[m,k]^T x [m,n]` and the input-gradient shape `[m,n] x [k,n]^T`.
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let b = init::uniform(&mut rng, k, n, -1.0, 1.0);
        let g = init::uniform(&mut rng, m, n, -1.0, 1.0);
        let cases: [(&str, &Matrix, &Matrix, (usize, usize)); 3] = [
            ("matmul", &a, &b, (m, n)),
            ("matmul_at_b", &a, &g, (k, n)),
            ("matmul_a_bt", &g, &b, (m, k)),
        ];
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for (name, lhs, rhs, (or, oc)) in cases {
                let mut out = Matrix::zeros(or, oc);
                let ns = time_ns(samples, || run(name, lhs, rhs, &mut out, &pool));
                std::hint::black_box(out.as_slice());
                rows.push(KernelRow {
                    kernel: name.to_string(),
                    variant: variant.to_string(),
                    m,
                    k,
                    n,
                    threads,
                    ns_per_call: ns,
                    gflops: 2.0 * (m * k * n) as f64 / ns,
                });
            }
        }
    }
}

fn bench_matmuls(quick: bool) -> Vec<KernelRow> {
    let samples = if quick { 3 } else { 30 };
    let mut rows = Vec::new();
    bench_matmul_variant(
        &mut rows,
        "blocked",
        samples,
        &|name, lhs, rhs, out, pool| match name {
            "matmul" => lhs.matmul_into_pooled(rhs, out, pool),
            "matmul_at_b" => {
                out.fill_zero();
                lhs.matmul_at_b_accumulate_pooled(rhs, out, 1.0, pool)
            }
            _ => lhs.matmul_a_bt_into_pooled(rhs, out, pool),
        },
    );
    bench_matmul_variant(
        &mut rows,
        "naive",
        samples,
        &|name, lhs, rhs, out, _pool| {
            use optinter_tensor::reference;
            match name {
                "matmul" => {
                    out.fill_zero();
                    reference::matmul_accumulate(lhs, rhs, out, 1.0)
                }
                "matmul_at_b" => {
                    out.fill_zero();
                    reference::matmul_at_b_accumulate(lhs, rhs, out, 1.0)
                }
                _ => reference::matmul_a_bt_into(lhs, rhs, out),
            }
        },
    );
    rows
}

fn bench_embedding(quick: bool) -> Vec<EmbeddingRow> {
    let samples = if quick { 3 } else { 30 };
    let (vocab, dim, batch, fields) = (50_000usize, 16usize, 256usize, 12usize);
    let mut rng = StdRng::seed_from_u64(0xE3B);
    let mut table = EmbeddingTable::new(&mut rng, vocab, dim);
    let ids: Vec<u32> = (0..batch * fields)
        .map(|i| (i * 37 % vocab) as u32)
        .collect();
    let grad = Matrix::from_fn(batch, fields * dim, |r, c| {
        ((r * 31 + c) as f32 * 0.01).sin()
    });
    let mut rows = Vec::new();
    let lookup_ns = time_ns(samples, || {
        std::hint::black_box(table.lookup_fields(&ids, fields));
    });
    rows.push(EmbeddingRow {
        op: "lookup_fields".to_string(),
        ns_per_call: lookup_ns,
        rows_per_sec: batch as f64 / (lookup_ns * 1e-9),
    });
    let adam = Adam::with_lr_eps(1e-3, 1e-8);
    let acc_ns = time_ns(samples, || {
        table.accumulate_grad_fields(&ids, fields, &grad);
        table.apply_adam(&adam, 1e-4);
    });
    rows.push(EmbeddingRow {
        op: "accumulate_and_sparse_adam".to_string(),
        ns_per_call: acc_ns,
        rows_per_sec: batch as f64 / (acc_ns * 1e-9),
    });
    rows
}

fn train_batch_256(bundle: &optinter_data::DatasetBundle) -> Option<Batch> {
    BatchIter::new(&bundle.data, 0..256, 256, None).next()
}

fn bench_train_steps(quick: bool) -> Vec<TrainRow> {
    let steps = if quick { 3 } else { 25 };
    let bundle = Profile::Tiny.bundle_with_rows(2_000, 9);
    let dims = DataDims::of(&bundle.data);
    let Some(batch) = train_batch_256(&bundle) else {
        eprintln!("perf: could not build a 256-row batch");
        return Vec::new();
    };
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = OptInterConfig {
            seed: 7,
            num_threads: threads,
            batch_size: 256,
            ..OptInterConfig::test_small()
        };
        let mut super_net = Supernet::new(cfg.clone(), dims.clone());
        let mut last_loss = 0.0f32;
        let ns = time_ns(steps, || {
            last_loss = super_net.train_batch(&batch, 0.7);
        });
        rows.push(TrainRow {
            model: "supernet".to_string(),
            threads,
            ns_per_step: ns,
            rows_per_sec: 256.0 / (ns * 1e-9),
            last_loss,
        });
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        let mut net = OptInterNet::new(cfg, dims.clone(), arch);
        let ns = time_ns(steps, || {
            last_loss = net.train_batch(&batch);
        });
        rows.push(TrainRow {
            model: "optinternet".to_string(),
            threads,
            ns_per_step: ns,
            rows_per_sec: 256.0 / (ns * 1e-9),
            last_loss,
        });
    }
    rows
}

/// Appends `entry` to the JSON trajectory array at `path`, creating the
/// file (and `results/`) when missing. The existing file is spliced
/// textually — the serde shim has no parser — so entries written by older
/// kernel versions are preserved byte-for-byte.
fn append_entry(path: &str, entry: &PerfEntry) {
    let rendered = match serde_json::to_string_pretty(entry) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("perf: could not serialize entry: {e}");
            return;
        }
    };
    if let Some(dir) = std::path::Path::new(path).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("perf: could not create {}: {e}", dir.display());
            return;
        }
    }
    let merged = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => {
                    // Existing but empty array.
                    format!("[\n{rendered}\n]\n")
                }
                Some(head) => format!("{}\n,\n{rendered}\n]\n", head.trim_end()),
                None => {
                    eprintln!("perf: {path} is not a JSON array; rewriting");
                    format!("[\n{rendered}\n]\n")
                }
            }
        }
        Err(_) => format!("[\n{rendered}\n]\n"),
    };
    match std::fs::write(path, merged) {
        Ok(()) => println!("perf: appended entry `{}` to {path}", entry.label),
        Err(e) => eprintln!("perf: could not write {path}: {e}"),
    }
}

/// Runs the fixed workload and appends a labelled entry to the trajectory.
pub fn run(opts: &PerfOptions) {
    println!(
        "perf: label={} quick={} out={}",
        opts.label, opts.quick, opts.out
    );
    let matmul = bench_matmuls(opts.quick);
    for row in &matmul {
        println!(
            "  {:>12} {:>7} {}x{}x{} t{}: {:>10.0} ns  {:>6.2} GFLOP/s",
            row.kernel, row.variant, row.m, row.k, row.n, row.threads, row.ns_per_call, row.gflops
        );
    }
    let embedding = bench_embedding(opts.quick);
    for row in &embedding {
        println!(
            "  {:>26}: {:>10.0} ns  {:>10.0} rows/s",
            row.op, row.ns_per_call, row.rows_per_sec
        );
    }
    let train_step = bench_train_steps(opts.quick);
    for row in &train_step {
        println!(
            "  {:>12} t{}: {:>12.0} ns/step  {:>8.0} rows/s  loss {:.6}",
            row.model, row.threads, row.ns_per_step, row.rows_per_sec, row.last_loss
        );
    }
    let entry = PerfEntry {
        label: opts.label.clone(),
        quick: opts.quick,
        matmul,
        embedding,
        train_step,
    };
    append_entry(&opts.out, &entry);
}
