//! Runs the entire experiment suite (every table and figure) sequentially.

use optinter_bench::experiments;

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    let t0 = std::time::Instant::now();
    experiments::table2::run(&opts);
    let _ = experiments::table5::run(&opts);
    experiments::table6::run(&opts);
    experiments::table7::run(&opts);
    experiments::table8::run(&opts);
    experiments::table9::run(&opts);
    experiments::figure4::run(&opts);
    experiments::figure5::run(&opts);
    experiments::figure6::run(&opts);
    println!("\nFull suite completed in {:.1?}", t0.elapsed());
}
