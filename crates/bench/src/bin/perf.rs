//! Substrate performance baseline: fixed-seed kernel and train-step
//! throughput, appended to `results/BENCH_substrate.json`.
//!
//! Unlike the criterion micro-benchmarks (relative, interactive), this
//! binary exists to leave a *committed trajectory*: every perf-focused PR
//! runs it before and after and appends a labelled entry, so regressions
//! and wins stay visible in-repo. The workload is fixed: the matmul shapes
//! of a batch-256 MLP step (including the 256x720x64 forward product), the
//! sparse embedding accumulate/update path, the embedding-scale section
//! (dense vs compositional hashed stores and dense-apply vs lazy Adam
//! over a 10^7 key space, plus dense-vs-hashed train-step AUC on the
//! giant_vocab profile), one full training step of the search-stage
//! supernet and the fixed-architecture OptInterNet at 1, 2 and 4
//! threads, and the input pipeline on the AvazuLike profile
//! (cross-vocabulary build, row encoding, batch assembly, and full epochs
//! with/without the prefetching stream).
//!
//! Usage: `cargo run --release -p optinter-bench --bin perf -- [--quick]
//! [--label NAME] [--out PATH] [--no-prefetch] [--check-against PATH]
//! [--backend scalar|avx2fma]`.
//! `--quick` shrinks iteration counts to a smoke run (seconds, used by CI
//! to catch kernels that panic on odd shapes); the JSON is still written.
//! `--no-prefetch` runs the epoch measurements without assembly/compute
//! overlap (the stream rows are then labelled `stream_serial`), for A/B
//! comparisons. `--check-against PATH` exits non-zero when any train-step
//! `rows_per_sec` lands more than 10% below the matching row of the last
//! entry in PATH (the committed trajectory), so CI catches throughput
//! regressions, not just panics. `--backend` forces the kernel backend for
//! the train/input/serve sections (the per-backend kernel section always
//! measures every supported backend); the selection is recorded in the
//! entry's `backend` field. CI gates with `--backend scalar` so the
//! committed train/serve rows stay comparable across hosts.

use optinter_bench::perf::{self, PerfOptions};

fn main() {
    let mut opts = PerfOptions::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--no-prefetch" => opts.prefetch = false,
            "--label" => {
                if let Some(v) = args.get(i + 1) {
                    opts.label = v.clone();
                    i += 1;
                }
            }
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    opts.out = v.clone();
                    i += 1;
                }
            }
            "--check-against" => {
                if let Some(v) = args.get(i + 1) {
                    opts.check_against = Some(v.clone());
                    i += 1;
                }
            }
            "--backend" => {
                if let Some(v) = args.get(i + 1) {
                    opts.backend = Some(v.clone());
                    i += 1;
                }
            }
            other => eprintln!("perf: ignoring unknown flag {other}"),
        }
        i += 1;
    }
    if let Err(e) = perf::run(&opts) {
        eprintln!("perf: FAILED: {e}");
        std::process::exit(1);
    }
}
