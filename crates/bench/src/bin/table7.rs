//! Regenerates the paper's table7. See `optinter-bench` docs for options.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    optinter_bench::experiments::table7::run(&opts);
}
