//! Regenerates the paper's figure6. See `optinter-bench` docs for options.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    optinter_bench::experiments::figure6::run(&opts);
}
