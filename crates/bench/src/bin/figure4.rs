//! Regenerates the paper's figure4. See `optinter-bench` docs for options.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    optinter_bench::experiments::figure4::run(&opts);
}
