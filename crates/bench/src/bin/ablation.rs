//! Design-choice ablations: factorization function, temperature schedule.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    optinter_bench::experiments::ablation::run(&opts);
}
