//! Regenerates the paper's table2. See `optinter-bench` docs for options.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    optinter_bench::experiments::table2::run(&opts);
}
