//! Regenerates the paper's table9. See `optinter-bench` docs for options.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    optinter_bench::experiments::table9::run(&opts);
}
