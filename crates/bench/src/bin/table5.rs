//! Regenerates the paper's table5. See `optinter-bench` docs for options.

fn main() {
    let opts = optinter_bench::ExpOptions::from_args();
    let _ = optinter_bench::experiments::table5::run(&opts);
}
