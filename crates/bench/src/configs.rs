//! Per-profile hyper-parameters — the Table IV analogue, scaled to the
//! synthetic substrate — plus command-line options shared by all binaries.

use optinter_core::OptInterConfig;
use optinter_data::Profile;
use optinter_models::BaselineConfig;

/// Baseline hyper-parameters for a profile (Table IV, scaled). `threads`
/// selects the intra-batch data-parallel worker count (1 = serial); any
/// value yields bit-identical results.
pub fn baseline_config(profile: Profile, seed: u64, threads: usize) -> BaselineConfig {
    let mut cfg = BaselineConfig {
        seed,
        num_threads: threads,
        ..BaselineConfig::default()
    };
    match profile {
        Profile::CriteoLike => {
            cfg.embed_dim = 16;
        }
        Profile::AvazuLike => {
            cfg.embed_dim = 16;
        }
        Profile::IpinyouLike => {
            cfg.embed_dim = 12;
            // Rare positives: smaller LR stabilises training (the paper
            // similarly uses a much smaller lr_o on iPinYou).
            cfg.lr = 2e-3;
        }
        Profile::PrivateLike => {
            cfg.embed_dim = 16;
        }
        Profile::Tiny => {
            cfg = BaselineConfig {
                seed,
                num_threads: threads,
                ..BaselineConfig::test_small()
            };
        }
        Profile::GiantVocab => {
            cfg.embed_dim = 16;
        }
    }
    cfg
}

/// OptInter hyper-parameters for a profile (Table IV, scaled). `s2` follows
/// the paper's per-dataset cross-embedding sizes (Criteo 10, Avazu 4,
/// iPinYou 2), scaled down together with `s1`.
pub fn optinter_config(profile: Profile, seed: u64, threads: usize) -> OptInterConfig {
    let base = baseline_config(profile, seed, threads);
    let mut cfg = OptInterConfig {
        orig_dim: base.embed_dim,
        hidden: base.hidden.clone(),
        layer_norm: base.layer_norm,
        batch_size: base.batch_size,
        lr: base.lr,
        lr_cross: base.lr,
        adam_eps: base.adam_eps,
        retrain_epochs: base.epochs,
        seed,
        num_threads: threads,
        ..OptInterConfig::default()
    };
    match profile {
        Profile::CriteoLike => cfg.cross_dim = 8,
        Profile::AvazuLike => cfg.cross_dim = 4,
        Profile::IpinyouLike => cfg.cross_dim = 2,
        Profile::PrivateLike => cfg.cross_dim = 8,
        Profile::Tiny => {
            cfg = OptInterConfig {
                seed,
                num_threads: threads,
                ..OptInterConfig::test_small()
            };
        }
        Profile::GiantVocab => cfg.cross_dim = 8,
    }
    cfg
}

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Dataset rows per profile (`None` = the profile default).
    pub rows: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Repeats for significance tests.
    pub repeats: usize,
    /// Quick smoke mode (tiny datasets, 1 repeat).
    pub quick: bool,
    /// Intra-batch data-parallel threads (1 = serial, bit-identical either
    /// way).
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            rows: None,
            seed: 42,
            repeats: 5,
            quick: false,
            threads: 1,
        }
    }
}

impl ExpOptions {
    /// Parses `--rows N`, `--seed S`, `--repeats R`, `--threads T` and
    /// `--quick` from `std::env::args`, ignoring unknown flags.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--rows" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.rows = Some(v);
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--repeats" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.repeats = v;
                        i += 1;
                    }
                }
                "--threads" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.threads = v;
                        i += 1;
                    }
                }
                "--quick" => opts.quick = true,
                _ => {}
            }
            i += 1;
        }
        if opts.quick {
            opts.rows.get_or_insert(6_000);
            opts.repeats = opts.repeats.min(2);
        }
        opts
    }

    /// Rows to generate for a profile under these options.
    pub fn rows_for(&self, profile: Profile) -> usize {
        self.rows.unwrap_or_else(|| profile.default_rows())
    }

    /// Generates the bundle for a profile under these options.
    pub fn bundle(&self, profile: Profile) -> optinter_data::DatasetBundle {
        profile.bundle_with_rows(self.rows_for(profile), self.seed)
    }

    /// Baseline hyper-parameters for a profile under these options.
    pub fn baseline_config(&self, profile: Profile) -> BaselineConfig {
        baseline_config(profile, self.seed, self.threads)
    }

    /// OptInter hyper-parameters for a profile under these options.
    pub fn optinter_config(&self, profile: Profile) -> OptInterConfig {
        optinter_config(profile, self.seed, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_follow_paper_s2_ordering() {
        // Criteo s2 > Avazu s2 > iPinYou s2, as in Table IV.
        let c = optinter_config(Profile::CriteoLike, 0, 1).cross_dim;
        let a = optinter_config(Profile::AvazuLike, 0, 1).cross_dim;
        let i = optinter_config(Profile::IpinyouLike, 0, 1).cross_dim;
        assert!(c > a && a > i, "{c} {a} {i}");
    }

    #[test]
    fn options_default_uses_profile_rows() {
        let opts = ExpOptions::default();
        assert_eq!(opts.rows_for(Profile::Tiny), Profile::Tiny.default_rows());
    }

    #[test]
    fn baseline_and_optinter_configs_agree() {
        for p in Profile::paper_datasets() {
            let b = baseline_config(p, 7, 4);
            let o = optinter_config(p, 7, 4);
            assert_eq!(b.embed_dim, o.orig_dim);
            assert_eq!(b.hidden, o.hidden);
            assert_eq!(b.seed, o.seed);
            assert_eq!(b.num_threads, 4);
            assert_eq!(o.num_threads, 4);
        }
    }

    #[test]
    fn threads_flag_reaches_both_configs() {
        let opts = ExpOptions {
            threads: 3,
            ..ExpOptions::default()
        };
        assert_eq!(opts.baseline_config(Profile::Tiny).num_threads, 3);
        assert_eq!(opts.optinter_config(Profile::Tiny).num_threads, 3);
    }
}
