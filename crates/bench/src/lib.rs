//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section on the synthetic substrate.
//!
//! One binary per experiment (see `src/bin/`):
//!
//! | binary    | reproduces | what it prints |
//! |-----------|------------|----------------|
//! | `table2`  | Table II   | dataset statistics for the four profiles |
//! | `table5`  | Table V    | AUC / log-loss / params for every model on every profile (plus Table VI counts) |
//! | `table6`  | Table VI   | `[memorize, factorize, naive]` selection per model |
//! | `table7`  | Table VII  | equal-parameter comparison vs enlarged baselines |
//! | `table8`  | Table VIII | Random vs Bi-level vs OptInter search |
//! | `table9`  | Table IX   | with vs without re-train |
//! | `figure4` | Fig. 4     | params-vs-AUC trade-off series |
//! | `figure5` | Fig. 5     | mean mutual information per selected method |
//! | `figure6` | Fig. 6     | MI heat-map and selection map |
//! | `all`     | everything | runs the full suite sequentially |
//!
//! Each binary accepts `--rows N` (dataset size), `--seed S` and `--quick`
//! (shrink everything for a smoke run). Results are printed as markdown and
//! appended as JSON to `results/` for EXPERIMENTS.md bookkeeping.

#![forbid(unsafe_code)]

pub mod configs;
pub mod experiments;
pub mod perf;
pub mod report;
pub mod runner;

pub use configs::{baseline_config, optinter_config, ExpOptions};
pub use report::{render_table, save_json, Table};
pub use runner::{run_baseline_row, run_optinter_rows, Row};
