//! Criterion micro-benchmarks for the substrate hot paths: matmul, embedding
//! lookup/update, Gumbel sampling, AUC, data generation, and one full
//! training step for representative models (including the OptInter supernet
//! — the search-stage overhead the paper discusses for Table VIII).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use optinter_core::net::DataDims;
use optinter_core::{Architecture, Method, OptInterConfig, OptInterNet, Supernet};
use optinter_data::{BatchIter, BatchStream, Profile};
use optinter_models::{build_model, BaselineConfig, ModelKind};
use optinter_nn::{Adam, EmbeddingTable};
use optinter_tensor::{init, reference, Matrix, Pool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(0);
    for &(m, k, n) in &[(128usize, 256usize, 64usize), (256, 720, 64)] {
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let b = init::uniform(&mut rng, k, n, -1.0, 1.0);
        group.bench_function(format!("matmul_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(m, n);
            bench.iter(|| a.matmul_into(&b, &mut out));
        });
        for threads in [2usize, 4] {
            let pool = Pool::new(threads);
            group.bench_function(format!("matmul_{m}x{k}x{n}_t{threads}"), |bench| {
                bench.iter(|| a.matmul_pooled(&b, &pool));
            });
        }
        // Blocked (production) vs naive (reference) kernels, same shapes:
        // keeps the microkernel speedup visible as a ratio in every run.
        group.bench_function(format!("matmul_blocked_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(m, n);
            bench.iter(|| a.matmul_accumulate(&b, &mut out, 1.0));
        });
        group.bench_function(format!("matmul_naive_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(m, n);
            bench.iter(|| reference::matmul_accumulate(&a, &b, &mut out, 1.0));
        });
        let g = init::uniform(&mut rng, m, n, -1.0, 1.0);
        group.bench_function(format!("matmul_at_b_blocked_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(k, n);
            bench.iter(|| a.matmul_at_b_accumulate(&g, &mut out, 1.0));
        });
        group.bench_function(format!("matmul_at_b_naive_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(k, n);
            bench.iter(|| reference::matmul_at_b_accumulate(&a, &g, &mut out, 1.0));
        });
        let bt = init::uniform(&mut rng, n, k, -1.0, 1.0);
        group.bench_function(format!("matmul_a_bt_blocked_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(m, n);
            bench.iter(|| a.matmul_a_bt_into(&bt, &mut out));
        });
        group.bench_function(format!("matmul_a_bt_naive_{m}x{k}x{n}"), |bench| {
            let mut out = Matrix::zeros(m, n);
            bench.iter(|| reference::matmul_a_bt_into(&a, &bt, &mut out));
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(1);
    let table_size = 50_000;
    let dim = 16;
    let batch = 128;
    let fields = 12;
    let mut table = EmbeddingTable::new(&mut rng, table_size, dim);
    let ids: Vec<u32> = (0..batch * fields)
        .map(|i| (i * 37 % table_size) as u32)
        .collect();
    group.bench_function("lookup_fields_128x12x16", |b| {
        b.iter(|| table.lookup_fields(&ids, fields));
    });
    let grad = Matrix::filled(batch, fields * dim, 0.01);
    let adam = Adam::with_lr_eps(1e-3, 1e-8);
    group.bench_function("accumulate_and_sparse_adam", |b| {
        b.iter(|| {
            table.accumulate_grad_fields(&ids, fields, &grad);
            table.apply_adam(&adam, 1e-4);
        });
    });
    group.finish();

    // Arena-path accumulation in isolation (no optimizer): the flat-slab
    // gradient store is the whole point, so time it serial and pooled.
    let mut group = c.benchmark_group("embedding_accumulate_grad");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut table = EmbeddingTable::new(&mut rng, table_size, dim);
    group.bench_function("serial_128x12x16", |b| {
        b.iter(|| {
            table.accumulate_grad_fields(&ids, fields, &grad);
            table.clear_grads();
        });
    });
    for threads in [2usize, 4] {
        let pool = Pool::new(threads);
        group.bench_function(format!("pooled_128x12x16_t{threads}"), |b| {
            b.iter(|| {
                table.accumulate_grad_fields_pooled(&ids, fields, &grad, &pool);
                table.clear_grads();
            });
        });
    }
    group.finish();
}

fn bench_gumbel_and_auc(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(2);
    let logits = [0.3f32, -0.5, 1.1];
    group.bench_function("gumbel_sample_x66", |b| {
        b.iter(|| {
            for _ in 0..66 {
                let s = optinter_core::gumbel::GumbelSample::draw(&logits, 0.5, &mut rng);
                std::hint::black_box(s.probs[0]);
            }
        });
    });
    let scores: Vec<f32> = (0..10_000)
        .map(|i| ((i * 37) % 997) as f32 / 997.0)
        .collect();
    let labels: Vec<f32> = (0..10_000)
        .map(|i| ((i * 13) % 5 == 0) as u8 as f32)
        .collect();
    group.bench_function("auc_10k", |b| {
        b.iter(|| optinter_metrics::auc(&scores, &labels));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("data");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("generate_and_encode_tiny_2k", |b| {
        b.iter(|| Profile::Tiny.bundle_with_rows(2_000, 7));
    });
    group.finish();
}

fn bench_train_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let bundle = Profile::Tiny.bundle_with_rows(2_000, 9);
    let Some(batch) = BatchIter::new(&bundle.data, 0..128, 128, None).next() else {
        // A 2k-row bundle always yields a full first batch; if it ever
        // doesn't, skip the group rather than abort the whole bench run.
        eprintln!("train_step bench: empty batch iterator, skipping group");
        return;
    };
    let bcfg = BaselineConfig::test_small();
    for kind in [
        ModelKind::Fm,
        ModelKind::Fnn,
        ModelKind::Ipnn,
        ModelKind::Pin,
    ] {
        group.bench_function(format!("{}_batch128", kind.name()), |b| {
            b.iter_batched(
                || build_model(kind, &bcfg, &bundle.data),
                |mut model| model.train_batch(&batch),
                BatchSize::SmallInput,
            );
        });
    }
    let cfg = OptInterConfig::test_small();
    let dims = DataDims::of(&bundle.data);
    group.bench_function("OptInterNet_mixed_batch128", |b| {
        let arch = Architecture::new(
            (0..dims.num_pairs)
                .map(|p| Method::from_index(p % 3))
                .collect(),
        );
        b.iter_batched(
            || OptInterNet::new(cfg.clone(), dims.clone(), arch.clone()),
            |mut net| net.train_batch(&batch),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("Supernet_search_batch128", |b| {
        b.iter_batched(
            || Supernet::new(cfg.clone(), dims.clone()),
            |mut net| net.train_batch(&batch, 0.5),
            BatchSize::SmallInput,
        );
    });
    // Thread sweep for the acceptance speedup check: results are
    // bit-identical across the sweep, so only wall-clock should move.
    for threads in [1usize, 2, 4] {
        let tcfg = cfg.with_threads(threads);
        group.bench_function(format!("Supernet_search_batch128_t{threads}"), |b| {
            b.iter_batched(
                || Supernet::new(tcfg.clone(), dims.clone()),
                |mut net| net.train_batch(&batch, 0.5),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_batch_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_assembly");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let bundle = Profile::AvazuLike.bundle_with_rows(4_000, 11);
    let train = bundle.split.train.clone();
    // One shuffled pass over the training split at batch 256: the
    // allocating iterator vs the recycled-buffer stream (serial, so the
    // comparison isolates allocation cost from overlap).
    group.bench_function("alloc_per_batch", |b| {
        b.iter(|| {
            for batch in BatchIter::new(&bundle.data, train.clone(), 256, Some(42)) {
                std::hint::black_box(batch.len());
            }
        });
    });
    group.bench_function("recycled_stream", |b| {
        b.iter(|| {
            BatchStream::new(&bundle.data, train.clone(), 256, Some(42))
                .prefetch(false)
                .for_each(|batch| {
                    std::hint::black_box(batch.len());
                });
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_embedding,
    bench_gumbel_and_auc,
    bench_generation,
    bench_train_steps,
    bench_batch_assembly
);
criterion_main!(benches);
