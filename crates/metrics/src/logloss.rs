//! Mean binary cross-entropy of predicted probabilities (paper Eq. 13).

use optinter_tensor::numerics::bce_from_prob;

/// Mean log-loss of probabilities against binary labels.
///
/// Probabilities are clamped to `(1e-7, 1 - 1e-7)` before taking logs.
///
/// # Panics
/// Panics on a length mismatch or empty input.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "log_loss: length mismatch");
    assert!(!probs.is_empty(), "log_loss: empty input");
    let total: f64 = probs
        .iter()
        .zip(labels.iter())
        .map(|(&p, &y)| bce_from_prob(p, y) as f64)
        .sum();
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninformed_prediction_is_ln2() {
        let probs = [0.5; 4];
        let labels = [0.0, 1.0, 0.0, 1.0];
        assert!((log_loss(&probs, &labels) - std::f64::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction_near_zero() {
        let probs = [0.9999, 0.0001];
        let labels = [1.0, 0.0];
        assert!(log_loss(&probs, &labels) < 1e-3);
    }

    #[test]
    fn extreme_probs_do_not_produce_infinity() {
        let probs = [1.0, 0.0];
        let labels = [0.0, 1.0];
        let ll = log_loss(&probs, &labels);
        assert!(ll.is_finite());
        assert!(ll > 10.0);
    }

    #[test]
    fn base_rate_prediction_matches_entropy() {
        // Predicting the base rate for every example gives the label entropy.
        let labels: Vec<f32> = (0..100).map(|i| (i < 30) as u8 as f32).collect();
        let probs = vec![0.3f32; 100];
        let expected = -(0.3f64 * 0.3f64.ln() + 0.7 * 0.7f64.ln());
        assert!((log_loss(&probs, &labels) - expected).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        log_loss(&[], &[]);
    }

    #[test]
    fn confidently_wrong_hits_clamp_penalty() {
        // p is clamped to (1e-7, 1 - 1e-7) before the log, so a maximally
        // wrong prediction costs about -ln(1e-7) ~ 16.1 on the low side.
        // The high side pays -ln(2^-23) ~ 15.9: in f32 `1.0 - 1e-7` rounds
        // to `1 - 2^-23`, the nearest representable value. Both are finite.
        let expected = -(1e-7f64).ln();
        for (p, y) in [(0.0f32, 1.0f32), (1.0, 0.0)] {
            let ll = log_loss(&[p], &[y]);
            assert!(ll.is_finite());
            assert!(
                (ll - expected).abs() < 0.2,
                "p={p} y={y}: {ll} vs {expected}"
            );
        }
    }

    #[test]
    fn confidently_right_is_near_zero_not_negative() {
        // The clamp keeps -ln(1 - 1e-7) positive but tiny.
        let ll = log_loss(&[1.0, 0.0], &[1.0, 0.0]);
        assert!(ll >= 0.0);
        assert!(ll < 1e-5, "{ll}");
    }

    #[test]
    fn mixed_extremes_average_correctly() {
        // One perfectly right and one perfectly wrong prediction: the mean
        // is half of the clamp penalty (the near-zero right term vanishes).
        let wrong = log_loss(&[1.0], &[0.0]);
        let ll = log_loss(&[1.0, 1.0], &[1.0, 0.0]);
        assert!((ll - wrong / 2.0).abs() < 1e-6, "{ll} vs {}", wrong / 2.0);
    }
}
