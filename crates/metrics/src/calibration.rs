//! Probability calibration diagnostics.
//!
//! CTR systems consume predicted probabilities directly (for bid pricing,
//! expected-revenue ranking), so calibration matters beyond AUC. This
//! module provides the expected calibration error (ECE) over equal-width
//! probability bins and the raw reliability table behind it.

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the predicted-probability bin.
    pub lower: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub upper: f64,
    /// Number of predictions falling in the bin.
    pub count: usize,
    /// Mean predicted probability in the bin.
    pub mean_predicted: f64,
    /// Empirical positive rate in the bin.
    pub mean_observed: f64,
}

/// Builds an equal-width reliability table with `bins` bins.
///
/// # Panics
/// Panics if `bins == 0` or lengths mismatch.
pub fn reliability_table(probs: &[f32], labels: &[f32], bins: usize) -> Vec<ReliabilityBin> {
    assert!(bins > 0, "reliability_table: need at least one bin");
    assert_eq!(
        probs.len(),
        labels.len(),
        "reliability_table: length mismatch"
    );
    let mut counts = vec![0usize; bins];
    let mut sum_pred = vec![0.0f64; bins];
    let mut sum_obs = vec![0.0f64; bins];
    for (&p, &y) in probs.iter().zip(labels.iter()) {
        let idx = (((p as f64) * bins as f64) as usize).min(bins - 1);
        counts[idx] += 1;
        sum_pred[idx] += p as f64;
        sum_obs[idx] += y as f64;
    }
    (0..bins)
        .map(|i| ReliabilityBin {
            lower: i as f64 / bins as f64,
            upper: (i + 1) as f64 / bins as f64,
            count: counts[i],
            mean_predicted: if counts[i] > 0 {
                sum_pred[i] / counts[i] as f64
            } else {
                0.0
            },
            mean_observed: if counts[i] > 0 {
                sum_obs[i] / counts[i] as f64
            } else {
                0.0
            },
        })
        .collect()
}

/// Expected calibration error: the count-weighted mean absolute gap between
/// predicted and observed positive rates across bins.
pub fn expected_calibration_error(probs: &[f32], labels: &[f32], bins: usize) -> f64 {
    let table = reliability_table(probs, labels, bins);
    let n: usize = table.iter().map(|b| b.count).sum();
    if n == 0 {
        return 0.0;
    }
    table
        .iter()
        .map(|b| (b.count as f64 / n as f64) * (b.mean_predicted - b.mean_observed).abs())
        .sum()
}

/// Calibration intercept: log-odds of the observed rate minus mean predicted
/// log-odds. Positive values mean the model under-predicts.
pub fn calibration_ratio(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(
        probs.len(),
        labels.len(),
        "calibration_ratio: length mismatch"
    );
    if probs.is_empty() {
        return 1.0;
    }
    let mean_pred: f64 = probs.iter().map(|&p| p as f64).sum::<f64>() / probs.len() as f64;
    let mean_obs: f64 = labels.iter().map(|&y| y as f64).sum::<f64>() / labels.len() as f64;
    if mean_pred <= 0.0 {
        return 1.0;
    }
    mean_obs / mean_pred
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        // Predict exactly the empirical rate within each bin.
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..1000 {
            let p = 0.25f32;
            probs.push(p);
            labels.push(u8::from(i % 4 == 0) as f32);
        }
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!(ece < 1e-9, "ece {ece}");
        assert!((calibration_ratio(&probs, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overconfident_predictions_have_high_ece() {
        // Predict 0.95 when the true rate is 0.5.
        let probs = vec![0.95f32; 1000];
        let labels: Vec<f32> = (0..1000).map(|i| (i % 2) as f32).collect();
        let ece = expected_calibration_error(&probs, &labels, 10);
        assert!((ece - 0.45).abs() < 1e-6, "ece {ece}");
        assert!(calibration_ratio(&probs, &labels) < 0.6);
    }

    #[test]
    fn reliability_table_bins_correctly() {
        let probs = [0.05f32, 0.15, 0.95, 1.0];
        let labels = [0.0, 0.0, 1.0, 1.0];
        let table = reliability_table(&probs, &labels, 10);
        assert_eq!(table.len(), 10);
        assert_eq!(table[0].count, 1);
        assert_eq!(table[1].count, 1);
        // p = 1.0 lands in the last bin (inclusive upper edge).
        assert_eq!(table[9].count, 2);
        assert_eq!(table[9].mean_observed, 1.0);
    }

    #[test]
    fn empty_input_is_safe() {
        assert_eq!(expected_calibration_error(&[], &[], 5), 0.0);
        assert_eq!(calibration_ratio(&[], &[]), 1.0);
    }

    #[test]
    fn ece_bounded_by_one() {
        let probs = vec![1.0f32; 50];
        let labels = vec![0.0f32; 50];
        let ece = expected_calibration_error(&probs, &labels, 4);
        assert!(ece <= 1.0 + 1e-12);
        assert!(ece > 0.9);
    }
}
