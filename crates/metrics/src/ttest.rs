//! Two-tailed t-tests for significance reporting (paper Sec. III-A5: ten
//! repeats, two-tailed pairwise t-test, significance at p < 0.005).
//!
//! The Student-t CDF is evaluated through the regularized incomplete beta
//! function `I_x(a, b)` computed with the Lentz continued-fraction method —
//! no external statistics crate needed.

use optinter_tensor::stats::{mean, sample_variance};

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the unpaired test).
    pub df: f64,
    /// Two-tailed p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction (Numerical Recipes style).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster convergence. The comparison is
    // `<=` so the boundary case (a = b, x = 0.5) takes the direct branch
    // instead of recursing onto itself forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - incomplete_beta(b, a, 1.0 - x)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-tailed p-value of a t statistic with `df` degrees of freedom:
/// `p = I_{df/(df+t^2)}(df/2, 1/2)`.
pub fn two_tailed_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    if df <= 0.0 {
        return 1.0;
    }
    incomplete_beta(df / 2.0, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

/// Welch's unequal-variance t-test between two independent samples.
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> TTestResult {
    assert!(
        xs.len() >= 2 && ys.len() >= 2,
        "welch_t_test: need at least 2 samples per group"
    );
    let (mx, my) = (mean(xs), mean(ys));
    let (vx, vy) = (sample_variance(xs), sample_variance(ys));
    let (nx, ny) = (xs.len() as f64, ys.len() as f64);
    let se_sq = vx / nx + vy / ny;
    if se_sq <= 0.0 {
        // Identical constants: no evidence of difference (or exact equality).
        let t = if mx == my { 0.0 } else { f64::INFINITY };
        return TTestResult {
            t,
            df: nx + ny - 2.0,
            p_value: if mx == my { 1.0 } else { 0.0 },
        };
    }
    let t = (mx - my) / se_sq.sqrt();
    let df = se_sq * se_sq / ((vx / nx).powi(2) / (nx - 1.0) + (vy / ny).powi(2) / (ny - 1.0));
    TTestResult {
        t,
        df,
        p_value: two_tailed_p(t, df),
    }
}

/// Paired two-tailed t-test over matched samples (the paper's "pairwise"
/// test across repeated runs with shared seeds).
pub fn paired_t_test(xs: &[f64], ys: &[f64]) -> TTestResult {
    assert_eq!(xs.len(), ys.len(), "paired_t_test: length mismatch");
    assert!(xs.len() >= 2, "paired_t_test: need at least 2 pairs");
    let diffs: Vec<f64> = xs.iter().zip(ys.iter()).map(|(&x, &y)| x - y).collect();
    let md = mean(&diffs);
    let vd = sample_variance(&diffs);
    let n = diffs.len() as f64;
    if vd <= 0.0 {
        let t = if md == 0.0 { 0.0 } else { f64::INFINITY };
        return TTestResult {
            t,
            df: n - 1.0,
            p_value: if md == 0.0 { 1.0 } else { 0.0 },
        };
    }
    let t = md / (vd / n).sqrt();
    let df = n - 1.0;
    TTestResult {
        t,
        df,
        p_value: two_tailed_p(t, df),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_edges() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1, 1) = x (uniform CDF).
        assert!((incomplete_beta(1.0, 1.0, 0.37) - 0.37).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_known_quantiles() {
        // df=10: t=2.228 is the 97.5% quantile -> two-tailed p = 0.05.
        assert!((two_tailed_p(2.228, 10.0) - 0.05).abs() < 2e-3);
        // df=1 (Cauchy): t=1 -> two-tailed p = 0.5.
        assert!((two_tailed_p(1.0, 1.0) - 0.5).abs() < 1e-6);
        // t=0 -> p=1.
        assert!((two_tailed_p(0.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welch_detects_clear_difference() {
        let xs = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.08, 0.92, 1.0];
        let ys = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02, 1.98, 2.08, 1.92, 2.0];
        let r = welch_t_test(&xs, &ys);
        assert!(r.significant(0.005), "p = {}", r.p_value);
        assert!(r.t < 0.0);
    }

    #[test]
    fn welch_no_difference_high_p() {
        let xs = [1.0, 1.2, 0.8, 1.1, 0.9];
        let ys = [1.05, 1.15, 0.85, 1.02, 0.93];
        let r = welch_t_test(&xs, &ys);
        assert!(r.p_value > 0.3, "p = {}", r.p_value);
    }

    #[test]
    fn paired_detects_consistent_small_shift() {
        // A tiny but perfectly consistent improvement: paired test sees it.
        let xs = [
            0.800, 0.810, 0.805, 0.795, 0.802, 0.808, 0.799, 0.803, 0.806, 0.801,
        ];
        let ys: Vec<f64> = xs.iter().map(|&x| x - 0.001).collect();
        let r = paired_t_test(&xs, &ys);
        assert!(r.significant(0.005), "p = {}", r.p_value);
        // Welch on the same data cannot: between-run variance dominates.
        let w = welch_t_test(&xs, &ys);
        assert!(!w.significant(0.005));
    }

    #[test]
    fn identical_samples_p_one() {
        let xs = [1.0, 2.0, 3.0];
        let r = paired_t_test(&xs, &xs);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn constant_but_different_groups() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 2.0, 2.0];
        let r = welch_t_test(&xs, &ys);
        assert_eq!(r.p_value, 0.0);
    }
}
