//! Evaluation metrics for CTR prediction (paper Sec. III-A2, III-A5, III-G).
//!
//! - [`auc()`] — tie-aware Area Under the ROC Curve via average ranks;
//! - [`logloss`] — mean binary cross-entropy of predicted probabilities;
//! - [`mutual_info`] — mutual information between a categorical variable
//!   (e.g. a cross-product feature) and the click label (paper Eq. 21),
//!   used for the interpretability analysis of Figs. 5–6;
//! - [`ttest`] — two-tailed Welch and paired t-tests with an own
//!   implementation of the regularized incomplete beta function, matching
//!   the paper's significance methodology (10 repeats, p < 0.005);
//! - [`calibration`] — expected calibration error and reliability tables
//!   (CTR systems consume the probabilities directly, so calibration
//!   matters beyond ranking).

#![forbid(unsafe_code)]

pub mod auc;
pub mod calibration;
pub mod logloss;
pub mod mutual_info;
pub mod ttest;

pub use auc::auc;
pub use calibration::{calibration_ratio, expected_calibration_error, reliability_table};
pub use logloss::log_loss;
pub use mutual_info::{binary_entropy, mutual_information, mutual_information_corrected};
pub use ttest::{paired_t_test, welch_t_test, TTestResult};

/// AUC and log-loss of a prediction set, computed together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Area under the ROC curve.
    pub auc: f64,
    /// Mean binary cross-entropy.
    pub log_loss: f64,
}

/// Evaluates predicted probabilities against binary labels.
pub fn evaluate(probs: &[f32], labels: &[f32]) -> EvalResult {
    EvalResult {
        auc: auc(probs, labels),
        log_loss: log_loss(probs, labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_combines_both_metrics() {
        let probs = [0.9, 0.1, 0.8, 0.2];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let r = evaluate(&probs, &labels);
        assert!(r.auc > 0.99);
        assert!(r.log_loss < 0.3);
    }
}
