//! Tie-aware AUC (Area Under the ROC Curve).
//!
//! Computed exactly via the rank-sum (Mann–Whitney) identity:
//! `AUC = (R_pos - n_pos (n_pos + 1) / 2) / (n_pos * n_neg)` where `R_pos`
//! is the sum of the average ranks of the positive examples. Tied scores
//! share the mean rank, so ties contribute 0.5 — the standard convention.

/// AUC of scores against binary labels (`label > 0.5` is positive).
///
/// Returns 0.5 when either class is empty (an undefined AUC; 0.5 is the
/// no-skill convention and keeps downstream aggregation total).
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auc: length mismatch");
    let n = scores.len();
    if n == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_sum_pos = 0.0f64;
    let mut n_pos = 0u64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
                n_pos += 1;
            }
        }
        i = j + 1;
    }
    let n_neg = n as u64 - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_tied_scores_are_half() {
        let scores = [0.5; 6];
        let labels = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn known_partial_value() {
        // Positives at scores 0.8, 0.4; negatives at 0.6, 0.2.
        // Pairs: (0.8,0.6)=1, (0.8,0.2)=1, (0.4,0.6)=0, (0.4,0.2)=1 -> 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ties_count_half() {
        // Positive at 0.5, negative at 0.5: the only pair is tied -> 0.5.
        let scores = [0.5, 0.5];
        let labels = [1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_example_returns_half() {
        // One example means one empty class — undefined AUC, 0.5 by
        // convention, for either label.
        assert_eq!(auc(&[0.3], &[1.0]), 0.5);
        assert_eq!(auc(&[0.3], &[0.0]), 0.5);
    }

    #[test]
    fn tied_blocks_match_pairwise_bruteforce() {
        // Heavy ties: only three distinct score values across 30 examples,
        // with both classes inside every tied block. The rank-sum identity
        // with mean ranks must agree with the O(n^2) definition where a
        // tied pair counts 0.5.
        let scores: Vec<f32> = (0..30).map(|i| (i % 3) as f32 * 0.25).collect();
        let labels: Vec<f32> = (0..30).map(|i| ((i * 7) % 4 == 0) as u8 as f32).collect();
        let fast = auc(&scores, &labels);
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..30 {
            for j in 0..30 {
                if labels[i] > 0.5 && labels[j] < 0.5 {
                    total += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        assert!(
            (fast - wins / total).abs() < 1e-12,
            "{fast} vs {}",
            wins / total
        );
    }

    #[test]
    fn tied_scores_with_skewed_classes() {
        // A single tied block plus one separated positive: AUC must blend
        // the 0.5-per-tied-pair convention with the clean win.
        // Pairs: (1.0 vs 0.5)=1, (0.5 vs 0.5 tie)=0.5 x2 -> (1+0.5+0.5)/3? No:
        // positives at {1.0, 0.5}, negatives at {0.5, 0.5}. Pairs:
        // (1.0,0.5)=1 twice; (0.5,0.5)=0.5 twice -> 3/4.
        let scores = [1.0f32, 0.5, 0.5, 0.5];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invariant_to_monotone_transform() {
        let scores = [0.1f32, 0.4, 0.35, 0.8, 0.65];
        let labels = [0.0, 0.0, 1.0, 1.0, 1.0];
        let a = auc(&scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| s * s * 10.0 + 1.0).collect();
        let b = auc(&transformed, &labels);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn matches_pairwise_bruteforce() {
        // Compare with the O(n^2) definition on a pseudo-random input.
        let scores: Vec<f32> = (0..50).map(|i| ((i * 37) % 17) as f32 / 17.0).collect();
        let labels: Vec<f32> = (0..50).map(|i| ((i * 13) % 3 == 0) as u8 as f32).collect();
        let fast = auc(&scores, &labels);
        let mut wins = 0.0f64;
        let mut total = 0.0f64;
        for i in 0..50 {
            for j in 0..50 {
                if labels[i] > 0.5 && labels[j] < 0.5 {
                    total += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        assert!((fast - wins / total).abs() < 1e-10);
    }
}
