//! Mutual information between a categorical variable and the click label
//! (paper Eq. 21), the quantity behind the interpretability analysis of
//! Sec. III-G: `MI({H}, y) = H(y) - H(y | H)`.

use std::collections::HashMap;

/// Entropy (nats) of a Bernoulli variable with success probability `p`.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
}

/// Per-id `(total, positive)` counts, sorted by id.
///
/// The float-accumulating estimators below iterate this vector instead of
/// the `HashMap` it is distilled from, so every sum runs in ascending-id
/// order and the result is independent of the hash seed (bit-determinism,
/// DESIGN.md §6/§7). Integer counting itself is order-insensitive.
fn sorted_counts(ids: &[u32], labels: &[f32]) -> Vec<(u32, (u64, u64))> {
    let mut counts: HashMap<u32, (u64, u64)> = HashMap::new();
    for (&id, &y) in ids.iter().zip(labels.iter()) {
        let entry = counts.entry(id).or_insert((0, 0));
        entry.0 += 1;
        if y > 0.5 {
            entry.1 += 1;
        }
    }
    // lint: allow(hash-iter, reason="collected into a Vec and sorted by key before any float accumulation")
    let mut out: Vec<(u32, (u64, u64))> = counts.into_iter().collect();
    out.sort_unstable_by_key(|&(id, _)| id);
    out
}

/// Mutual information (nats) between categorical ids and binary labels,
/// estimated from empirical counts:
///
/// `MI = H(y) - Σ_v P(v) H(y | v)`.
///
/// Returns 0 for empty input. The estimate is biased upward for
/// high-cardinality variables on small samples (as any plug-in estimator
/// is); the paper's analysis compares *relative* MI across pairs, which the
/// bias does not reorder materially at our sample sizes.
pub fn mutual_information(ids: &[u32], labels: &[f32]) -> f64 {
    assert_eq!(
        ids.len(),
        labels.len(),
        "mutual_information: length mismatch"
    );
    let n = ids.len();
    if n == 0 {
        return 0.0;
    }
    mi_from_counts(&sorted_counts(ids, labels), n)
}

/// Plug-in MI from pre-sorted per-id counts (ascending-id float sums).
fn mi_from_counts(counts: &[(u32, (u64, u64))], n: usize) -> f64 {
    let total_pos: u64 = counts.iter().map(|&(_, (_, p))| p).sum();
    let n_f = n as f64;
    let h_y = binary_entropy(total_pos as f64 / n_f);
    let mut h_y_given = 0.0f64;
    for &(_id, (count, pos)) in counts.iter() {
        let p_v = count as f64 / n_f;
        h_y_given += p_v * binary_entropy(pos as f64 / count as f64);
    }
    (h_y - h_y_given).max(0.0)
}

/// Miller–Madow bias-corrected mutual information.
///
/// The plug-in estimator is biased upward by roughly
/// `(K_xy - K_x - K_y + 1) / (2N)` nats, where `K` are the numbers of
/// non-empty cells. High-cardinality variables on small samples look
/// spuriously informative without this correction, which would distort the
/// Figure 5 / Figure 6 analysis on scaled-down datasets.
pub fn mutual_information_corrected(ids: &[u32], labels: &[f32]) -> f64 {
    assert_eq!(
        ids.len(),
        labels.len(),
        "mutual_information_corrected: length mismatch"
    );
    let n = ids.len();
    if n == 0 {
        return 0.0;
    }
    let counts = sorted_counts(ids, labels);
    let plugin = mi_from_counts(&counts, n);
    let k_x = counts.len() as f64;
    let k_xy = counts
        .iter()
        .map(|&(_, (count, pos))| {
            let neg = count - pos;
            (pos > 0) as u64 + (neg > 0) as u64
        })
        .sum::<u64>() as f64;
    let total_pos: u64 = counts.iter().map(|&(_, (_, p))| p).sum();
    let k_y = ((total_pos > 0) as u64 + (total_pos < n as u64) as u64) as f64;
    let bias = (k_xy - k_x - k_y + 1.0) / (2.0 * n as f64);
    (plugin - bias).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_known_values() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn perfectly_predictive_feature_has_mi_equal_to_label_entropy() {
        // id == label: knowing the id removes all label uncertainty.
        let ids = [0u32, 1, 0, 1, 0, 1, 0, 1];
        let labels = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let mi = mutual_information(&ids, &labels);
        assert!((mi - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn independent_feature_has_near_zero_mi() {
        // id alternates independently of the label pattern.
        let ids: Vec<u32> = (0..1000).map(|i| i % 2).collect();
        let labels: Vec<f32> = (0..1000).map(|i| ((i / 2) % 2) as f32).collect();
        let mi = mutual_information(&ids, &labels);
        assert!(mi < 1e-6, "mi = {mi}");
    }

    #[test]
    fn mi_is_nonnegative_and_bounded_by_label_entropy() {
        let ids: Vec<u32> = (0..500).map(|i| (i * 31) % 17).collect();
        let labels: Vec<f32> = (0..500).map(|i| ((i * 7) % 3 == 0) as u8 as f32).collect();
        let pos = labels.iter().filter(|&&y| y > 0.5).count() as f64 / 500.0;
        let mi = mutual_information(&ids, &labels);
        assert!(mi >= 0.0);
        assert!(mi <= binary_entropy(pos) + 1e-12);
    }

    #[test]
    fn constant_feature_has_zero_mi() {
        let ids = [7u32; 100];
        let labels: Vec<f32> = (0..100).map(|i| (i % 3 == 0) as u8 as f32).collect();
        assert_eq!(mutual_information(&ids, &labels), 0.0);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(mutual_information(&[], &[]), 0.0);
        assert_eq!(mutual_information_corrected(&[], &[]), 0.0);
    }

    #[test]
    fn mi_is_bitwise_independent_of_insertion_order() {
        // Two `HashMap`s built from differently-ordered streams iterate in
        // different orders (std re-seeds per instance); the sorted
        // accumulation must still produce bit-identical sums.
        let ids: Vec<u32> = (0..999).map(|i| ((i * 31) % 97) as u32).collect();
        let labels: Vec<f32> = (0..999).map(|i| ((i * 7) % 3 == 0) as u8 as f32).collect();
        let mut rev_ids = ids.clone();
        rev_ids.reverse();
        let mut rev_labels = labels.clone();
        rev_labels.reverse();
        let a = mutual_information(&ids, &labels);
        let b = mutual_information(&rev_ids, &rev_labels);
        assert_eq!(a.to_bits(), b.to_bits());
        let ac = mutual_information_corrected(&ids, &labels);
        let bc = mutual_information_corrected(&rev_ids, &rev_labels);
        assert_eq!(ac.to_bits(), bc.to_bits());
    }

    #[test]
    fn correction_shrinks_high_cardinality_estimates() {
        // A completely uninformative but high-cardinality feature: plug-in
        // MI is noticeably positive, the corrected estimate near zero.
        let n = 2000usize;
        // Odd modulus so the id carries no parity information about i.
        let ids: Vec<u32> = (0..n)
            .map(|i| ((i * 2654435761usize) % 499) as u32)
            .collect();
        let labels: Vec<f32> = (0..n).map(|i| (((i * 7919 + 13) / 7) % 2) as f32).collect();
        let plugin = mutual_information(&ids, &labels);
        let corrected = mutual_information_corrected(&ids, &labels);
        assert!(plugin > 0.02, "plug-in bias should be visible: {plugin}");
        assert!(
            corrected < plugin / 2.0,
            "correction too weak: {corrected} vs {plugin}"
        );
    }

    #[test]
    fn correction_keeps_true_signal() {
        // A genuinely predictive low-cardinality feature keeps its MI.
        let ids: Vec<u32> = (0..2000).map(|i| (i % 2) as u32).collect();
        let labels: Vec<f32> = ids.iter().map(|&v| v as f32).collect();
        let corrected = mutual_information_corrected(&ids, &labels);
        assert!((corrected - std::f64::consts::LN_2).abs() < 0.01);
    }

    #[test]
    fn partially_informative_feature_ranks_between() {
        // Feature A fully determines the label, B is 75% aligned, C random.
        let labels: Vec<f32> = (0..2000).map(|i| (i % 2) as f32).collect();
        let a: Vec<u32> = (0..2000).map(|i| (i % 2) as u32).collect();
        let b: Vec<u32> = (0..2000)
            .map(|i| {
                if i % 8 < 2 {
                    1 - (i % 2) as u32
                } else {
                    (i % 2) as u32
                }
            })
            .collect();
        let c: Vec<u32> = (0..2000).map(|i| ((i * 7919) % 5) as u32).collect();
        let mi_a = mutual_information(&a, &labels);
        let mi_b = mutual_information(&b, &labels);
        let mi_c = mutual_information(&c, &labels);
        assert!(mi_a > mi_b, "{mi_a} vs {mi_b}");
        assert!(mi_b > mi_c, "{mi_b} vs {mi_c}");
    }
}
