//! Whole-workspace call-graph lint tests (DESIGN.md §12).
//!
//! These run the real analyzer over the real workspace sources, then
//! mutate the sources **in memory** to prove the rules actually bite:
//! an injected panic site reachable from a serve root must fail the
//! lint, and deleting a committed waiver must fail the lint. The golden
//! test pins the contract that the derived hot-path set is a superset
//! of the old per-file glob set, so growing the call graph can never
//! silently shrink hot-path coverage.

use optinter_lint::rules::{FileMeta, Rule};
use optinter_lint::{analyze_sources, find_workspace_root, load_workspace_sources, Report};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn load() -> (Vec<(FileMeta, String)>, String) {
    let root = workspace_root();
    let files = load_workspace_sources(&root).expect("load sources");
    let baseline =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("read lint-baseline.toml");
    (files, baseline)
}

fn analyze(files: &[(FileMeta, String)], baseline: &str) -> Report {
    analyze_sources(files, Some(baseline)).expect("analyze")
}

/// Replaces `needle` with `with` inside the one source whose path ends
/// in `path_suffix`, panicking if the anchor is missing — so the test
/// fails loudly when the code it mutates is refactored away instead of
/// silently testing nothing.
fn inject(files: &mut [(FileMeta, String)], path_suffix: &str, needle: &str, with: &str) {
    let (_, src) = files
        .iter_mut()
        .find(|(m, _)| m.rel_path.ends_with(path_suffix))
        .unwrap_or_else(|| panic!("no workspace file ends with {path_suffix}"));
    assert!(
        src.contains(needle),
        "injection anchor vanished from {path_suffix}: {needle:?}"
    );
    *src = src.replacen(needle, with, 1);
}

#[test]
fn derived_hot_set_is_a_superset_of_the_glob_set() {
    let (files, baseline) = load();
    let report = analyze(&files, &baseline);
    assert!(
        report.is_clean(),
        "workspace should lint clean:\n{:#?}",
        report.diagnostics
    );
    // Golden contract: everything the old per-file glob heuristic called
    // hot is still hot under the derived closure...
    for f in &report.glob_hot_fns {
        assert!(
            report.hot_fns.contains(f),
            "glob-hot fn {f} missing from the derived hot set"
        );
    }
    // ...and the call graph genuinely widens coverage beyond the globs
    // (matmul kernels, embedding lookups, and the like have no hot-name
    // affix but sit inside every training step).
    assert!(
        report.hot_fns.len() > report.glob_hot_fns.len(),
        "derived set ({}) should exceed the glob set ({})",
        report.hot_fns.len(),
        report.glob_hot_fns.len()
    );
}

#[test]
fn injected_unwrap_reachable_from_serve_roots_fails_the_lint() {
    let (mut files, baseline) = load();
    // `probabilities_into` is two call-graph hops from both serve roots
    // (score_into -> probabilities_into), so this exercises the
    // traversal, not just sites inside the root fn itself. The injected
    // line only has to lex, not compile.
    inject(
        &mut files,
        "crates/nn/src/loss.rs",
        "    out.clear();",
        "    out.clear();\n    std::env::var(\"INJECTED\").unwrap();",
    );
    let report = analyze(&files, &baseline);
    assert!(!report.is_clean(), "injected unwrap should fail the lint");
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::PanicFree && d.path.ends_with("loss.rs"))
        .collect();
    assert!(
        !hits.is_empty(),
        "expected a panic-free diagnostic in loss.rs, got:\n{:#?}",
        report.diagnostics
    );
    // The witness chain names the root whose cone the site sits in.
    assert!(
        hits.iter().any(|d| d.message.contains("serve-score")),
        "diagnostic should cite the serve-score root:\n{hits:#?}"
    );
    assert!(
        report.panic_free.get("serve-score").copied().unwrap_or(0) > 0,
        "serve-score count should include the injected site"
    );
}

#[test]
fn injected_unwrap_inside_a_root_fn_fails_the_lint() {
    let (mut files, baseline) = load();
    inject(
        &mut files,
        "crates/serve/src/microbatch.rs",
        "    batch.begin(num_fields, num_pairs);",
        "    batch.begin(num_fields, num_pairs);\n    std::env::var(\"INJECTED\").unwrap();",
    );
    let report = analyze(&files, &baseline);
    assert!(!report.is_clean());
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::PanicFree
            && d.path.ends_with("microbatch.rs")
            && d.message.contains("microbatch-flush")),
        "expected a microbatch-flush diagnostic:\n{:#?}",
        report.diagnostics
    );
}

#[test]
fn injected_panics_in_validation_and_table_lookup_fail_the_lint() {
    // The typed-error contract: request validation and the (dense or
    // hashed) embedding-table lookup both sit inside the serve-score
    // cone, so a panic site in either must fail the lint. This is the
    // static witness that out-of-range ids stay typed errors — the
    // runtime half lives in tests/serve_errors.rs.
    for anchor in [
        "        let key_space = self.dims.orig_vocab;", // FrozenScorer::validate
        "        let fill_row = |r: usize, dst: &mut [f32]| {", // ServingTable::lookup_into
    ] {
        let (mut files, baseline) = load();
        inject(
            &mut files,
            "crates/serve/src/scorer.rs",
            anchor,
            &format!("{anchor}\n    std::env::var(\"INJECTED\").unwrap();"),
        );
        let report = analyze(&files, &baseline);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == Rule::PanicFree
                && d.path.ends_with("scorer.rs")
                && d.message.contains("serve-score")),
            "anchor {anchor:?}: expected a serve-score diagnostic in scorer.rs:\n{:#?}",
            report.diagnostics
        );
    }
}

#[test]
fn deleting_a_panic_free_waiver_fails_the_lint() {
    let (mut files, baseline) = load();
    let (_, src) = files
        .iter_mut()
        .find(|(m, _)| m.rel_path.ends_with("crates/serve/src/scorer.rs"))
        .expect("scorer.rs present");
    let waiver_line = src
        .lines()
        .find(|l| l.contains("lint: allow(panic-free"))
        .expect("scorer.rs should carry a panic-free waiver")
        .to_string();
    *src = src.replacen(&format!("{waiver_line}\n"), "", 1);
    assert!(!src.contains(&waiver_line), "waiver should be gone");
    let report = analyze(&files, &baseline);
    assert!(
        !report.is_clean(),
        "deleting a waiver must surface the site it covered"
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::PanicFree && d.path.ends_with("scorer.rs")),
        "expected the unwaived scorer.rs site to be reported:\n{:#?}",
        report.diagnostics
    );
}

#[test]
fn index_sites_only_count_for_index_strict_roots() {
    let (mut files, baseline) = load();
    // A slice index in the scoring cone is NOT a panic-free violation
    // (only `+index` roots count them), but `.unwrap()` on the same
    // line is. Guard both halves of that policy.
    inject(
        &mut files,
        "crates/nn/src/loss.rs",
        "    out.clear();",
        "    out.clear();\n    let _probe = injected_slice[0];",
    );
    let report = analyze(&files, &baseline);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| !(d.rule == Rule::PanicFree && d.path.ends_with("loss.rs"))),
        "a bare index outside the +index cones should not trip panic-free:\n{:#?}",
        report.diagnostics
    );
}
