//! Whole-workspace call-graph lint tests (DESIGN.md §12).
//!
//! These run the real analyzer over the real workspace sources, then
//! mutate the sources **in memory** to prove the rules actually bite:
//! an injected panic site reachable from a serve root must fail the
//! lint, and deleting a committed waiver must fail the lint. The golden
//! test pins the contract that the derived hot-path set is a superset
//! of the old per-file glob set, so growing the call graph can never
//! silently shrink hot-path coverage.

use optinter_lint::rules::{FileMeta, Rule};
use optinter_lint::{analyze_sources, find_workspace_root, load_workspace_sources, Report};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn load() -> (Vec<(FileMeta, String)>, String) {
    let root = workspace_root();
    let files = load_workspace_sources(&root).expect("load sources");
    let baseline =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("read lint-baseline.toml");
    (files, baseline)
}

fn analyze(files: &[(FileMeta, String)], baseline: &str) -> Report {
    analyze_sources(files, Some(baseline)).expect("analyze")
}

/// Replaces `needle` with `with` inside the one source whose path ends
/// in `path_suffix`, panicking if the anchor is missing — so the test
/// fails loudly when the code it mutates is refactored away instead of
/// silently testing nothing.
fn inject(files: &mut [(FileMeta, String)], path_suffix: &str, needle: &str, with: &str) {
    let (_, src) = files
        .iter_mut()
        .find(|(m, _)| m.rel_path.ends_with(path_suffix))
        .unwrap_or_else(|| panic!("no workspace file ends with {path_suffix}"));
    assert!(
        src.contains(needle),
        "injection anchor vanished from {path_suffix}: {needle:?}"
    );
    *src = src.replacen(needle, with, 1);
}

#[test]
fn derived_hot_set_is_a_superset_of_the_glob_set() {
    let (files, baseline) = load();
    let report = analyze(&files, &baseline);
    assert!(
        report.is_clean(),
        "workspace should lint clean:\n{:#?}",
        report.diagnostics
    );
    // Golden contract: everything the old per-file glob heuristic called
    // hot is still hot under the derived closure...
    for f in &report.glob_hot_fns {
        assert!(
            report.hot_fns.contains(f),
            "glob-hot fn {f} missing from the derived hot set"
        );
    }
    // ...and the call graph genuinely widens coverage beyond the globs
    // (matmul kernels, embedding lookups, and the like have no hot-name
    // affix but sit inside every training step).
    assert!(
        report.hot_fns.len() > report.glob_hot_fns.len(),
        "derived set ({}) should exceed the glob set ({})",
        report.hot_fns.len(),
        report.glob_hot_fns.len()
    );
}

#[test]
fn injected_unwrap_reachable_from_serve_roots_fails_the_lint() {
    let (mut files, baseline) = load();
    // `probabilities_into` is two call-graph hops from both serve roots
    // (score_into -> probabilities_into), so this exercises the
    // traversal, not just sites inside the root fn itself. The injected
    // line only has to lex, not compile.
    inject(
        &mut files,
        "crates/nn/src/loss.rs",
        "    out.clear();",
        "    out.clear();\n    std::env::var(\"INJECTED\").unwrap();",
    );
    let report = analyze(&files, &baseline);
    assert!(!report.is_clean(), "injected unwrap should fail the lint");
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::PanicFree && d.path.ends_with("loss.rs"))
        .collect();
    assert!(
        !hits.is_empty(),
        "expected a panic-free diagnostic in loss.rs, got:\n{:#?}",
        report.diagnostics
    );
    // The witness chain names the root whose cone the site sits in.
    assert!(
        hits.iter().any(|d| d.message.contains("serve-score")),
        "diagnostic should cite the serve-score root:\n{hits:#?}"
    );
    assert!(
        report.panic_free.get("serve-score").copied().unwrap_or(0) > 0,
        "serve-score count should include the injected site"
    );
}

#[test]
fn injected_unwrap_inside_a_root_fn_fails_the_lint() {
    let (mut files, baseline) = load();
    inject(
        &mut files,
        "crates/serve/src/microbatch.rs",
        "    batch.begin(num_fields, num_pairs);",
        "    batch.begin(num_fields, num_pairs);\n    std::env::var(\"INJECTED\").unwrap();",
    );
    let report = analyze(&files, &baseline);
    assert!(!report.is_clean());
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::PanicFree
            && d.path.ends_with("microbatch.rs")
            && d.message.contains("microbatch-flush")),
        "expected a microbatch-flush diagnostic:\n{:#?}",
        report.diagnostics
    );
}

#[test]
fn injected_panics_in_validation_and_table_lookup_fail_the_lint() {
    // The typed-error contract: request validation and the (dense or
    // hashed) embedding-table lookup both sit inside the serve-score
    // cone, so a panic site in either must fail the lint. This is the
    // static witness that out-of-range ids stay typed errors — the
    // runtime half lives in tests/serve_errors.rs.
    for anchor in [
        "        let key_space = self.dims.orig_vocab;", // FrozenScorer::validate
        "        let fill_row = |r: usize, dst: &mut [f32]| {", // ServingTable::lookup_into
    ] {
        let (mut files, baseline) = load();
        inject(
            &mut files,
            "crates/serve/src/scorer.rs",
            anchor,
            &format!("{anchor}\n    std::env::var(\"INJECTED\").unwrap();"),
        );
        let report = analyze(&files, &baseline);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == Rule::PanicFree
                && d.path.ends_with("scorer.rs")
                && d.message.contains("serve-score")),
            "anchor {anchor:?}: expected a serve-score diagnostic in scorer.rs:\n{:#?}",
            report.diagnostics
        );
    }
}

#[test]
fn deleting_a_panic_free_waiver_fails_the_lint() {
    let (mut files, baseline) = load();
    let (_, src) = files
        .iter_mut()
        .find(|(m, _)| m.rel_path.ends_with("crates/serve/src/scorer.rs"))
        .expect("scorer.rs present");
    let waiver_line = src
        .lines()
        .find(|l| l.contains("lint: allow(panic-free"))
        .expect("scorer.rs should carry a panic-free waiver")
        .to_string();
    *src = src.replacen(&format!("{waiver_line}\n"), "", 1);
    assert!(!src.contains(&waiver_line), "waiver should be gone");
    let report = analyze(&files, &baseline);
    assert!(
        !report.is_clean(),
        "deleting a waiver must surface the site it covered"
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::PanicFree && d.path.ends_with("scorer.rs")),
        "expected the unwaived scorer.rs site to be reported:\n{:#?}",
        report.diagnostics
    );
}

#[test]
fn index_sites_only_count_for_index_strict_roots() {
    let (mut files, baseline) = load();
    // A slice index in the scoring cone is NOT a panic-free violation
    // (only `+index` roots count them), but `.unwrap()` on the same
    // line is. Guard both halves of that policy.
    inject(
        &mut files,
        "crates/nn/src/loss.rs",
        "    out.clear();",
        "    out.clear();\n    let _probe = injected_slice[0];",
    );
    let report = analyze(&files, &baseline);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| !(d.rule == Rule::PanicFree && d.path.ends_with("loss.rs"))),
        "a bare index outside the +index cones should not trip panic-free:\n{:#?}",
        report.diagnostics
    );
}

// ---- determinism-cone / no-blocking-cone mutation tests (DESIGN.md §15) ----

#[test]
fn injected_clock_two_hops_under_train_batch_fails_the_determinism_cone() {
    let (mut files, baseline) = load();
    // `stable_bce` is two hops below both training roots
    // (train_batch -> bce_with_logits_into -> numerics::stable_bce), so a
    // clock read here proves the cone traverses the call graph rather
    // than just scanning the root fn.
    inject(
        &mut files,
        "crates/tensor/src/numerics.rs",
        "pub fn stable_bce(logit: f32, label: f32) -> f32 {",
        "pub fn stable_bce(logit: f32, label: f32) -> f32 {\n    let _injected = std::time::Instant::now();",
    );
    let report = analyze(&files, &baseline);
    assert!(
        !report.is_clean(),
        "injected clock read should fail the lint"
    );
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::DeterminismCone && d.path.ends_with("numerics.rs"))
        .collect();
    assert!(
        !hits.is_empty(),
        "expected a determinism-cone diagnostic in numerics.rs, got:\n{:#?}",
        report.diagnostics
    );
    // The message cites the root key; the witness spells out the full
    // (non-elided) call chain from root to the offending fn.
    assert!(
        hits.iter().any(|d| d.message.contains("optinter-train")),
        "diagnostic should cite the optinter-train root:\n{hits:#?}"
    );
    let witness = hits
        .iter()
        .find_map(|d| d.witness.as_deref())
        .expect("cone diagnostics carry a witness chain");
    assert!(
        witness.contains("train_batch") && witness.contains("stable_bce"),
        "witness should run from train_batch down to stable_bce: {witness}"
    );
    assert!(
        report
            .determinism_cone
            .get("optinter-train")
            .copied()
            .unwrap_or(0)
            > 0,
        "optinter-train count should include the injected site: {:?}",
        report.determinism_cone
    );
}

#[test]
fn injected_lock_under_score_into_fails_the_no_blocking_cone() {
    let (mut files, baseline) = load();
    // Inside ServingTable::lookup_into, one hop below score_into.
    inject(
        &mut files,
        "crates/serve/src/scorer.rs",
        "        let fill_row = |r: usize, dst: &mut [f32]| {",
        "        let _injected = std::sync::Mutex::new(0u32).lock();\n        let fill_row = |r: usize, dst: &mut [f32]| {",
    );
    let report = analyze(&files, &baseline);
    assert!(!report.is_clean(), "injected lock should fail the lint");
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::NoBlockingCone && d.path.ends_with("scorer.rs"))
        .collect();
    assert!(
        !hits.is_empty(),
        "expected a no-blocking-cone diagnostic in scorer.rs, got:\n{:#?}",
        report.diagnostics
    );
    assert!(
        hits.iter().any(|d| d.message.contains("serve-score")),
        "diagnostic should cite the serve-score root:\n{hits:#?}"
    );
    let witness = hits
        .iter()
        .find_map(|d| d.witness.as_deref())
        .expect("cone diagnostics carry a witness chain");
    assert!(
        witness.contains("score_into"),
        "witness should start from the score_into root: {witness}"
    );
    assert!(
        report
            .no_blocking_cone
            .get("serve-score")
            .copied()
            .unwrap_or(0)
            > 0,
        "serve-score count should include the injected site: {:?}",
        report.no_blocking_cone
    );
}

#[test]
fn cone_root_summaries_are_reported() {
    let (files, baseline) = load();
    let report = analyze(&files, &baseline);
    // Every declared cone root gets a rendered effect summary. The
    // training roots legitimately allocate; the serving roots' summaries
    // include the *waived* Blocks effect (seeds are policy-free), which
    // is exactly why the per-root count still ratchets at 0.
    let train = report
        .root_effects
        .get("determinism:optinter-train")
        .expect("optinter-train summary present");
    assert!(train.contains("Allocates"), "training allocates: {train}");
    let serve = report
        .root_effects
        .get("no-block:serve-score")
        .expect("serve-score summary present");
    assert!(
        serve.contains("Blocks"),
        "waived pool hand-off still shows in the summary: {serve}"
    );
    assert_eq!(report.no_blocking_cone.get("serve-score"), Some(&0));
}

// ---- fixture fire / suppress / waiver coverage for the cone rules ----

fn fixture_files(body: &str) -> Vec<(FileMeta, String)> {
    vec![(
        FileMeta {
            rel_path: "crates/alpha/src/lib.rs".to_string(),
            crate_key: "alpha".to_string(),
            is_test_file: false,
        },
        body.to_string(),
    )]
}

const FIXTURE_BASELINE: &str = r#"
[determinism-roots]
train = "alpha::train_batch"
[determinism-cone]
train = 0
[no-block-roots]
score = "alpha::score_into"
[no-blocking-cone]
score = 0
"#;

#[test]
fn fixture_cones_fire_on_reachable_effects() {
    // `alpha` is outside HASH_ITER_CRATES, so the per-file hash-iter rule
    // stays silent — yet the cone still fires on the reachable iteration,
    // because effect seeds are collected before any per-rule policy.
    let files = fixture_files(
        r#"
        pub fn train_batch(counts: &HashMap<u32, u32>) { tally(counts); }
        fn tally(counts: &HashMap<u32, u32>) { for (_k, _v) in counts.iter() {} }
        pub fn score_into(q: &Queue) { let _g = q.inner.lock(); }
        "#,
    );
    let report = analyze(&files, FIXTURE_BASELINE);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DeterminismCone
                && d.message.contains("HashIter")
                && d.message.contains("train")),
        "cone should flag the hash iteration under train_batch:\n{:#?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::NoBlockingCone && d.message.contains("score")),
        "cone should flag the lock under score_into:\n{:#?}",
        report.diagnostics
    );
    assert_eq!(report.determinism_cone.get("train"), Some(&1));
    assert_eq!(report.no_blocking_cone.get("score"), Some(&1));
}

#[test]
fn fixture_cones_ignore_unreachable_effects() {
    // The same effects in fns the roots cannot reach must not fire.
    let files = fixture_files(
        r#"
        pub fn train_batch(x: u32) -> u32 { x + 1 }
        pub fn score_into(x: u32) -> u32 { x * 2 }
        pub fn offline_report(counts: &HashMap<u32, u32>) {
            for (_k, _v) in counts.iter() {}
            let _t = Instant::now();
            let _g = GLOBAL.lock();
        }
        "#,
    );
    let report = analyze(&files, FIXTURE_BASELINE);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.rule != Rule::DeterminismCone && d.rule != Rule::NoBlockingCone),
        "unreachable effects must not trip the cones:\n{:#?}",
        report.diagnostics
    );
    assert_eq!(report.determinism_cone.get("train"), Some(&0));
    assert_eq!(report.no_blocking_cone.get("score"), Some(&0));
}

#[test]
fn fixture_cone_waivers_suppress_and_count_as_used() {
    // Stacked waivers: the per-file wall-clock rule and the determinism
    // cone each need their own directive on the same site — directive
    // lines stack through to the first code line below them.
    let files = fixture_files(
        r#"
        pub fn train_batch() {
            // lint: allow(wall-clock, reason="coarse progress stamp, not on any numeric path")
            // lint: allow(determinism-cone, reason="stamp feeds logging only, never the trajectory")
            let _t = Instant::now();
        }
        pub fn score_into(q: &Queue) {
            // lint: allow(no-blocking-cone, reason="declared hand-off: bounded queue, uncontended by design")
            let _g = q.inner.lock();
        }
        "#,
    );
    let report = analyze(&files, FIXTURE_BASELINE);
    assert!(
        report.is_clean(),
        "waived sites must pass, and used waivers must not be flagged:\n{:#?}",
        report.diagnostics
    );
    assert_eq!(report.determinism_cone.get("train"), Some(&0));
    assert_eq!(report.no_blocking_cone.get("score"), Some(&0));
}

#[test]
fn fixture_wall_clock_waiver_does_not_shield_the_cone() {
    // A per-file wall-clock waiver claims "this clock read is fine in
    // general" — it does NOT claim the training trajectory is clock-free,
    // so the cone must still fire until a determinism-cone waiver (or a
    // fix) lands.
    let files = fixture_files(
        r#"
        pub fn train_batch() {
            // lint: allow(wall-clock, reason="progress stamp")
            let _t = Instant::now();
        }
        pub fn score_into(x: u32) -> u32 { x }
        "#,
    );
    let report = analyze(&files, FIXTURE_BASELINE);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DeterminismCone && d.message.contains("train")),
        "wall-clock waiver alone must not shield the determinism cone:\n{:#?}",
        report.diagnostics
    );
    assert_eq!(report.determinism_cone.get("train"), Some(&1));
}
