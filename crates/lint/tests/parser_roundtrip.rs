//! The brace-tree parser's structural invariant: flattening the tree
//! re-emits every token exactly once, in source order. Checked two ways —
//! against every real source file in this workspace, and against randomly
//! generated brace-balanced pseudo-Rust (proptest), which exercises
//! nesting shapes the real sources happen not to contain.

use optinter_lint::lexer::lex;
use optinter_lint::parser::Tree;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&entry, out);
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(entry);
        }
    }
}

fn assert_roundtrip(label: &str, src: &str) {
    let tokens = lex(src).unwrap_or_else(|e| panic!("{label}: lex error: {e:?}"));
    let tree = Tree::parse(&tokens).unwrap_or_else(|e| panic!("{label}: parse error: {e:?}"));
    let flat = tree.flatten(tokens.len());
    let expect: Vec<usize> = (0..tokens.len()).collect();
    assert_eq!(
        flat, expect,
        "{label}: flatten is not a token-for-token round-trip"
    );
}

/// Every `.rs` file in the workspace (shims included — they are real Rust
/// too, even if the linter's rules skip them) must parse into a tree that
/// flattens back to the identity permutation.
#[test]
fn every_workspace_source_roundtrips() {
    let root = optinter_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 40,
        "walker found only {} files; wrong root?",
        files.len()
    );
    let mut fns_seen = 0usize;
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable source");
        let label = path.display().to_string();
        assert_roundtrip(&label, &src);
        let tokens = lex(&src).expect("already lexed once");
        fns_seen += Tree::parse(&tokens).expect("already parsed once").fns.len();
    }
    assert!(
        fns_seen > 500,
        "only {fns_seen} fn items across the workspace; fn detection is broken"
    );
}

/// Renders a byte script as brace-balanced pseudo-Rust. Each byte picks a
/// fragment; closing braces are only emitted below the current depth and
/// whatever stays open is closed at the end, so every generated source is
/// balanced by construction.
fn render_source(script: &[u8]) -> String {
    let fragments: [&str; 12] = [
        "fn f() {\n",
        "pub fn g(x: u32) -> u32 {\n",
        "}\n",
        "let x = 1;\n",
        "if x > 0 {\n",
        "match x {\n",
        "struct S;\n",
        "// a comment with } and { inside\n",
        "let s = \"string with } brace\";\n",
        "let c = '{';\n",
        "#[inline]\n",
        "let y = 2.5e3 + x as f32;\n",
    ];
    let mut out = String::new();
    let mut depth = 0usize;
    for &b in script {
        let frag = fragments[b as usize % fragments.len()];
        if frag.starts_with('}') {
            if depth == 0 {
                continue;
            }
            depth -= 1;
        } else if frag.trim_end().ends_with('{') {
            depth += 1;
        }
        out.push_str(frag);
    }
    for _ in 0..depth {
        out.push_str("}\n");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    // 0..12 covers every fragment exactly once (render_source indexes mod 12).
    fn random_brace_balanced_sources_roundtrip(script in proptest::collection::vec(0u8..12, 0..120)) {
        let src = render_source(&script);
        let tokens = lex(&src).expect("generated source must lex");
        let tree = match Tree::parse(&tokens) {
            Ok(t) => t,
            Err(e) => panic!("generated source failed to parse: {e:?}\n---\n{src}"),
        };
        let flat = tree.flatten(tokens.len());
        let expect: Vec<usize> = (0..tokens.len()).collect();
        prop_assert_eq!(flat, expect);
    }
}
