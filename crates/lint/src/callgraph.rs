//! Workspace call graph over the brace-tree parser (DESIGN.md §12).
//!
//! The per-file rules answer "which fn is this token in"; the reachability
//! rules (derived-hot-path, panic-free) additionally need "which fns can
//! this fn reach". This module indexes every `fn` item across the
//! workspace and resolves call sites to candidate callees with a
//! *conservative-for-reachability* stance: when a call cannot be resolved
//! precisely, it resolves to **every** same-named candidate (so the
//! reachable set over-approximates and the rules stay sound against their
//! failure mode), and only calls whose qualifier is provably external
//! (`Vec::new`, `u32::from_le_bytes`, ...) produce no edge.
//!
//! Edges come in two tiers: [`CallGraph::edges`] holds everything
//! including the name-fallbacks (what panic-free traverses), and
//! [`CallGraph::precise`] only the pinned resolutions (what the
//! derived-hot-path perf closure traverses) — see the field docs.
//!
//! Resolution rules, in order:
//! - `self.m(...)` — methods named `m` on the enclosing `impl` type; for a
//!   trait impl the trait's own `m` (default methods) is included; if the
//!   type has no `m` at all, fall back to every workspace method named `m`.
//! - `Type::m(...)` / `Self::m(...)` — methods of that indexed type, plus
//!   free fns named `m` in modules whose last segment is `Type` (paths like
//!   `channel::bounded`). An unindexed qualifier is external: no edge.
//! - `recv.m(...)` — every workspace method named `m` (the receiver's type
//!   is beyond a token-level analysis).
//! - bare `f(...)` — free fns named `f` in the caller's module if any exist
//!   (shadowing an import with a local item is a compile error in Rust, so
//!   same-module-first is exact); otherwise every workspace free fn named
//!   `f`; otherwise external.
//!
//! Known unsoundness (documented, accepted): `#[derive]`-generated bodies
//! and `<T as Trait>::m` UFCS calls are invisible at token level, and
//! calls through function pointers/closures passed as values resolve only
//! at the point where the closure's body text lives (which *is* scanned,
//! inside its defining fn). The dynamic harnesses (counting allocator,
//! fuzzed decode) backstop these gaps.

use crate::lexer::{Tok, Token};
use crate::parser::Tree;
use crate::rules::FileMeta;
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed file, borrowed from the workspace pipeline.
pub struct FileSource<'a> {
    /// Caller-chosen id, echoed in [`FnNode::file`].
    pub file: usize,
    pub meta: &'a FileMeta,
    pub tokens: &'a [Token],
    /// Comment-free token indices (see `rules::analyze_prelude`).
    pub code: &'a [usize],
    pub tree: &'a Tree,
}

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The [`FileSource::file`] id of the defining file.
    pub file: usize,
    /// Index into that file's `Tree::fns`.
    pub fn_idx: usize,
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if the fn is a method.
    pub self_type: Option<String>,
    /// For `impl Trait for Type` methods, the trait's name.
    pub impl_trait: Option<String>,
    /// Module path derived from the file path (`data::channel`).
    pub module: String,
    /// Fully qualified display path: `module::[Type::]name`.
    pub qual: String,
    pub is_test: bool,
    pub has_body: bool,
}

/// The workspace call graph: nodes, adjacency, and resolution indexes.
#[derive(Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `edges[n]` = candidate callees of node `n`, deduplicated. Includes
    /// the conservative name-fallback edges — the sound over-approximation
    /// the panic-free rule traverses.
    pub edges: Vec<Vec<usize>>,
    /// `precise[n]` ⊆ `edges[n]`: only edges whose resolution pinned the
    /// callee (own-impl `self.m()`, `Type::m()` on an indexed type,
    /// same-module bare calls). The derived-hot-path rule traverses these —
    /// it is a perf ratchet backstopped by the counting allocator, and
    /// name-fallback edges would make every `.map()`/`.push()` collision
    /// "hot" (DESIGN.md §12).
    pub precise: Vec<Vec<usize>>,
    node_of: BTreeMap<(usize, usize), usize>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    methods_by_type: BTreeMap<(String, String), Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    free_by_module: BTreeMap<(String, String), Vec<usize>>,
    /// Module-path last segment -> full module paths (for `mod::f()` calls).
    modules_by_last_seg: BTreeMap<String, Vec<String>>,
    type_names: BTreeSet<String>,
}

/// Identifiers that look like calls (`if (x)`) or definitions (`fn f(`)
/// but are not, plus identifiers that cannot precede a real slice index.
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "in",
    "as", "move", "ref", "mut", "fn", "where", "impl", "dyn", "unsafe", "use", "pub", "struct",
    "enum", "trait", "mod", "const", "static", "type", "crate", "super",
];

/// Derives a module path from a workspace-relative file path:
/// `crates/data/src/channel.rs` -> `data::channel`, `src/main.rs` ->
/// `root`, `crates/nn/src/mlp.rs` -> `nn::mlp`. A trailing `lib`/`main`/
/// `mod` segment names the enclosing module and is dropped.
pub fn module_path(rel_path: &str, crate_key: &str) -> String {
    let p = rel_path.strip_suffix(".rs").unwrap_or(rel_path);
    let parts: Vec<&str> = p.split('/').collect();
    let (krate, rest): (&str, &[&str]) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
        (parts[1], &parts[2..])
    } else {
        (crate_key, &parts[..])
    };
    let rest = if rest.first() == Some(&"src") {
        &rest[1..]
    } else {
        rest
    };
    let mut segs: Vec<&str> = vec![krate];
    for (i, s) in rest.iter().enumerate() {
        let is_last = i + 1 == rest.len();
        if is_last && matches!(*s, "lib" | "main" | "mod") {
            continue;
        }
        segs.push(s);
    }
    segs.join("::")
}

#[derive(Debug, Clone, PartialEq)]
enum CallKind {
    SelfMethod,
    Method,
    Qualified(String),
    Bare,
}

impl CallGraph {
    /// The node for `(file, fn_idx)`, if that fn was indexed.
    pub fn node_at(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.node_of.get(&(file, fn_idx)).copied()
    }

    /// Nodes whose qualified path ends with `pattern` at a `::` boundary
    /// (`scorer::FrozenScorer::score_into` matches
    /// `serve::scorer::FrozenScorer::score_into`). Test fns and bodiless
    /// declarations never match — a root must be real code.
    pub fn resolve_pattern(&self, pattern: &str) -> Vec<usize> {
        let suffix = format!("::{pattern}");
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.has_body && !n.is_test)
            .filter(|(_, n)| n.qual == pattern || n.qual.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect()
    }

    /// Builds the graph: indexes every fn, then resolves every call site.
    pub fn build(files: &[FileSource<'_>]) -> CallGraph {
        let mut g = CallGraph::default();
        for f in files {
            g.index_file(f);
        }
        for n in &g.nodes {
            if n.is_test || !n.has_body {
                continue;
            }
            g.modules_by_last_seg
                .entry(last_seg(&n.module).to_string())
                .or_default()
                .push(n.module.clone());
        }
        for mods in g.modules_by_last_seg.values_mut() {
            mods.sort();
            mods.dedup();
        }
        g.edges = vec![Vec::new(); g.nodes.len()];
        g.precise = vec![Vec::new(); g.nodes.len()];
        for f in files {
            g.extract_calls(f);
        }
        g
    }

    fn index_file(&mut self, f: &FileSource<'_>) {
        let module = module_path(&f.meta.rel_path, &f.meta.crate_key);
        let containers = container_blocks(f.tokens, f.code, f.tree);
        for (fn_idx, item) in f.tree.fns.iter().enumerate() {
            let is_test = item.is_test || f.meta.is_test_file;
            let (self_type, impl_trait) = enclosing_container(f.tree, item.fn_tok, &containers)
                .map(|(t, tr)| (Some(t), tr))
                .unwrap_or((None, None));
            let qual = match &self_type {
                Some(t) => format!("{module}::{t}::{}", item.name),
                None => format!("{module}::{}", item.name),
            };
            let id = self.nodes.len();
            self.node_of.insert((f.file, fn_idx), id);
            let node = FnNode {
                file: f.file,
                fn_idx,
                name: item.name.clone(),
                self_type: self_type.clone(),
                impl_trait,
                module: module.clone(),
                qual,
                is_test,
                has_body: item.body.is_some(),
            };
            // Test fns are indexed (so every (file, fn_idx) has a node) but
            // never resolve as call targets.
            if !is_test {
                match &self_type {
                    Some(t) => {
                        self.type_names.insert(t.clone());
                        self.methods_by_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                        self.methods_by_type
                            .entry((t.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        self.free_by_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                        self.free_by_module
                            .entry((module.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
            self.nodes.push(node);
        }
    }

    fn extract_calls(&mut self, f: &FileSource<'_>) {
        let n = f.code.len();
        let tok = |ci: usize| &f.tokens[f.code[ci]].tok;
        for ci in 0..n {
            let Tok::Ident(name) = tok(ci) else { continue };
            if ci + 1 >= n || *tok(ci + 1) != Tok::Punct('(') {
                continue;
            }
            if NON_CALL_KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            let kind = if ci > 0 && *tok(ci - 1) == Tok::Punct('.') {
                if ci >= 2 && *tok(ci - 2) == Tok::Ident("self".to_string()) {
                    CallKind::SelfMethod
                } else {
                    CallKind::Method
                }
            } else if ci >= 2 && *tok(ci - 1) == Tok::Punct(':') && *tok(ci - 2) == Tok::Punct(':')
            {
                match path_qualifier(f.tokens, f.code, ci) {
                    Some(q) => CallKind::Qualified(q),
                    None => continue, // `<T as Trait>::m(...)`: unresolvable, external
                }
            } else if ci > 0 && matches!(tok(ci - 1), Tok::Ident(k) if k == "fn") {
                continue; // a definition, not a call
            } else {
                CallKind::Bare
            };
            let raw = f.code[ci];
            let Some(fn_idx) = f.tree.innermost_fn_at(raw) else {
                continue; // attribute args, const expressions: not in a body
            };
            let Some(caller) = self.node_at(f.file, fn_idx) else {
                continue;
            };
            if self.nodes[caller].is_test {
                continue;
            }
            let (targets, is_precise) = self.resolve(caller, &kind, name);
            let targets = self.expand_trait_decls(targets, name);
            for t in targets {
                if t == caller {
                    continue;
                }
                if !self.edges[caller].contains(&t) {
                    self.edges[caller].push(t);
                }
                if is_precise && !self.precise[caller].contains(&t) {
                    self.precise[caller].push(t);
                }
            }
        }
    }

    /// Resolves one call to candidate callees. The `bool` says whether the
    /// resolution pinned the callee (a *precise* edge) or fell back to
    /// name matching (conservative: right for reachability soundness,
    /// excluded from the hot-path perf closure).
    fn resolve(&self, caller: usize, kind: &CallKind, name: &str) -> (Vec<usize>, bool) {
        let c = &self.nodes[caller];
        match kind {
            CallKind::SelfMethod => self.resolve_self(c, name),
            // `recv.m(...)`: the receiver's type is beyond a token-level
            // analysis — every same-named method, never precise.
            CallKind::Method => (
                self.methods_by_name.get(name).cloned().unwrap_or_default(),
                false,
            ),
            CallKind::Qualified(q) if q == "Self" => self.resolve_self(c, name),
            CallKind::Qualified(q) => {
                let mut out = self
                    .methods_by_type
                    .get(&(q.clone(), name.to_string()))
                    .cloned()
                    .unwrap_or_default();
                // `channel::bounded(...)`: the qualifier names a module.
                let q_mod = q.strip_prefix("optinter_").unwrap_or(q);
                if let Some(mods) = self.modules_by_last_seg.get(q_mod) {
                    for m in mods {
                        if let Some(fs) = self.free_by_module.get(&(m.clone(), name.to_string())) {
                            out.extend(fs.iter().copied());
                        }
                    }
                }
                (out, true)
            }
            CallKind::Bare => {
                if let Some(fs) = self
                    .free_by_module
                    .get(&(c.module.clone(), name.to_string()))
                {
                    // A local item shadowing an import is a compile error
                    // in Rust, so same-module-first is exact.
                    return (fs.clone(), true);
                }
                (
                    self.free_by_name.get(name).cloned().unwrap_or_default(),
                    false,
                )
            }
        }
    }

    fn resolve_self(&self, c: &FnNode, name: &str) -> (Vec<usize>, bool) {
        let mut out = Vec::new();
        if let Some(t) = &c.self_type {
            if let Some(ms) = self.methods_by_type.get(&(t.clone(), name.to_string())) {
                out.extend(ms.iter().copied());
            }
        }
        if out.is_empty() {
            if let Some(tr) = &c.impl_trait {
                if let Some(ms) = self.methods_by_type.get(&(tr.clone(), name.to_string())) {
                    out.extend(ms.iter().copied());
                }
            }
        }
        if !out.is_empty() {
            return (out, true);
        }
        // Conservative fallback: the method comes from a trait the
        // analysis did not connect — assume any same-named method.
        (
            self.methods_by_name.get(name).cloned().unwrap_or_default(),
            false,
        )
    }

    /// When a call resolves to a bodiless trait-method *declaration*
    /// (`fn required(&self);` inside `trait T`), the code that actually
    /// runs is some implementor's — so extend the target set with every
    /// method named `name` whose `impl ... for` trait matches. The
    /// declaration node stays in the set (harmless: no body, no edges).
    fn expand_trait_decls(&self, mut targets: Vec<usize>, name: &str) -> Vec<usize> {
        let traits: Vec<String> = targets
            .iter()
            .filter(|&&t| !self.nodes[t].has_body)
            .filter_map(|&t| self.nodes[t].self_type.clone())
            .collect();
        if traits.is_empty() {
            return targets;
        }
        for &m in self.methods_by_name.get(name).into_iter().flatten() {
            if self.nodes[m]
                .impl_trait
                .as_ref()
                .is_some_and(|tr| traits.contains(tr))
                && !targets.contains(&m)
            {
                targets.push(m);
            }
        }
        targets
    }
}

fn last_seg(module: &str) -> &str {
    module.rsplit("::").next().unwrap_or(module)
}

/// The last path segment before a `::name(` call: the `Pool` of
/// `tensor::Pool::new(...)`, skipping turbofish/generic args
/// (`Vec::<u32>::new`, `Submitter<'_, C>::submit`). `None` when the
/// segment is not a plain identifier (`<T as Trait>::m`).
fn path_qualifier(tokens: &[Token], code: &[usize], name_ci: usize) -> Option<String> {
    let tok = |ci: usize| &tokens[code[ci]].tok;
    // name_ci - 1 and name_ci - 2 are the `::`.
    let mut k = name_ci.checked_sub(3)?;
    if *tok(k) == Tok::Punct('>') {
        // Skip a generic-argument list back to its `<`.
        let mut depth = 0i32;
        loop {
            match tok(k) {
                Tok::Punct('>') => depth += 1,
                Tok::Punct('<') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k = k.checked_sub(1)?;
        }
        k = k.checked_sub(1)?;
        // `::<` turbofish: the segment ident sits before another `::`.
        if *tok(k) == Tok::Punct(':') {
            k = k.checked_sub(2)?;
        }
    }
    match tok(k) {
        Tok::Ident(q) => Some(q.clone()),
        _ => None,
    }
}

/// Maps block ids to the `impl`/`trait` container that owns them:
/// `(type_or_trait_name, Some(trait_name) for trait impls)`.
fn container_blocks(
    tokens: &[Token],
    code: &[usize],
    tree: &Tree,
) -> BTreeMap<usize, (String, Option<String>)> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut out = BTreeMap::new();
    for ci in 0..n {
        let Tok::Ident(kw) = tok(ci) else { continue };
        match kw.as_str() {
            "impl" => {
                let mut j = ci + 1;
                // Skip the generic parameter list of `impl<T: Bound> ...`.
                if j < n && *tok(j) == Tok::Punct('<') {
                    let mut depth = 0i32;
                    while j < n {
                        match tok(j) {
                            Tok::Punct('<') => depth += 1,
                            Tok::Punct('>') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                }
                let (first, after) = read_type_path(tokens, code, j);
                let (ty, tr, open_from) = match after {
                    Some(k) if matches!(tok(k), Tok::Ident(s) if s == "for") => {
                        let (second, after2) = read_type_path(tokens, code, k + 1);
                        match second {
                            Some(ty) => (Some(ty), first, after2.unwrap_or(k + 1)),
                            None => (None, None, k + 1),
                        }
                    }
                    Some(k) => (first, None, k),
                    None => (None, None, j),
                };
                let Some(ty) = ty else { continue };
                if let Some(block) = body_block(tokens, code, tree, open_from) {
                    out.insert(block, (ty, tr));
                }
            }
            "trait" => {
                let Some(Tok::Ident(name)) = (ci + 1 < n).then(|| tok(ci + 1)) else {
                    continue;
                };
                let name = name.clone();
                if let Some(block) = body_block(tokens, code, tree, ci + 2) {
                    out.insert(block, (name, None));
                }
            }
            _ => {}
        }
    }
    out
}

/// Reads a type path starting at code index `j` (`&'a mut a::B<T>`),
/// returning its last plain-identifier segment and the code index of the
/// first token after the path (a `for`, `where`, `{`, ...).
fn read_type_path(
    tokens: &[Token],
    code: &[usize],
    mut j: usize,
) -> (Option<String>, Option<usize>) {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut last: Option<String> = None;
    while j < n {
        match tok(j) {
            Tok::Punct('&') | Tok::Punct('!') | Tok::Lifetime(_) => j += 1,
            Tok::Ident(s) if s == "mut" || s == "dyn" => j += 1,
            Tok::Ident(s) if s == "for" || s == "where" => return (last, Some(j)),
            Tok::Ident(s) => {
                last = Some(s.clone());
                j += 1;
            }
            Tok::Punct(':') if j + 1 < n && *tok(j + 1) == Tok::Punct(':') => j += 2,
            Tok::Punct('<') => {
                let mut depth = 0i32;
                while j < n {
                    match tok(j) {
                        Tok::Punct('<') => depth += 1,
                        Tok::Punct('>') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            _ => return (last, Some(j)),
        }
    }
    (last, None)
}

/// The block opened by the first `{` at or after code index `from`.
fn body_block(tokens: &[Token], code: &[usize], tree: &Tree, from: usize) -> Option<usize> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut j = from;
    while j < n {
        match tok(j) {
            Tok::Punct('{') => return tree.block_at_open(code[j]),
            Tok::Punct(';') => return None,
            _ => j += 1,
        }
    }
    None
}

/// The `impl`/`trait` container of the innermost enclosing block of raw
/// token `i`, walking outwards through nested blocks.
fn enclosing_container(
    tree: &Tree,
    i: usize,
    containers: &BTreeMap<usize, (String, Option<String>)>,
) -> Option<(String, Option<String>)> {
    let mut block = tree
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.open < i && i < b.close)
        .max_by_key(|(_, b)| b.open)
        .map(|(id, _)| id);
    while let Some(id) = block {
        if let Some(c) = containers.get(&id) {
            return Some(c.clone());
        }
        block = tree.blocks[id].parent;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    type ParsedFile = (Vec<Token>, Vec<usize>, Tree);

    fn graph_of(files: &[(&str, &str, &str)]) -> (CallGraph, Vec<ParsedFile>) {
        let mut parsed = Vec::new();
        for (_, _, src) in files {
            let tokens = lex(src).expect("fixture must lex");
            let code: Vec<usize> = tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
                .map(|(i, _)| i)
                .collect();
            let tree = Tree::parse(&tokens).expect("fixture must parse");
            parsed.push((tokens, code, tree));
        }
        let metas: Vec<FileMeta> = files
            .iter()
            .map(|(rel, key, _)| FileMeta {
                rel_path: rel.to_string(),
                crate_key: key.to_string(),
                is_test_file: false,
            })
            .collect();
        let sources: Vec<FileSource<'_>> = parsed
            .iter()
            .zip(metas.iter())
            .enumerate()
            .map(|(i, ((tokens, code, tree), meta))| FileSource {
                file: i,
                meta,
                tokens,
                code,
                tree,
            })
            .collect();
        let g = CallGraph::build(&sources);
        drop(sources);
        drop(metas);
        (g, parsed)
    }

    fn quals_called_by(g: &CallGraph, qual: &str) -> Vec<String> {
        let n = g
            .nodes
            .iter()
            .position(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("no node {qual}"));
        let mut out: Vec<String> = g.edges[n]
            .iter()
            .map(|&t| g.nodes[t].qual.clone())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn module_paths_from_file_paths() {
        assert_eq!(
            module_path("crates/data/src/channel.rs", "data"),
            "data::channel"
        );
        assert_eq!(module_path("crates/data/src/lib.rs", "data"), "data");
        assert_eq!(module_path("src/main.rs", "root"), "root");
        assert_eq!(module_path("tests/lint.rs", "root"), "root::tests::lint");
        assert_eq!(
            module_path("crates/nn/src/layers/dense.rs", "nn"),
            "nn::layers::dense"
        );
    }

    #[test]
    fn self_calls_prefer_own_impl_over_shadowed_names() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "alpha",
            r#"
            pub struct A;
            pub struct B;
            impl A {
                pub fn m(&self) {}
                pub fn entry(&self) { self.m(); }
            }
            impl B {
                pub fn m(&self) {}
            }
            "#,
        )]);
        assert_eq!(quals_called_by(&g, "alpha::A::entry"), vec!["alpha::A::m"]);
    }

    #[test]
    fn unknown_receiver_falls_back_to_all_same_named_methods() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "alpha",
            r#"
            pub struct A;
            pub struct B;
            impl A { pub fn m(&self) {} }
            impl B { pub fn m(&self) {} }
            pub fn entry(x: &A) { x.m(); }
            "#,
        )]);
        assert_eq!(
            quals_called_by(&g, "alpha::entry"),
            vec!["alpha::A::m", "alpha::B::m"]
        );
    }

    #[test]
    fn trait_impl_methods_and_defaults_resolve() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "alpha",
            r#"
            pub trait T {
                fn required(&self);
                fn with_default(&self) { self.required(); }
            }
            pub struct A;
            impl T for A {
                fn required(&self) { self.with_default(); }
            }
            "#,
        )]);
        // `self.with_default()` in `impl T for A`: A has no `with_default`,
        // so the trait's default method is found.
        assert_eq!(
            quals_called_by(&g, "alpha::A::required"),
            vec!["alpha::T::with_default"]
        );
        // The default body's `self.required()` conservatively reaches every
        // implementor.
        let called = quals_called_by(&g, "alpha::T::with_default");
        assert!(
            called.contains(&"alpha::A::required".to_string()),
            "{called:?}"
        );
    }

    #[test]
    fn cross_crate_qualified_and_bare_calls_resolve() {
        let (g, _) = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "alpha",
                r#"
                pub fn entry() {
                    helper();
                    optinter_beta::util::remote();
                    util::remote();
                }
                fn helper() {}
                "#,
            ),
            ("crates/beta/src/util.rs", "beta", "pub fn remote() {}"),
        ]);
        assert_eq!(
            quals_called_by(&g, "alpha::entry"),
            vec!["alpha::helper", "beta::util::remote",]
        );
    }

    #[test]
    fn same_module_free_fn_shadows_workspace_wide() {
        let (g, _) = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "alpha",
                "pub fn entry() { helper(); }\nfn helper() {}",
            ),
            ("crates/beta/src/lib.rs", "beta", "pub fn helper() {}"),
        ]);
        assert_eq!(quals_called_by(&g, "alpha::entry"), vec!["alpha::helper"]);
        // Without a local `helper`, the call goes workspace-wide.
        let (g2, _) = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "alpha",
                "pub fn entry() { helper(); }",
            ),
            ("crates/beta/src/lib.rs", "beta", "pub fn helper() {}"),
        ]);
        assert_eq!(quals_called_by(&g2, "alpha::entry"), vec!["beta::helper"]);
    }

    #[test]
    fn external_qualifiers_produce_no_edges() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "alpha",
            r#"
            pub fn entry() {
                let v: Vec<u32> = Vec::new();
                let x = u32::from_le_bytes([0; 4]);
                let _ = (v, x);
            }
            pub fn new() {} // must NOT be reached by Vec::new
            "#,
        )]);
        assert_eq!(quals_called_by(&g, "alpha::entry"), Vec::<String>::new());
    }

    #[test]
    fn turbofish_and_generic_qualifiers_resolve() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "alpha",
            r#"
            pub struct Holder<T> { v: T }
            impl<T> Holder<T> {
                pub fn make() -> usize { 0 }
            }
            pub fn entry() {
                let _ = Holder::<u32>::make();
            }
            "#,
        )]);
        assert_eq!(
            quals_called_by(&g, "alpha::entry"),
            vec!["alpha::Holder::make"]
        );
    }

    #[test]
    fn test_fns_are_indexed_but_never_targets() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "alpha",
            r#"
            pub fn entry() { helper(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn helper() {}
            }
            "#,
        )]);
        assert_eq!(quals_called_by(&g, "alpha::entry"), Vec::<String>::new());
    }

    #[test]
    fn pattern_resolution_matches_suffix_at_boundaries() {
        let (g, _) = graph_of(&[(
            "crates/alpha/src/scorer.rs",
            "alpha",
            r#"
            pub struct Scorer;
            pub struct Other;
            impl Scorer { pub fn score_into(&self) {} }
            impl Other { pub fn score_into(&self) {} }
            pub fn some_score_into() {}
            "#,
        )]);
        let hits = g.resolve_pattern("Scorer::score_into");
        assert_eq!(hits.len(), 1);
        assert_eq!(g.nodes[hits[0]].qual, "alpha::scorer::Scorer::score_into");
        // `score_into` alone matches both methods; boundary matching means
        // the free fn `some_score_into` is not a suffix hit.
        assert_eq!(g.resolve_pattern("score_into").len(), 2);
        assert!(g.resolve_pattern("e_into").is_empty());
    }
}
