//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p optinter-lint -- check              # lint, exit 1 on findings
//! cargo run -p optinter-lint -- check --json       # machine-readable report
//! cargo run -p optinter-lint -- check --github     # GitHub ::error annotations
//! cargo run -p optinter-lint -- update-baseline    # tighten the ratchets
//! cargo run -p optinter-lint -- update-baseline --allow-raise  # loosen (flagged)
//! cargo run -p optinter-lint -- check --root PATH  # lint another checkout
//! ```

use optinter_lint::Report;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Output {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut output = Output::Human;
    let mut allow_raise = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "update-baseline" if cmd.is_none() => cmd = Some(&args[i]),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_arg = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--json" => output = Output::Json,
            "--github" => output = Output::Github,
            "--allow-raise" => allow_raise = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    let Some(cmd) = cmd else {
        return usage("missing command");
    };
    if output != Output::Human && cmd != "check" {
        return usage("--json/--github only apply to `check`");
    }
    if allow_raise && cmd != "update-baseline" {
        return usage("--allow-raise only applies to `update-baseline`");
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read current dir: {e}")),
            };
            match optinter_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            }
        }
    };

    match cmd {
        "check" => match optinter_lint::check_workspace(&root) {
            Ok(report) => render(&report, output),
            Err(e) => fail(&e),
        },
        "update-baseline" => match optinter_lint::update_baseline(&root, allow_raise) {
            Ok(path) => {
                println!("optinter-lint: wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        _ => unreachable!(),
    }
}

fn render(report: &Report, output: Output) -> ExitCode {
    match output {
        Output::Human => {
            if report.is_clean() {
                println!(
                    "optinter-lint: {} files clean (hash-iter, unsafe-confinement, \
                     wall-clock, panic-ratchet, hot-path-alloc, float-reduction-order, \
                     panic-free); {} hot-path fns derived",
                    report.files_checked,
                    report.hot_fns.len()
                );
            } else {
                for d in &report.diagnostics {
                    eprintln!("{d}");
                }
                eprintln!(
                    "optinter-lint: {} violation(s) across {} files",
                    report.diagnostics.len(),
                    report.files_checked
                );
            }
        }
        Output::Json => println!("{}", to_json(report)),
        Output::Github => {
            // One workflow-command annotation per diagnostic; GitHub shows
            // them inline on the PR diff. Still exits non-zero so the job
            // fails.
            for d in &report.diagnostics {
                println!(
                    "::error file={},line={},title=optinter-lint {}::{}",
                    gh_escape_property(&d.path),
                    d.line.max(1),
                    gh_escape_property(d.rule.name()),
                    gh_escape_data(&d.message)
                );
            }
            println!(
                "optinter-lint: {} violation(s) across {} files",
                report.diagnostics.len(),
                report.files_checked
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the report as one JSON object. Hand-rolled — the linter is
/// dependency-free — so every dynamic string goes through `json_string`.
fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.path),
            d.line,
            json_string(d.rule.name()),
            json_string(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    for (key, counts) in [
        ("unwrap_expect", &report.unwrap_expect),
        ("unsafe_sites", &report.unsafe_sites),
        ("hot_path_alloc", &report.hot_path_alloc),
        ("panic_free", &report.panic_free),
    ] {
        out.push_str(&format!("  \"{key}\": {{"));
        for (i, (krate, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(krate), n));
        }
        out.push_str("},\n");
    }
    out.push_str("  \"hot_fns\": [");
    for (i, qual) in report.hot_fns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(qual));
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"hot_fn_count\": {},\n  \"files_checked\": {},\n  \"clean\": {}\n}}",
        report.hot_fns.len(),
        report.files_checked,
        report.is_clean()
    ));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escaping for the message part of a GitHub workflow command.
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escaping for property values (`file=`, `title=`): the data escapes plus
/// the property delimiters.
fn gh_escape_property(s: &str) -> String {
    gh_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("optinter-lint: {err}");
    }
    eprintln!(
        "usage: optinter-lint <check|update-baseline> [--root PATH] [--json|--github] \
         [--allow-raise]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("optinter-lint: {msg}");
    ExitCode::FAILURE
}
