//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p optinter-lint -- check              # lint, exit 1 on findings
//! cargo run -p optinter-lint -- update-baseline    # tighten the panic ratchet
//! cargo run -p optinter-lint -- check --root PATH  # lint another checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "update-baseline" if cmd.is_none() => cmd = Some(&args[i]),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_arg = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    let Some(cmd) = cmd else {
        return usage("missing command");
    };

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read current dir: {e}")),
            };
            match optinter_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            }
        }
    };

    match cmd {
        "check" => match optinter_lint::check_workspace(&root) {
            Ok(report) => {
                if report.is_clean() {
                    println!(
                        "optinter-lint: {} files clean (hash-iter, unsafe-confinement, \
                         wall-clock, panic-ratchet)",
                        report.files_checked
                    );
                    ExitCode::SUCCESS
                } else {
                    for d in &report.diagnostics {
                        eprintln!("{d}");
                    }
                    eprintln!(
                        "optinter-lint: {} violation(s) across {} files",
                        report.diagnostics.len(),
                        report.files_checked
                    );
                    ExitCode::FAILURE
                }
            }
            Err(e) => fail(&e),
        },
        "update-baseline" => match optinter_lint::update_baseline(&root) {
            Ok(path) => {
                println!("optinter-lint: wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        _ => unreachable!(),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("optinter-lint: {err}");
    }
    eprintln!("usage: optinter-lint <check|update-baseline> [--root PATH]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("optinter-lint: {msg}");
    ExitCode::FAILURE
}
