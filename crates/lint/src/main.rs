//! CLI for the workspace linter.
//!
//! ```text
//! cargo run -p optinter-lint -- check              # lint, exit 1 on findings
//! cargo run -p optinter-lint -- check --json       # machine-readable report
//! cargo run -p optinter-lint -- check --github     # GitHub ::error annotations
//! cargo run -p optinter-lint -- check --sarif      # SARIF 2.1.0 for code scanning
//! cargo run -p optinter-lint -- update-baseline    # tighten the ratchets
//! cargo run -p optinter-lint -- update-baseline --allow-raise  # loosen (flagged)
//! cargo run -p optinter-lint -- check --root PATH  # lint another checkout
//! ```

use optinter_lint::Report;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Output {
    Human,
    Json,
    Github,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut output = Output::Human;
    let mut allow_raise = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "update-baseline" if cmd.is_none() => cmd = Some(&args[i]),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_arg = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--json" => output = Output::Json,
            "--github" => output = Output::Github,
            "--sarif" => output = Output::Sarif,
            "--allow-raise" => allow_raise = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    let Some(cmd) = cmd else {
        return usage("missing command");
    };
    if output != Output::Human && cmd != "check" {
        return usage("--json/--github/--sarif only apply to `check`");
    }
    if allow_raise && cmd != "update-baseline" {
        return usage("--allow-raise only applies to `update-baseline`");
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read current dir: {e}")),
            };
            match optinter_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            }
        }
    };

    match cmd {
        "check" => match optinter_lint::check_workspace(&root) {
            Ok(report) => render(&report, output),
            Err(e) => fail(&e),
        },
        "update-baseline" => match optinter_lint::update_baseline(&root, allow_raise) {
            Ok(path) => {
                println!("optinter-lint: wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        _ => unreachable!(),
    }
}

fn render(report: &Report, output: Output) -> ExitCode {
    match output {
        Output::Human => {
            if report.is_clean() {
                println!(
                    "optinter-lint: {} files clean (hash-iter, unsafe-confinement, \
                     wall-clock, panic-ratchet, hot-path-alloc, float-reduction-order, \
                     panic-free, determinism-cone, no-blocking-cone); {} hot-path fns \
                     derived",
                    report.files_checked,
                    report.hot_fns.len()
                );
            } else {
                for d in &report.diagnostics {
                    eprintln!("{d}");
                }
                eprintln!(
                    "optinter-lint: {} violation(s) across {} files",
                    report.diagnostics.len(),
                    report.files_checked
                );
            }
        }
        Output::Json => println!("{}", to_json(report)),
        Output::Github => {
            // One workflow-command annotation per diagnostic; GitHub shows
            // them inline on the PR diff. Still exits non-zero so the job
            // fails. Reachability diagnostics append the full (non-elided)
            // witness chain so a reviewer can audit every hop from the
            // annotation alone.
            for d in &report.diagnostics {
                let message = match &d.witness {
                    Some(w) => format!("{} [witness: {w}]", d.message),
                    None => d.message.clone(),
                };
                println!(
                    "::error file={},line={},title=optinter-lint {}::{}",
                    gh_escape_property(&d.path),
                    d.line.max(1),
                    gh_escape_property(d.rule.name()),
                    gh_escape_data(&message)
                );
            }
            println!(
                "optinter-lint: {} violation(s) across {} files",
                report.diagnostics.len(),
                report.files_checked
            );
        }
        Output::Sarif => println!("{}", to_sarif(report)),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the report as one JSON object. Hand-rolled — the linter is
/// dependency-free — so every dynamic string goes through `json_string`.
fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let witness = match &d.witness {
            Some(w) => format!(", \"witness\": {}", json_string(w)),
            None => String::new(),
        };
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}{witness}}}",
            json_string(&d.path),
            d.line,
            json_string(d.rule.name()),
            json_string(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    for (key, counts) in [
        ("unwrap_expect", &report.unwrap_expect),
        ("unsafe_sites", &report.unsafe_sites),
        ("hot_path_alloc", &report.hot_path_alloc),
        ("panic_free", &report.panic_free),
        ("determinism_cone", &report.determinism_cone),
        ("no_blocking_cone", &report.no_blocking_cone),
    ] {
        out.push_str(&format!("  \"{key}\": {{"));
        for (i, (krate, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(krate), n));
        }
        out.push_str("},\n");
    }
    out.push_str("  \"root_effects\": {");
    for (i, (root, summary)) in report.root_effects.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_string(root), json_string(summary)));
    }
    out.push_str("},\n");
    out.push_str("  \"hot_fns\": [");
    for (i, qual) in report.hot_fns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(qual));
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"hot_fn_count\": {},\n  \"files_checked\": {},\n  \"clean\": {}\n}}",
        report.hot_fns.len(),
        report.files_checked,
        report.is_clean()
    ));
    out
}

/// Renders the report as a minimal SARIF 2.1.0 log — one run, one rule
/// descriptor per distinct rule that fired, one result per diagnostic —
/// for the GitHub code-scanning upload action. Witness chains ride in the
/// result message so the annotation shows the full `root -> ... -> site`
/// path.
fn to_sarif(report: &Report) -> String {
    let mut rules: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.rule.name())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    rules.sort_unstable();
    let mut out = String::from(
        "{\n  \"$schema\": \
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\n      \
         \"name\": \"optinter-lint\",\n      \"rules\": [",
    );
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_string(rule),
            json_string(&format!("optinter-lint rule {rule}"))
        ));
    }
    if !rules.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }},\n    \"results\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let message = match &d.witness {
            Some(w) => format!("{} [witness: {w}]", d.message),
            None => d.message.clone(),
        };
        out.push_str(&format!(
            "\n      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \
             {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_string(d.rule.name()),
            json_string(&message),
            json_string(&d.path),
            d.line.max(1)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escaping for the message part of a GitHub workflow command.
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escaping for property values (`file=`, `title=`): the data escapes plus
/// the property delimiters.
fn gh_escape_property(s: &str) -> String {
    gh_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("optinter-lint: {err}");
    }
    eprintln!(
        "usage: optinter-lint <check|update-baseline> [--root PATH] \
         [--json|--github|--sarif] [--allow-raise]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("optinter-lint: {msg}");
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;
    use optinter_lint::rules::{Diagnostic, Rule};
    use std::collections::{BTreeMap, BTreeSet};

    fn report_with(diagnostics: Vec<Diagnostic>) -> Report {
        Report {
            diagnostics,
            unwrap_expect: BTreeMap::new(),
            unsafe_sites: BTreeMap::new(),
            hot_path_alloc: BTreeMap::new(),
            panic_free: BTreeMap::new(),
            determinism_cone: BTreeMap::new(),
            no_blocking_cone: BTreeMap::new(),
            root_effects: BTreeMap::new(),
            hot_fns: BTreeSet::new(),
            glob_hot_fns: BTreeSet::new(),
            files_checked: 1,
        }
    }

    #[test]
    fn sarif_escapes_messages_and_carries_witness_chains() {
        let report = report_with(vec![Diagnostic {
            path: "crates/core/src/net.rs".to_string(),
            line: 7,
            rule: Rule::DeterminismCone,
            witness: Some("core::a -> core::b".to_string()),
            message: "a \"quoted\"\nmessage".to_string(),
        }]);
        let sarif = to_sarif(&report);
        // Well-formed enough for a JSON parser: balanced braces/brackets
        // and properly escaped quotes/newlines inside string values.
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"determinism-cone\""));
        assert!(sarif.contains("\\\"quoted\\\"\\nmessage"));
        assert!(sarif.contains("[witness: core::a -> core::b]"));
        assert!(sarif.contains("\"startLine\": 7"));
        // Line 0 (config diagnostics) clamps to SARIF's 1-based minimum.
        let cfg = report_with(vec![Diagnostic {
            path: "lint-baseline.toml".to_string(),
            line: 0,
            rule: Rule::Config,
            witness: None,
            message: "bad table".to_string(),
        }]);
        assert!(to_sarif(&cfg).contains("\"startLine\": 1"));
    }
}
