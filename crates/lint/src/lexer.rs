//! A hand-written lexer for the subset of Rust surface syntax the lint
//! rules need to see *correctly*.
//!
//! The rules in this crate are token-level, so the only hard requirement on
//! the lexer is that it never confuses code with non-code: a `//` inside a
//! string must not start a comment, an `unsafe` inside a doc comment must
//! not trip the confinement rule, a lifetime `'a` must not be mistaken for
//! an unterminated char literal, and `/* /* */ */` must nest the way Rust
//! nests it. Everything else (precise number grammar, multi-char operators)
//! is deliberately loose — single-char punctuation tokens are enough for
//! pattern matching.
//!
//! Comments are kept in the token stream (with their text) because two
//! rules read them: `unsafe`-confinement looks for `// SAFETY:` and the
//! suppression convention looks for `// lint: allow(...)`.

/// A lexed token. `Str`/`Char` drop their text and `Num` keeps only its
/// float-ness — no rule needs more — while idents, lifetimes and comments
/// keep their text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `for`, `HashMap`, `r#type`, ...).
    Ident(String),
    /// Lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// Single punctuation character.
    Punct(char),
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\u{1F600}'`, `b'\n'`.
    Char,
    /// Numeric literal (integers, floats, any radix, suffixes). `float` is
    /// true when the literal is a float (decimal point, exponent, or an
    /// `f32`/`f64` suffix) — the float-reduction-order rule reads it to
    /// spot float accumulators in `fold(0.0, ...)` calls.
    Num { float: bool },
    /// Comment text, markers included (`// …`, `/* … */`, `/// …`, `//! …`).
    Comment(String),
}

/// A token plus the 1-based line its first character sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A lexing failure; positioned so it can be reported like a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn err(&self, line: u32, message: &str) -> LexError {
        LexError {
            line,
            message: message.to_string(),
        }
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// `//`-comment up to (not including) the newline.
    fn line_comment(&mut self) -> Tok {
        let start = self.pos;
        while self.peek(0) != b'\n' && self.pos < self.src.len() {
            self.pos += 1;
        }
        Tok::Comment(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// `/* ... */` with arbitrary nesting.
    fn block_comment(&mut self) -> Result<Tok, LexError> {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while depth > 0 {
            if self.pos >= self.src.len() {
                return Err(self.err(start_line, "unterminated block comment"));
            }
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        Ok(Tok::Comment(
            String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
        ))
    }

    /// `"..."` with escapes; the opening quote is at `self.pos`.
    fn quoted_string(&mut self) -> Result<Tok, LexError> {
        let start_line = self.line;
        self.pos += 1; // opening quote
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(start_line, "unterminated string literal"));
            }
            match self.peek(0) {
                b'\\' => {
                    self.pos += 1; // the backslash
                    self.bump(); // whatever is escaped (may be a newline)
                }
                b'"' => {
                    self.pos += 1;
                    return Ok(Tok::Str);
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// `r"..."` / `r#"..."#` with `hashes` leading `#`s already counted;
    /// `self.pos` is at the opening quote.
    fn raw_string(&mut self, hashes: usize) -> Result<Tok, LexError> {
        let start_line = self.line;
        self.pos += 1; // opening quote
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(start_line, "unterminated raw string literal"));
            }
            if self.peek(0) == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    self.pos += 1 + hashes;
                    return Ok(Tok::Str);
                }
            }
            self.bump();
        }
    }

    /// Char literal with the opening `'` at `self.pos`.
    fn char_literal(&mut self) -> Result<Tok, LexError> {
        let start_line = self.line;
        self.pos += 1; // opening quote
        if self.peek(0) == b'\\' {
            self.pos += 2; // backslash + escaped char ('n', '\'', 'u', 'x', ...)
            if self.peek(0) == b'{' {
                // \u{...}
                while self.peek(0) != b'}' {
                    if self.pos >= self.src.len() {
                        return Err(self.err(start_line, "unterminated char escape"));
                    }
                    self.pos += 1;
                }
                self.pos += 1;
            } else if self.src.get(self.pos.wrapping_sub(1)) == Some(&b'x') {
                self.pos += 2; // two hex digits
            }
        } else {
            // A single possibly multi-byte character.
            self.pos += 1;
            while self.peek(0) >= 0x80 {
                self.pos += 1;
            }
        }
        if self.peek(0) != b'\'' {
            return Err(self.err(start_line, "unterminated char literal"));
        }
        self.pos += 1;
        Ok(Tok::Char)
    }

    /// Loose numeric literal starting at a digit.
    fn number(&mut self) -> Tok {
        let start = self.pos;
        let radix_prefixed = self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b');
        loop {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                // Decimal exponent sign: `1e-5`, `2.5E+3`.
                if !radix_prefixed
                    && (c == b'e' || c == b'E')
                    && matches!(self.peek(1), b'+' | b'-')
                    && self.peek(2).is_ascii_digit()
                {
                    self.pos += 2;
                }
                self.pos += 1;
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` yes; `0..n` and `x.method()` no.
                self.pos += 1;
            } else {
                let text = &self.src[start..self.pos];
                // An `e`/`E` is an exponent only when a digit or sign
                // follows (`1e9`, `2.5E+3`); the `e` in a `usize` suffix
                // is not one.
                let has_exponent = text.windows(2).any(|w| {
                    (w[0] == b'e' || w[0] == b'E')
                        && (w[1].is_ascii_digit() || w[1] == b'+' || w[1] == b'-')
                });
                let float = !radix_prefixed
                    && (text.contains(&b'.')
                        || has_exponent
                        || text.ends_with(b"f32")
                        || text.ends_with(b"f64"));
                return Tok::Num { float };
            }
        }
    }
}

/// Lexes a whole source file. Fails only on unterminated literals/comments,
/// which on real input means the file would not compile anyway.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while lx.pos < lx.src.len() {
        let line = lx.line;
        let c = lx.peek(0);
        if c == b'\n' || c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let tok = match c {
            b'/' => match lx.peek(1) {
                b'/' => lx.line_comment(),
                b'*' => lx.block_comment()?,
                _ => {
                    lx.pos += 1;
                    Tok::Punct('/')
                }
            },
            b'"' => lx.quoted_string()?,
            b'\'' => {
                // Lifetime iff the quote is followed by an ASCII ident that
                // is NOT closed by another quote: `'a` / `'static` / `'_`
                // are lifetimes, `'a'` / `'_'` / `'é'` are char literals.
                let p1 = lx.peek(1);
                if (p1.is_ascii_alphabetic() || p1 == b'_') && lx.peek(2) != b'\'' {
                    lx.pos += 1;
                    Tok::Lifetime(lx.take_ident())
                } else {
                    lx.char_literal()?
                }
            }
            b'b' if lx.peek(1) == b'\'' => {
                lx.pos += 1;
                lx.char_literal()?
            }
            b'b' if lx.peek(1) == b'"' => {
                lx.pos += 1;
                lx.quoted_string()?
            }
            b'b' if lx.peek(1) == b'r' && matches!(lx.peek(2), b'"' | b'#') => {
                lx.pos += 2;
                let mut hashes = 0;
                while lx.peek(hashes) == b'#' {
                    hashes += 1;
                }
                lx.pos += hashes;
                lx.raw_string(hashes)?
            }
            b'r' if matches!(lx.peek(1), b'"' | b'#') => {
                let mut hashes = 0;
                while lx.peek(1 + hashes) == b'#' {
                    hashes += 1;
                }
                if lx.peek(1 + hashes) == b'"' {
                    lx.pos += 1 + hashes;
                    lx.raw_string(hashes)?
                } else if hashes > 0 && is_ident_start(lx.peek(1 + hashes)) {
                    // Raw identifier `r#type`.
                    lx.pos += 1 + hashes;
                    Tok::Ident(lx.take_ident())
                } else {
                    Tok::Ident(lx.take_ident())
                }
            }
            _ if is_ident_start(c) => Tok::Ident(lx.take_ident()),
            _ if c.is_ascii_digit() => lx.number(),
            _ => {
                lx.pos += 1;
                Tok::Punct(c as char)
            }
        };
        out.push(Token { tok, line });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        kinds(src)
            .into_iter()
            .filter_map(|t| match t {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comment_markers_inside_strings_are_not_comments() {
        let toks = kinds(r#"let url = "https://example.com/*notacomment*/"; done"#);
        assert!(toks.contains(&Tok::Str));
        assert!(!toks.iter().any(|t| matches!(t, Tok::Comment(_))));
        assert_eq!(
            idents(r#"let x = "// unsafe"; after"#),
            vec!["let", "x", "after"]
        );
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("before /* outer /* inner */ still-outer */ after");
        assert_eq!(
            idents("before /* outer /* inner */ still-outer */ after"),
            vec!["before", "after"]
        );
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Tok::Comment(_))).count(),
            1
        );
        assert!(lex("/* /* */").is_err(), "unbalanced nesting must fail");
    }

    #[test]
    fn raw_strings_with_hashes() {
        // The quote inside the raw string must not end it early.
        let toks = kinds(r###"let s = r#"contains "quotes" and \ backslash"#; after"###);
        assert!(toks.contains(&Tok::Str));
        assert_eq!(
            idents(r###"let s = r#"contains "quotes" and \ backslash"#; after"###),
            vec!["let", "s", "after"]
        );
        // Multiple hashes.
        assert_eq!(
            idents(r####"r##"inner "# not the end"## end"####),
            vec!["end"]
        );
        // r" with zero hashes.
        assert_eq!(idents(r#"r"plain raw" tail"#), vec!["tail"]);
        // Byte raw string.
        assert_eq!(idents(r###"br#"bytes"# tail"###), vec!["tail"]);
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        // Lifetimes survive as lifetimes...
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(toks.contains(&Tok::Lifetime("a".into())));
        assert!(toks.contains(&Tok::Lifetime("static".into())));
        assert!(!toks.contains(&Tok::Char));
        // ...while char literals, including awkward ones, are chars.
        for src in [
            "'x'",
            "'_'",
            "'\\''",
            "'\\\\'",
            "'\\n'",
            "'\\u{1F600}'",
            "b'q'",
        ] {
            let toks = kinds(src);
            assert_eq!(toks, vec![Tok::Char], "src = {src}");
        }
        // A lifetime immediately followed by more code lexes as a
        // Lifetime token, not as an ident or a dangling quote.
        let toks = kinds("impl<'de> Visitor<'de> for V");
        assert_eq!(
            toks.iter()
                .filter(|t| **t == Tok::Lifetime("de".into()))
                .count(),
            2
        );
        assert_eq!(
            idents("impl<'de> Visitor<'de> for V"),
            vec!["impl", "Visitor", "for", "V"]
        );
    }

    #[test]
    fn line_comments_capture_text_and_stop_at_newline() {
        let toks = lex("x // SAFETY: fine\ny").expect("lex ok");
        assert_eq!(toks[0].tok, Tok::Ident("x".into()));
        assert_eq!(toks[1].tok, Tok::Comment("// SAFETY: fine".into()));
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].tok, Tok::Ident("y".into()));
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn line_numbers_track_through_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = /* c\nc */ 1;\nlet c = 2;";
        let toks = lex(src).expect("lex ok");
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.into()))
                .map(|t| t.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(3));
        assert_eq!(line_of("c"), Some(5));
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3; let y = 0xFF; }");
        // `0..10` must lex as Num, '.', '.', Num.
        let dots = toks.iter().filter(|t| **t == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Tok::Num { .. })).count(),
            4
        );
    }

    #[test]
    fn float_literals_are_marked_float() {
        let float = |src: &str| match kinds(src).as_slice() {
            [Tok::Num { float }] => *float,
            other => panic!("{src} lexed as {other:?}"),
        };
        for src in ["1.5", "0.0", "1e9", "2.5E3", "1f32", "3f64", "1_000.25"] {
            assert!(float(src), "{src} should be float");
        }
        for src in [
            "0", "42", "0xFF", "0o17", "0b101", "1_000", "7u32", "9usize",
        ] {
            assert!(!float(src), "{src} should be integer");
        }
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        assert_eq!(
            idents(r#"let s = "quote \" and \\ more"; after"#),
            vec!["let", "s", "after"]
        );
    }

    #[test]
    fn unterminated_literals_error_with_line() {
        let err = lex("\n\nlet s = \"oops").unwrap_err();
        assert_eq!(err.line, 3);
        // `'x` alone is lexically a lifetime, so use an escape to force the
        // char-literal path.
        assert!(lex("let c = '\\n").is_err());
        assert!(lex("r#\"never closed\"").is_err());
    }
}
