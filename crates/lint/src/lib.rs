//! optinter-lint: a dependency-free workspace linter that statically
//! enforces the invariants the determinism harness (PR 1) proves
//! dynamically. See DESIGN.md §7 for the invariant model and the
//! `lint: allow` waiver convention.
//!
//! Entry points:
//! - [`check_workspace`] — lint every source file, compare panic counts to
//!   the committed baseline, return a [`Report`].
//! - [`update_baseline`] — rewrite `lint-baseline.toml` from the current
//!   counts (used when a PR legitimately removes panic sites).

pub mod baseline;
pub mod lexer;
pub mod parser;
pub mod rules;

use baseline::Baseline;
use rules::{analyze_file, Diagnostic, FileMeta, Rule};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything one lint run found.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-crate unwrap/expect counts in non-test code (ratchet input).
    pub unwrap_expect: BTreeMap<String, usize>,
    /// Per-crate unwaived hot-path allocation site counts (ratchet input).
    pub hot_path_alloc: BTreeMap<String, usize>,
    pub files_checked: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Walks the workspace and returns every `.rs` file the lint applies to,
/// sorted, as (absolute path, meta). Shim crates (`shims/`) stand in for
/// external dependencies and are out of scope, as is `target/`.
fn workspace_sources(root: &Path) -> Result<Vec<(PathBuf, FileMeta)>, String> {
    let mut out = Vec::new();
    // crates/<name>/{src,benches,tests,examples}
    let crates_dir = root.join("crates");
    for krate in read_dir_sorted(&crates_dir)? {
        if !krate.is_dir() {
            continue;
        }
        let crate_key = krate
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        for (sub, is_test) in [
            ("src", false),
            ("benches", false),
            ("tests", true),
            ("examples", false),
        ] {
            collect_rs(root, &krate.join(sub), &crate_key, is_test, &mut out)?;
        }
    }
    // Root crate: src/, tests/, examples/, benches/.
    for (sub, is_test) in [
        ("src", false),
        ("tests", true),
        ("examples", false),
        ("benches", false),
    ] {
        collect_rs(root, &root.join(sub), "root", is_test, &mut out)?;
    }
    out.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(_) => return Ok(entries), // absent directory: nothing to lint
    };
    for e in rd {
        let e = e.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_key: &str,
    is_test_dir: bool,
    out: &mut Vec<(PathBuf, FileMeta)>,
) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(root, &entry, crate_key, is_test_dir, out)?;
            continue;
        }
        if entry.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let rel_path = entry
            .strip_prefix(root)
            .map_err(|e| format!("path {}: {e}", entry.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        out.push((
            entry.clone(),
            FileMeta {
                rel_path,
                crate_key: crate_key.to_string(),
                is_test_file: is_test_dir,
            },
        ));
    }
    Ok(())
}

/// Lints one file's source text. Exposed so fixture tests can drive the
/// full pipeline (lex → rules) without touching the filesystem.
pub fn check_source(meta: &FileMeta, src: &str) -> rules::FileAnalysis {
    match lexer::lex(src) {
        Ok(tokens) => analyze_file(meta, &tokens),
        Err(e) => rules::FileAnalysis {
            diagnostics: vec![Diagnostic {
                path: meta.rel_path.clone(),
                line: e.line,
                rule: Rule::Lex,
                message: format!("lexer error: {}", e.message),
            }],
            unwrap_expect_count: 0,
            hot_path_alloc: Vec::new(),
        },
    }
}

/// Runs every rule over every workspace source file and compares the
/// unwrap/expect tallies to `lint-baseline.toml`.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let sources = workspace_sources(root)?;
    let mut diagnostics = Vec::new();
    let mut unwrap_expect: BTreeMap<String, usize> = BTreeMap::new();
    let mut hot_path_alloc: BTreeMap<String, usize> = BTreeMap::new();
    let mut hot_sites: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let files_checked = sources.len();
    for (path, meta) in &sources {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let mut analysis = check_source(meta, &src);
        diagnostics.extend(analysis.diagnostics);
        *unwrap_expect.entry(meta.crate_key.clone()).or_insert(0) += analysis.unwrap_expect_count;
        *hot_path_alloc.entry(meta.crate_key.clone()).or_insert(0) += analysis.hot_path_alloc.len();
        hot_sites
            .entry(meta.crate_key.clone())
            .or_default()
            .append(&mut analysis.hot_path_alloc);
    }

    // Ratchets: observed counts vs the committed baseline.
    let baseline_path = root.join("lint-baseline.toml");
    match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let baseline = Baseline::parse(&text)?;
            for problem in baseline.check(&unwrap_expect, &hot_path_alloc) {
                diagnostics.push(Diagnostic {
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    rule: Rule::PanicRatchet,
                    message: problem,
                });
            }
            // For crates over their hot-path-alloc ceiling, also list the
            // individual sites so the violation is actionable. (Within the
            // ceiling the sites are tolerated debt, not diagnostics.)
            for (krate, &count) in &hot_path_alloc {
                let ceiling = baseline.hot_path_alloc.get(krate).copied();
                let over = match ceiling {
                    Some(c) => count > c,
                    None => count > 0,
                };
                if over {
                    diagnostics.extend(hot_sites.remove(krate).unwrap_or_default());
                }
            }
        }
        Err(_) => diagnostics.push(Diagnostic {
            path: "lint-baseline.toml".to_string(),
            line: 0,
            rule: Rule::PanicRatchet,
            message: "missing lint-baseline.toml; run `cargo run -p optinter-lint -- \
                      update-baseline` and commit the result"
                .to_string(),
        }),
    }

    Ok(Report {
        diagnostics,
        unwrap_expect,
        hot_path_alloc,
        files_checked,
    })
}

/// Rewrites `lint-baseline.toml` from the current per-crate counts.
/// Refuses to *raise* any existing ceiling — the ratchet only tightens
/// automatically; loosening is a deliberate hand edit.
pub fn update_baseline(root: &Path) -> Result<String, String> {
    let report = check_workspace(root)?;
    let baseline_path = root.join("lint-baseline.toml");
    let old = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|t| Baseline::parse(&t))
        .transpose()?
        .unwrap_or_default();
    let mut raised = Vec::new();
    for (table, counts, ceilings) in [
        ("unwrap-expect", &report.unwrap_expect, &old.unwrap_expect),
        (
            "hot-path-alloc",
            &report.hot_path_alloc,
            &old.hot_path_alloc,
        ),
    ] {
        for (krate, &count) in counts {
            if let Some(&ceiling) = ceilings.get(krate) {
                if count > ceiling {
                    raised.push(format!("{table}.{krate}: {ceiling} -> {count}"));
                }
            }
        }
    }
    if !raised.is_empty() {
        return Err(format!(
            "update-baseline would RAISE ceilings ({}); the ratchet only tightens. \
             Remove the new sites, or edit lint-baseline.toml by hand with \
             justification in the PR.",
            raised.join(", ")
        ));
    }
    let new = Baseline {
        unwrap_expect: report.unwrap_expect.clone(),
        hot_path_alloc: report.hot_path_alloc.clone(),
    };
    std::fs::write(&baseline_path, new.to_toml())
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    Ok(baseline_path.display().to_string())
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml + crates/) found above {}",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_reports_lex_errors_instead_of_panicking() {
        let meta = FileMeta {
            rel_path: "crates/core/src/broken.rs".to_string(),
            crate_key: "core".to_string(),
            is_test_file: false,
        };
        let a = check_source(&meta, "fn f() { let s = \"unterminated; }");
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].rule, Rule::Lex);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The linter's own acceptance test: the repo must lint clean. This
        // is the same check `tests/lint.rs` and CI run; keeping a copy here
        // means `cargo test -p optinter-lint` alone proves the invariants.
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let report = check_workspace(&root).expect("lint run");
        assert!(report.files_checked > 20, "walker found too few files");
        let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        assert!(
            report.is_clean(),
            "lint violations:\n{}",
            rendered.join("\n")
        );
    }
}
