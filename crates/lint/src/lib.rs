//! optinter-lint: a dependency-free workspace linter that statically
//! enforces the invariants the determinism harness (PR 1) proves
//! dynamically. See DESIGN.md §7 for the invariant model, §10 for the
//! scope-aware rules and §12 for the call-graph layer and the
//! `lint: allow` waiver convention.
//!
//! Entry points:
//! - [`check_workspace`] — lint every source file, build the workspace
//!   call graph, derive the hot-path fn set from `[hot-path-roots]`,
//!   police panic-freedom of the `[panic-free-roots]` cones, compare every
//!   ratchet to the committed baseline, return a [`Report`].
//! - [`analyze_sources`] — the same pipeline over in-memory sources, so
//!   fixture tests can exercise cross-file resolution and injection
//!   scenarios without touching the filesystem.
//! - [`update_baseline`] — rewrite `lint-baseline.toml` from the current
//!   counts (used when a PR legitimately removes panic sites).

pub mod baseline;
pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;

use baseline::Baseline;
use callgraph::{CallGraph, FileSource};
use effects::{Effect, EffectIndex, EffectSet, SeedSource};
use rules::{Diagnostic, FileCtx, FileMeta, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Everything one lint run found.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-crate unwrap/expect counts in non-test code (ratchet input).
    pub unwrap_expect: BTreeMap<String, usize>,
    /// Per-crate `unsafe` site counts in non-test code (ratchet input).
    pub unsafe_sites: BTreeMap<String, usize>,
    /// Per-crate unwaived hot-path allocation site counts (ratchet input).
    pub hot_path_alloc: BTreeMap<String, usize>,
    /// Per-root unwaived reachable panic-site counts (ratchet input).
    pub panic_free: BTreeMap<String, usize>,
    /// Per-root unwaived determinism violations (ratchet input).
    pub determinism_cone: BTreeMap<String, usize>,
    /// Per-root unwaived blocking sites (ratchet input).
    pub no_blocking_cone: BTreeMap<String, usize>,
    /// Rendered effect summary per declared cone root
    /// (`determinism:<key>` / `no-block:<key>` → `{ReadsClock, ...}`).
    pub root_effects: BTreeMap<String, String>,
    /// Qualified paths of the derived hot-path fn set (roots ∪ name-glob
    /// convention seeds, closed over calls).
    pub hot_fns: BTreeSet<String>,
    /// Qualified paths of just the glob-matched seeds — the pre-PR-7 hot
    /// set, kept so the superset golden test can diff the two.
    pub glob_hot_fns: BTreeSet<String>,
    pub files_checked: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Walks the workspace and returns every `.rs` file the lint applies to,
/// sorted, as (absolute path, meta). Shim crates (`shims/`) stand in for
/// external dependencies and are out of scope, as is `target/`.
fn workspace_sources(root: &Path) -> Result<Vec<(PathBuf, FileMeta)>, String> {
    let mut out = Vec::new();
    // crates/<name>/{src,benches,tests,examples}
    let crates_dir = root.join("crates");
    for krate in read_dir_sorted(&crates_dir)? {
        if !krate.is_dir() {
            continue;
        }
        let crate_key = krate
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        for (sub, is_test) in [
            ("src", false),
            ("benches", false),
            ("tests", true),
            ("examples", false),
        ] {
            collect_rs(root, &krate.join(sub), &crate_key, is_test, &mut out)?;
        }
    }
    // Root crate: src/, tests/, examples/, benches/.
    for (sub, is_test) in [
        ("src", false),
        ("tests", true),
        ("examples", false),
        ("benches", false),
    ] {
        collect_rs(root, &root.join(sub), "root", is_test, &mut out)?;
    }
    out.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(_) => return Ok(entries), // absent directory: nothing to lint
    };
    for e in rd {
        let e = e.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_key: &str,
    is_test_dir: bool,
    out: &mut Vec<(PathBuf, FileMeta)>,
) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(root, &entry, crate_key, is_test_dir, out)?;
            continue;
        }
        if entry.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let rel_path = entry
            .strip_prefix(root)
            .map_err(|e| format!("path {}: {e}", entry.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        out.push((
            entry.clone(),
            FileMeta {
                rel_path,
                crate_key: crate_key.to_string(),
                is_test_file: is_test_dir,
            },
        ));
    }
    Ok(())
}

/// Lints one file's source text standalone (glob-scoped hot set, no
/// cross-file rules). Exposed so fixture tests can drive the per-file
/// pipeline (lex → rules) without touching the filesystem.
pub fn check_source(meta: &FileMeta, src: &str) -> rules::FileAnalysis {
    match lexer::lex(src) {
        Ok(tokens) => rules::analyze_file(meta, &tokens),
        Err(e) => rules::FileAnalysis {
            diagnostics: vec![Diagnostic {
                path: meta.rel_path.clone(),
                line: e.line,
                rule: Rule::Lex,
                witness: None,
                message: format!("lexer error: {}", e.message),
            }],
            unwrap_expect_count: 0,
            unsafe_count: 0,
            hot_path_alloc: Vec::new(),
        },
    }
}

/// Reads every workspace source into memory as (meta, text) pairs — the
/// input shape [`analyze_sources`] takes, so tests can mutate a file's
/// text (inject an unwrap, delete a waiver) and re-lint.
pub fn load_workspace_sources(root: &Path) -> Result<Vec<(FileMeta, String)>, String> {
    let mut out = Vec::new();
    for (path, meta) in workspace_sources(root)? {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.push((meta, src));
    }
    Ok(out)
}

/// The full workspace pipeline over in-memory sources:
///
/// 1. per-file prelude rules (hash-iter, unsafe, wall-clock,
///    float-reduction, unwrap tally), lex/parse diagnostics;
/// 2. the workspace call graph over every parsed non-test file, then the
///    interprocedural effect index over it (token-level seeds per fn,
///    fixed-point summaries over all call edges — DESIGN.md §15);
/// 3. the derived hot-path set — everything reachable from the
///    `[hot-path-roots]` entries *and* the name-glob convention seeds
///    (`step*`, `*_into`, ...; a fn whose name promises zero-alloc is
///    policed even if no root currently reaches it) — policed against the
///    `Allocates` effect seeds;
/// 4. panic-free reachability per `[panic-free-roots]` entry, from the
///    `Panics` seeds;
/// 5. the determinism cone per `[determinism-roots]` entry (no
///    clock/entropy/hash-iteration reachable; float reductions only in
///    the pinned-order allowlist) and the no-blocking cone per
///    `[no-block-roots]` entry (no reachable `Blocks` effect), each with
///    witness call chains;
/// 6. unused-waiver per file (after every rule that can mark waivers);
/// 7. every ratchet against `baseline_text` (`None` reports the baseline
///    as missing, like a deleted `lint-baseline.toml`).
pub fn analyze_sources(
    files: &[(FileMeta, String)],
    baseline_text: Option<&str>,
) -> Result<Report, String> {
    let baseline = baseline_text.map(Baseline::parse).transpose()?;
    let files_checked = files.len();

    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    for (meta, src) in files {
        match lexer::lex(src) {
            Ok(tokens) => ctxs.push(rules::analyze_prelude(meta, tokens)),
            Err(e) => {
                let mut ctx = rules::analyze_prelude(meta, Vec::new());
                ctx.diagnostics.push(Diagnostic {
                    path: meta.rel_path.clone(),
                    line: e.line,
                    rule: Rule::Lex,
                    witness: None,
                    message: format!("lexer error: {}", e.message),
                });
                ctxs.push(ctx);
            }
        }
    }

    // The call graph spans every parsed, non-test-file source.
    let graph = {
        let sources: Vec<FileSource<'_>> = ctxs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.meta.is_test_file)
            .filter_map(|(i, c)| {
                c.tree.as_ref().map(|tree| FileSource {
                    file: i,
                    meta: &c.meta,
                    tokens: &c.tokens,
                    code: &c.code,
                    tree,
                })
            })
            .collect();
        CallGraph::build(&sources)
    };

    // The effect index spans the same files as the graph: per-fn seeds
    // from the shared token-level collectors, summaries at the fixed
    // point over every call edge (conservative fallbacks included).
    let effect_idx = {
        let sources: Vec<SeedSource<'_>> = ctxs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.meta.is_test_file)
            .filter_map(|(i, c)| {
                c.tree.as_ref().map(|tree| SeedSource {
                    file: i,
                    tokens: &c.tokens,
                    code: &c.code,
                    tree,
                    test_mask: &c.test_mask,
                })
            })
            .collect();
        EffectIndex::build(&graph, &sources)
    };

    let mut config_diags: Vec<Diagnostic> = Vec::new();
    let mut config = |message: String| {
        config_diags.push(Diagnostic {
            path: "lint-baseline.toml".to_string(),
            line: 0,
            rule: Rule::Config,
            witness: None,
            message,
        });
    };

    // Derived hot set: declared roots ∪ glob convention seeds, closed over
    // the call graph. The union keeps the derived set a superset of the
    // old glob set by construction (the golden test pins this).
    let mut seeds: Vec<usize> = Vec::new();
    let mut glob_hot_fns = BTreeSet::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.has_body && !node.is_test && rules::is_hot_fn(&node.name) {
            seeds.push(ni);
            glob_hot_fns.insert(node.qual.clone());
        }
    }
    if let Some(b) = &baseline {
        for (key, pat) in &b.hot_path_roots {
            let hits = graph.resolve_pattern(pat);
            if hits.is_empty() {
                config(format!(
                    "[hot-path-roots] `{key}` = \"{pat}\" matches no workspace fn; fix the \
                     path or delete the root"
                ));
            }
            seeds.extend(hits);
        }
    }
    let hot_reach = reach::reachable_precise(&graph, &seeds);
    let mut hot_fns = BTreeSet::new();

    // Derived hot-path allocations: the `Allocates` effect seeds of every
    // fn in the hot set, policed with the same crate exemptions and
    // waivers as the standalone glob path in `rules.rs`.
    let mut hot_alloc_sites: Vec<Vec<Diagnostic>> = vec![Vec::new(); ctxs.len()];
    for (ni, node) in graph.nodes.iter().enumerate() {
        if !hot_reach.reached[ni] || !node.has_body || node.is_test {
            continue;
        }
        hot_fns.insert(node.qual.clone());
        let ctx = &ctxs[node.file];
        if rules::HOT_PATH_EXEMPT_CRATES.contains(&ctx.meta.crate_key.as_str())
            || ctx.meta.is_test_file
        {
            continue;
        }
        for site in &effect_idx.seeds[ni] {
            if site.effect != Effect::Allocates
                || ctx.allows.is_suppressed(Rule::HotPathAlloc, site.line)
            {
                continue;
            }
            hot_alloc_sites[node.file].push(rules::hot_path_alloc_diag(
                &ctx.meta,
                site.line,
                &site.label,
                &node.name,
            ));
        }
    }
    for (i, ctx) in ctxs.iter_mut().enumerate() {
        let mut sites = std::mem::take(&mut hot_alloc_sites[i]);
        sites.sort_by_key(|d| d.line);
        ctx.hot_path_alloc = sites;
    }

    // Panic-free reachability, one BFS per declared root over the
    // `Panics` effect seeds. A site reachable from several roots counts
    // against each; a waiver covers it for all (and is marked used the
    // first time any root reaches it).
    let mut panic_free: BTreeMap<String, usize> = BTreeMap::new();
    let mut panic_site_diags: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    if let Some(b) = &baseline {
        for (key, spec) in &b.panic_free_roots {
            let roots = graph.resolve_pattern(&spec.pattern);
            if roots.is_empty() {
                config(format!(
                    "[panic-free-roots] `{key}` = \"{}\" matches no workspace fn; fix the \
                     path or delete the root",
                    spec.pattern
                ));
                continue;
            }
            let r = reach::reachable(&graph, &roots);
            let mut count = 0usize;
            let mut diags = Vec::new();
            for (ni, node) in graph.nodes.iter().enumerate() {
                if !r.reached[ni] {
                    continue;
                }
                for site in &effect_idx.seeds[ni] {
                    if site.effect != Effect::Panics {
                        continue;
                    }
                    if site.is_index && !spec.index_strict {
                        continue;
                    }
                    if ctxs[node.file]
                        .allows
                        .is_suppressed(Rule::PanicFree, site.line)
                    {
                        continue;
                    }
                    count += 1;
                    diags.push(Diagnostic {
                        path: ctxs[node.file].meta.rel_path.clone(),
                        line: site.line,
                        rule: Rule::PanicFree,
                        witness: Some(r.full_chain_to(&graph, ni)),
                        message: format!(
                            "`{}` is reachable from panic-free root `{key}` \
                             ({}); return a typed error instead, or waive with \
                             `// lint: allow(panic-free, reason=\"...\")` if the site is \
                             unreachable by construction",
                            site.label,
                            r.chain_to(&graph, ni)
                        ),
                    });
                }
            }
            panic_free.insert(key.clone(), count);
            panic_site_diags.insert(key.clone(), diags);
        }
        for key in b.panic_free.keys() {
            if !b.panic_free_roots.contains_key(key) {
                config(format!(
                    "[panic-free] ceiling `{key}` has no matching [panic-free-roots] entry"
                ));
            }
        }
    }

    // The two effect cones. Each declared root gets its joined summary
    // recorded (for the JSON report), a fast path when the summary cannot
    // intersect the banned set, and otherwise a BFS with parent tracking
    // so every violation carries a witness call chain.
    let mut determinism_cone: BTreeMap<String, usize> = BTreeMap::new();
    let mut determinism_diags: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let mut no_blocking_cone: BTreeMap<String, usize> = BTreeMap::new();
    let mut no_blocking_diags: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let mut root_effects: BTreeMap<String, String> = BTreeMap::new();
    if let Some(b) = &baseline {
        let det_banned = EffectSet::of(&[
            Effect::ReadsClock,
            Effect::ReadsEntropy,
            Effect::HashIter,
            Effect::FloatOrderSensitive,
        ]);
        for (key, pat) in &b.determinism_roots {
            let roots = graph.resolve_pattern(pat);
            if roots.is_empty() {
                config(format!(
                    "[determinism-roots] `{key}` = \"{pat}\" matches no workspace fn; fix \
                     the path or delete the root"
                ));
                continue;
            }
            let summary = effect_idx.summary_of(&roots);
            root_effects.insert(format!("determinism:{key}"), summary.render());
            let mut count = 0usize;
            let mut diags = Vec::new();
            // The summary is the fixed point over every edge, so a
            // non-intersecting summary proves the BFS would find nothing
            // (waived sites still seed, so in-cone waivers stay used).
            if summary.intersects(det_banned) {
                let r = reach::reachable(&graph, &roots);
                for (ni, node) in graph.nodes.iter().enumerate() {
                    if !r.reached[ni] {
                        continue;
                    }
                    let ctx = &ctxs[node.file];
                    for site in &effect_idx.seeds[ni] {
                        // Which shield (if any) covers this effect kind:
                        // clock/entropy only yield to an explicit cone
                        // waiver (their per-file wall-clock waivers claim
                        // "not on the training path", which is exactly
                        // what the cone verifies); hash-iter and float
                        // reductions also yield to their per-file rule's
                        // own waiver/allowlist, which claim the *effect*
                        // is neutralized (sorted, fixed-order kernel).
                        let shielded = match site.effect {
                            Effect::ReadsClock | Effect::ReadsEntropy => {
                                ctx.allows.is_suppressed(Rule::DeterminismCone, site.line)
                            }
                            Effect::HashIter => {
                                ctx.allows.is_suppressed(Rule::HashIter, site.line)
                                    || ctx.allows.is_suppressed(Rule::DeterminismCone, site.line)
                            }
                            Effect::FloatOrderSensitive => {
                                rules::FLOAT_REDUCTION_ALLOWLIST
                                    .contains(&ctx.meta.rel_path.as_str())
                                    || ctx
                                        .allows
                                        .is_suppressed(Rule::FloatReductionOrder, site.line)
                                    || ctx.allows.is_suppressed(Rule::DeterminismCone, site.line)
                            }
                            _ => continue,
                        };
                        if shielded {
                            continue;
                        }
                        count += 1;
                        diags.push(Diagnostic {
                            path: ctx.meta.rel_path.clone(),
                            line: site.line,
                            rule: Rule::DeterminismCone,
                            witness: Some(r.full_chain_to(&graph, ni)),
                            message: format!(
                                "`{}` ({}) is reachable from determinism root `{key}` ({}); \
                                 the search trajectory must be bit-reproducible — thread \
                                 the seeded RNG, drop the clock read, or sort before \
                                 iterating; a genuinely order-neutral site can be waived \
                                 with `// lint: allow(determinism-cone, reason=\"...\")`",
                                site.label,
                                site.effect.name(),
                                r.chain_to(&graph, ni)
                            ),
                        });
                    }
                }
            }
            determinism_cone.insert(key.clone(), count);
            determinism_diags.insert(key.clone(), diags);
        }
        for key in b.determinism_cone.keys() {
            if !b.determinism_roots.contains_key(key) {
                config(format!(
                    "[determinism-cone] ceiling `{key}` has no matching [determinism-roots] \
                     entry"
                ));
            }
        }

        let block_banned = EffectSet::of(&[Effect::Blocks]);
        for (key, pat) in &b.no_block_roots {
            let roots = graph.resolve_pattern(pat);
            if roots.is_empty() {
                config(format!(
                    "[no-block-roots] `{key}` = \"{pat}\" matches no workspace fn; fix the \
                     path or delete the root"
                ));
                continue;
            }
            let summary = effect_idx.summary_of(&roots);
            root_effects.insert(format!("no-block:{key}"), summary.render());
            let mut count = 0usize;
            let mut diags = Vec::new();
            if summary.intersects(block_banned) {
                let r = reach::reachable(&graph, &roots);
                for (ni, node) in graph.nodes.iter().enumerate() {
                    if !r.reached[ni] {
                        continue;
                    }
                    let ctx = &ctxs[node.file];
                    for site in &effect_idx.seeds[ni] {
                        if site.effect != Effect::Blocks
                            || ctx.allows.is_suppressed(Rule::NoBlockingCone, site.line)
                        {
                            continue;
                        }
                        count += 1;
                        diags.push(Diagnostic {
                            path: ctx.meta.rel_path.clone(),
                            line: site.line,
                            rule: Rule::NoBlockingCone,
                            witness: Some(r.full_chain_to(&graph, ni)),
                            message: format!(
                                "`{}` (Blocks) is reachable from no-block root `{key}` \
                                 ({}); the serving path must never park the thread — move \
                                 the blocking call off the scoring cone, or waive a \
                                 declared hand-off site with \
                                 `// lint: allow(no-blocking-cone, reason=\"...\")`",
                                site.label,
                                r.chain_to(&graph, ni)
                            ),
                        });
                    }
                }
            }
            no_blocking_cone.insert(key.clone(), count);
            no_blocking_diags.insert(key.clone(), diags);
        }
        for key in b.no_blocking_cone.keys() {
            if !b.no_block_roots.contains_key(key) {
                config(format!(
                    "[no-blocking-cone] ceiling `{key}` has no matching [no-block-roots] \
                     entry"
                ));
            }
        }
    }

    // Per-file finish (unused-waiver) and aggregation.
    let mut diagnostics = Vec::new();
    let mut unwrap_expect: BTreeMap<String, usize> = BTreeMap::new();
    let mut unsafe_sites: BTreeMap<String, usize> = BTreeMap::new();
    let mut hot_path_alloc: BTreeMap<String, usize> = BTreeMap::new();
    let mut hot_sites_by_crate: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for ctx in ctxs {
        let crate_key = ctx.meta.crate_key.clone();
        let mut analysis = ctx.finish();
        diagnostics.extend(analysis.diagnostics);
        *unwrap_expect.entry(crate_key.clone()).or_insert(0) += analysis.unwrap_expect_count;
        *unsafe_sites.entry(crate_key.clone()).or_insert(0) += analysis.unsafe_count;
        *hot_path_alloc.entry(crate_key.clone()).or_insert(0) += analysis.hot_path_alloc.len();
        hot_sites_by_crate
            .entry(crate_key)
            .or_default()
            .append(&mut analysis.hot_path_alloc);
    }
    diagnostics.append(&mut config_diags);

    // Ratchets: observed counts vs the committed baseline.
    match &baseline {
        Some(b) => {
            for problem in b.check(&unwrap_expect, &hot_path_alloc) {
                diagnostics.push(Diagnostic {
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    rule: Rule::PanicRatchet,
                    witness: None,
                    message: problem,
                });
            }
            // For crates over their hot-path-alloc ceiling, also list the
            // individual sites so the violation is actionable. (Within the
            // ceiling the sites are tolerated debt, not diagnostics.)
            for (krate, &count) in &hot_path_alloc {
                let ceiling = b.hot_path_alloc.get(krate).copied();
                let over = match ceiling {
                    Some(c) => count > c,
                    None => count > 0,
                };
                if over {
                    diagnostics.extend(hot_sites_by_crate.remove(krate).unwrap_or_default());
                }
            }
            for problem in b.check_unsafe_sites(&unsafe_sites) {
                diagnostics.push(Diagnostic {
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    rule: Rule::UnsafeConfinement,
                    witness: None,
                    message: problem,
                });
            }
            for problem in b.check_panic_free(&panic_free) {
                diagnostics.push(Diagnostic {
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    rule: Rule::PanicFree,
                    witness: None,
                    message: problem,
                });
            }
            for (key, &count) in &panic_free {
                let ceiling = b.panic_free.get(key).copied();
                let over = match ceiling {
                    Some(c) => count > c,
                    None => count > 0,
                };
                if over {
                    diagnostics.extend(panic_site_diags.remove(key).unwrap_or_default());
                }
            }
            for problem in b.check_determinism_cone(&determinism_cone) {
                diagnostics.push(Diagnostic {
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    rule: Rule::DeterminismCone,
                    witness: None,
                    message: problem,
                });
            }
            for (key, &count) in &determinism_cone {
                let ceiling = b.determinism_cone.get(key).copied();
                let over = match ceiling {
                    Some(c) => count > c,
                    None => count > 0,
                };
                if over {
                    diagnostics.extend(determinism_diags.remove(key).unwrap_or_default());
                }
            }
            for problem in b.check_no_blocking_cone(&no_blocking_cone) {
                diagnostics.push(Diagnostic {
                    path: "lint-baseline.toml".to_string(),
                    line: 0,
                    rule: Rule::NoBlockingCone,
                    witness: None,
                    message: problem,
                });
            }
            for (key, &count) in &no_blocking_cone {
                let ceiling = b.no_blocking_cone.get(key).copied();
                let over = match ceiling {
                    Some(c) => count > c,
                    None => count > 0,
                };
                if over {
                    diagnostics.extend(no_blocking_diags.remove(key).unwrap_or_default());
                }
            }
        }
        None => diagnostics.push(Diagnostic {
            path: "lint-baseline.toml".to_string(),
            line: 0,
            rule: Rule::PanicRatchet,
            witness: None,
            message: "missing lint-baseline.toml; run `cargo run -p optinter-lint -- \
                      update-baseline` and commit the result"
                .to_string(),
        }),
    }

    Ok(Report {
        diagnostics,
        unwrap_expect,
        unsafe_sites,
        hot_path_alloc,
        panic_free,
        determinism_cone,
        no_blocking_cone,
        root_effects,
        hot_fns,
        glob_hot_fns,
        files_checked,
    })
}

/// Runs every rule over every workspace source file and compares all
/// ratchet tallies to `lint-baseline.toml`.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    let files = load_workspace_sources(root)?;
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml")).ok();
    analyze_sources(&files, baseline_text.as_deref())
}

/// Rewrites `lint-baseline.toml` from the current per-crate and per-root
/// counts, preserving the declared root tables. Refuses to *raise* any
/// existing ceiling unless `allow_raise` is set — the ratchet only
/// tightens automatically; loosening is a deliberate, flagged act.
pub fn update_baseline(root: &Path, allow_raise: bool) -> Result<String, String> {
    let report = check_workspace(root)?;
    let baseline_path = root.join("lint-baseline.toml");
    let old = std::fs::read_to_string(&baseline_path)
        .ok()
        .map(|t| Baseline::parse(&t))
        .transpose()?
        .unwrap_or_default();
    let mut raised = Vec::new();
    for (table, counts, ceilings) in [
        ("unwrap-expect", &report.unwrap_expect, &old.unwrap_expect),
        ("unsafe-sites", &report.unsafe_sites, &old.unsafe_sites),
        (
            "hot-path-alloc",
            &report.hot_path_alloc,
            &old.hot_path_alloc,
        ),
        ("panic-free", &report.panic_free, &old.panic_free),
        (
            "determinism-cone",
            &report.determinism_cone,
            &old.determinism_cone,
        ),
        (
            "no-blocking-cone",
            &report.no_blocking_cone,
            &old.no_blocking_cone,
        ),
    ] {
        for (key, &count) in counts {
            if let Some(&ceiling) = ceilings.get(key) {
                if count > ceiling {
                    raised.push(format!("{table}.{key}: {ceiling} -> {count}"));
                }
            }
        }
    }
    if !raised.is_empty() && !allow_raise {
        return Err(format!(
            "update-baseline would RAISE ceilings ({}); the ratchet only tightens. \
             Remove the new sites, re-run with --allow-raise, or edit \
             lint-baseline.toml by hand with justification in the PR.",
            raised.join(", ")
        ));
    }
    let new = Baseline {
        unwrap_expect: report.unwrap_expect.clone(),
        unsafe_sites: report.unsafe_sites.clone(),
        hot_path_alloc: report.hot_path_alloc.clone(),
        hot_path_roots: old.hot_path_roots.clone(),
        panic_free_roots: old.panic_free_roots.clone(),
        panic_free: report.panic_free.clone(),
        determinism_roots: old.determinism_roots.clone(),
        determinism_cone: report.determinism_cone.clone(),
        no_block_roots: old.no_block_roots.clone(),
        no_blocking_cone: report.no_blocking_cone.clone(),
    };
    std::fs::write(&baseline_path, new.to_toml())
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    Ok(baseline_path.display().to_string())
}

/// Finds the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml + crates/) found above {}",
                start.display()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_reports_lex_errors_instead_of_panicking() {
        let meta = FileMeta {
            rel_path: "crates/core/src/broken.rs".to_string(),
            crate_key: "core".to_string(),
            is_test_file: false,
        };
        let a = check_source(&meta, "fn f() { let s = \"unterminated; }");
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].rule, Rule::Lex);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The linter's own acceptance test: the repo must lint clean. This
        // is the same check `tests/lint.rs` and CI run; keeping a copy here
        // means `cargo test -p optinter-lint` alone proves the invariants.
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let report = check_workspace(&root).expect("lint run");
        assert!(report.files_checked > 20, "walker found too few files");
        let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        assert!(
            report.is_clean(),
            "lint violations:\n{}",
            rendered.join("\n")
        );
    }

    // ---- update-baseline raise refusal ------------------------------------

    /// Builds a throwaway one-crate workspace under the system tmp dir.
    fn scratch_workspace(tag: &str, lib_rs: &str, baseline: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("optinter-lint-ub-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write");
        std::fs::write(root.join("crates/alpha/src/lib.rs"), lib_rs).expect("write");
        std::fs::write(root.join("lint-baseline.toml"), baseline).expect("write");
        root
    }

    #[test]
    fn update_baseline_refuses_raises_without_flag() {
        let root = scratch_workspace(
            "refuse",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "[unwrap-expect]\nalpha = 0\n",
        );
        let err = update_baseline(&root, false).expect_err("must refuse to raise");
        assert!(err.contains("RAISE"), "{err}");
        assert!(err.contains("unwrap-expect.alpha: 0 -> 1"), "{err}");
        assert!(err.contains("--allow-raise"), "{err}");
        // The baseline file is untouched.
        let text = std::fs::read_to_string(root.join("lint-baseline.toml")).expect("read");
        assert!(text.contains("alpha = 0"), "{text}");
    }

    #[test]
    fn update_baseline_refuses_unsafe_site_raise_without_flag() {
        let root = scratch_workspace(
            "unsafe-refuse",
            "pub fn f(p: *const u32) -> u32 { unsafe { *p } }\n",
            "[unwrap-expect]\nalpha = 0\n\n[unsafe-sites]\nalpha = 0\n",
        );
        let err = update_baseline(&root, false).expect_err("must refuse to raise");
        assert!(err.contains("RAISE"), "{err}");
        assert!(err.contains("unsafe-sites.alpha: 0 -> 1"), "{err}");
        let text = std::fs::read_to_string(root.join("lint-baseline.toml")).expect("read");
        assert!(text.contains("alpha = 0"), "{text}");
    }

    #[test]
    fn update_baseline_allow_raise_rewrites() {
        let root = scratch_workspace(
            "allow",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "[unwrap-expect]\nalpha = 0\n",
        );
        update_baseline(&root, true).expect("allow-raise path");
        let text = std::fs::read_to_string(root.join("lint-baseline.toml")).expect("read");
        assert!(text.contains("alpha = 1"), "{text}");
    }

    #[test]
    fn update_baseline_tightens_without_flag_and_keeps_roots() {
        let root = scratch_workspace(
            "tighten",
            "pub fn f(x: u32) -> u32 { x }\n",
            "[unwrap-expect]\nalpha = 2\n\n[hot-path-roots]\nentry = \"alpha::f\"\n",
        );
        update_baseline(&root, false).expect("tightening needs no flag");
        let text = std::fs::read_to_string(root.join("lint-baseline.toml")).expect("read");
        assert!(text.contains("alpha = 0"), "{text}");
        // The declared roots survive the rewrite.
        assert!(text.contains("entry = \"alpha::f\""), "{text}");
    }
}
