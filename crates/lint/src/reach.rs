//! Reachability over the workspace call graph (DESIGN.md §12).
//!
//! A plain BFS with parent tracking: the derived-hot-path rule needs the
//! reachable *set*, and the panic-free rule additionally wants a witness
//! call chain (`root -> a -> b`) so an over-ceiling diagnostic tells the
//! reader *why* the flagged site is on the serving path. Cycles
//! (recursion, mutual recursion) are handled by the visited set.

use crate::callgraph::CallGraph;

/// BFS result: membership plus one shortest parent chain per node.
pub struct Reach {
    /// `reached[n]` — is node `n` reachable from the seed set?
    pub reached: Vec<bool>,
    /// BFS parent of each reached node (`None` for seeds and unreached).
    pub parent: Vec<Option<usize>>,
}

/// Everything transitively reachable from `seeds` (seeds included),
/// traversing **all** edges — including conservative name-fallback ones.
/// This is the sound over-approximation the panic-free rule wants.
pub fn reachable(graph: &CallGraph, seeds: &[usize]) -> Reach {
    bfs(&graph.edges, seeds)
}

/// Reachability over only the precisely-resolved edges. The derived
/// hot-path rule uses this: as a perf ratchet backstopped by the dynamic
/// allocation counter, it trades the fallback edges away rather than
/// declare every `.map()`/`.push()` name collision hot.
pub fn reachable_precise(graph: &CallGraph, seeds: &[usize]) -> Reach {
    bfs(&graph.precise, seeds)
}

fn bfs(edges: &[Vec<usize>], seeds: &[usize]) -> Reach {
    let n = edges.len();
    let mut reached = vec![false; n];
    let mut parent = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in seeds {
        if s < n && !reached[s] {
            reached[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &edges[u] {
            if !reached[v] {
                reached[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    Reach { reached, parent }
}

impl Reach {
    /// Renders the witness chain from a seed down to `node` as
    /// `seed -> ... -> node` using qualified fn paths. Long chains are
    /// elided in the middle; the endpoints are what a reader needs.
    pub fn chain_to(&self, graph: &CallGraph, node: usize) -> String {
        let quals = self.chain_quals(graph, node);
        if quals.len() <= 5 {
            quals.join(" -> ")
        } else {
            format!(
                "{} -> {} -> ... -> {} -> {}",
                quals[0],
                quals[1],
                quals[quals.len() - 2],
                quals[quals.len() - 1]
            )
        }
    }

    /// The full witness chain, never elided — what `check --github` and
    /// `check --sarif` annotations carry so a reviewer can audit every
    /// hop without re-running the lint locally.
    pub fn full_chain_to(&self, graph: &CallGraph, node: usize) -> String {
        self.chain_quals(graph, node).join(" -> ")
    }

    fn chain_quals<'g>(&self, graph: &'g CallGraph, node: usize) -> Vec<&'g str> {
        let mut rev = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.iter().map(|&n| graph.nodes[n].qual.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{CallGraph, FileSource};
    use crate::lexer::{lex, Tok};
    use crate::parser::Tree;
    use crate::rules::FileMeta;

    fn graph(src: &str) -> CallGraph {
        let tokens = lex(src).expect("lex");
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
            .map(|(i, _)| i)
            .collect();
        let tree = Tree::parse(&tokens).expect("parse");
        let meta = FileMeta {
            rel_path: "crates/alpha/src/lib.rs".to_string(),
            crate_key: "alpha".to_string(),
            is_test_file: false,
        };
        CallGraph::build(&[FileSource {
            file: 0,
            meta: &meta,
            tokens: &tokens,
            code: &code,
            tree: &tree,
        }])
    }

    fn id(g: &CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("no node {qual}"))
    }

    #[test]
    fn transitive_closure_and_unreached() {
        let g = graph(
            r#"
            pub fn a() { b(); }
            fn b() { c(); }
            fn c() {}
            fn island() {}
            "#,
        );
        let r = reachable(&g, &[id(&g, "alpha::a")]);
        assert!(r.reached[id(&g, "alpha::c")]);
        assert!(!r.reached[id(&g, "alpha::island")]);
        assert_eq!(
            r.chain_to(&g, id(&g, "alpha::c")),
            "alpha::a -> alpha::b -> alpha::c"
        );
    }

    #[test]
    fn recursion_cycles_terminate() {
        let g = graph(
            r#"
            pub fn a() { b(); }
            fn b() { a(); c(); }
            fn c() { c(); }
            "#,
        );
        let r = reachable(&g, &[id(&g, "alpha::a")]);
        assert!(r.reached[id(&g, "alpha::a")]);
        assert!(r.reached[id(&g, "alpha::b")]);
        assert!(r.reached[id(&g, "alpha::c")]);
    }

    #[test]
    fn precise_traversal_skips_name_fallback_edges() {
        // `x.m()` on an unknown receiver is a fallback edge to every `m`;
        // `A::m()` is precise. Panic-free reachability must cross both,
        // the hot-path closure only the latter.
        let g = graph(
            r#"
            pub struct A;
            pub struct B;
            impl A { pub fn m(&self) {} }
            impl B { pub fn m(&self) {} }
            pub fn by_name(x: &A) { x.m(); }
            pub fn by_type() { A::m(&A); }
            "#,
        );
        let all = reachable(&g, &[id(&g, "alpha::by_name")]);
        assert!(all.reached[id(&g, "alpha::A::m")]);
        assert!(all.reached[id(&g, "alpha::B::m")]);
        let precise = reachable_precise(&g, &[id(&g, "alpha::by_name")]);
        assert!(!precise.reached[id(&g, "alpha::A::m")]);
        assert!(!precise.reached[id(&g, "alpha::B::m")]);
        let precise = reachable_precise(&g, &[id(&g, "alpha::by_type")]);
        assert!(precise.reached[id(&g, "alpha::A::m")]);
        assert!(!precise.reached[id(&g, "alpha::B::m")]);
    }

    #[test]
    fn multiple_seeds_union() {
        let g = graph(
            r#"
            pub fn a() { shared(); }
            pub fn b() { shared(); only_b(); }
            fn shared() {}
            fn only_b() {}
            "#,
        );
        let r = reachable(&g, &[id(&g, "alpha::a")]);
        assert!(!r.reached[id(&g, "alpha::only_b")]);
        let r = reachable(&g, &[id(&g, "alpha::a"), id(&g, "alpha::b")]);
        assert!(r.reached[id(&g, "alpha::only_b")]);
    }
}
