//! A lightweight brace-tree parser over the lexer's token stream.
//!
//! The scope-aware rules (hot-path-alloc, float-reduction-order) need to
//! know *which function* a token lives in, which the flat token stream
//! cannot answer. This module builds exactly the structure required and no
//! more:
//!
//! - a tree of `{ ... }` **blocks** (every brace pair, from item bodies
//!   down to struct literals — the rules only care about containment, so
//!   over-approximating "block" is fine and keeps the parser trivial);
//! - a list of **`fn` items** with their name, attributes, visibility and
//!   body block, recognised the same way `fn_spans` in `rules.rs` does
//!   (`fn` + identifier; the first `{` before a `;` opens the body, since
//!   where-clauses cannot contain `{`).
//!
//! The parser is deliberately *lossless*: [`Tree::flatten`] walks the tree
//! and re-emits every raw token index in order. The proptest in
//! `tests/parser_roundtrip.rs` checks `flatten() == 0..tokens.len()` on
//! every workspace source, so any structural bug that drops or duplicates
//! a token is caught against the whole codebase on every run.
//!
//! Like the lexer, this parser is dependency-free and heuristic-but-sound
//! for the rules built on it: braces cannot occur inside `Str`/`Char`/
//! `Comment` tokens after lexing, so block nesting derived from `Punct('{')`
//! / `Punct('}')` alone is exact for any source that compiles.

use crate::lexer::{Tok, Token};

/// A structural failure; reported like a lex error (the file would not
/// compile anyway, but the linter must not panic on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

/// One `{ ... }` pair. Indices are into the *raw* token stream.
#[derive(Debug, Clone)]
pub struct Block {
    /// Raw index of the opening `{`.
    pub open: usize,
    /// Raw index of the matching `}`.
    pub close: usize,
    /// Parent block id, `None` for top-level blocks.
    pub parent: Option<usize>,
    /// Child block ids in source order.
    pub children: Vec<usize>,
}

/// A `fn` item: signature metadata plus its body block (if any).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Raw index of the `fn` keyword.
    pub fn_tok: usize,
    /// Body block id into [`Tree::blocks`]; `None` for bodiless
    /// declarations (trait methods, extern fns).
    pub body: Option<usize>,
    /// Head identifiers of the outer attributes on the item, in order
    /// (`#[inline(always)] #[cfg(test)]` -> `["inline", "cfg"]`).
    pub attrs: Vec<String>,
    /// Carries `#[test]` or a `cfg`-family attribute mentioning `test`.
    pub is_test: bool,
    /// Declared `pub` (any visibility: `pub`, `pub(crate)`, ...).
    pub is_pub: bool,
}

/// The brace tree plus all `fn` items of one file.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    /// Block arena, in opening-brace order (so `open` is ascending).
    pub blocks: Vec<Block>,
    /// Top-level block ids in source order.
    pub roots: Vec<usize>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
}

impl Tree {
    /// Parses the token stream into a brace tree with `fn` items.
    pub fn parse(tokens: &[Token]) -> Result<Tree, ParseError> {
        let mut tree = Tree::default();
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            match t.tok {
                Tok::Punct('{') => {
                    let id = tree.blocks.len();
                    let parent = stack.last().copied();
                    tree.blocks.push(Block {
                        open: i,
                        close: usize::MAX,
                        parent,
                        children: Vec::new(),
                    });
                    match parent {
                        Some(p) => tree.blocks[p].children.push(id),
                        None => tree.roots.push(id),
                    }
                    stack.push(id);
                }
                Tok::Punct('}') => {
                    let Some(id) = stack.pop() else {
                        return Err(ParseError {
                            line: t.line,
                            message: "unmatched `}`".to_string(),
                        });
                    };
                    tree.blocks[id].close = i;
                }
                _ => {}
            }
        }
        if let Some(&id) = stack.last() {
            return Err(ParseError {
                line: tokens[tree.blocks[id].open].line,
                message: "unclosed `{`".to_string(),
            });
        }
        tree.collect_fns(tokens);
        Ok(tree)
    }

    /// Re-emits every raw token index in source order by walking the tree.
    /// For a correct parse this is exactly `0..num_tokens` — the round-trip
    /// invariant the parser proptest pins.
    pub fn flatten(&self, num_tokens: usize) -> Vec<usize> {
        fn emit(blocks: &[Block], ids: &[usize], from: usize, to: usize, out: &mut Vec<usize>) {
            let mut cursor = from;
            for &id in ids {
                let b = &blocks[id];
                out.extend(cursor..b.open);
                out.push(b.open);
                emit(blocks, &b.children, b.open + 1, b.close, out);
                out.push(b.close);
                cursor = b.close + 1;
            }
            out.extend(cursor..to);
        }
        let mut out = Vec::with_capacity(num_tokens);
        emit(&self.blocks, &self.roots, 0, num_tokens, &mut out);
        out
    }

    /// The innermost `fn` (index into [`Tree::fns`]) whose body contains
    /// raw token index `i`, if any.
    pub fn innermost_fn_at(&self, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter_map(|(fi, f)| f.body.map(|b| (fi, &self.blocks[b])))
            .filter(|(_, blk)| blk.open < i && i < blk.close)
            .max_by_key(|(_, blk)| blk.open)
            .map(|(fi, _)| fi)
    }

    /// Finds the block whose opening brace is at raw index `open`.
    /// Blocks are created in opening order, so binary search applies.
    pub(crate) fn block_at_open(&self, open: usize) -> Option<usize> {
        self.blocks.binary_search_by_key(&open, |b| b.open).ok()
    }

    fn collect_fns(&mut self, tokens: &[Token]) {
        // Work in code (comment-free) index space: attributes and the
        // signature may have comments interleaved.
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
            .map(|(i, _)| i)
            .collect();
        let n = code.len();
        let tok = |ci: usize| &tokens[code[ci]].tok;
        for ci in 0..n {
            if !matches!(tok(ci), Tok::Ident(s) if s == "fn") {
                continue;
            }
            // `fn` must introduce a named item — skips `Fn(...)` bounds and
            // `fn(...)` pointer types.
            let Some(Tok::Ident(name)) = (ci + 1 < n).then(|| tok(ci + 1)) else {
                continue;
            };
            let name = name.clone();
            // First `{` before a `;` opens the body.
            let mut j = ci + 1;
            let mut body = None;
            while j < n {
                match tok(j) {
                    Tok::Punct('{') => {
                        body = self.block_at_open(code[j]);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => j += 1,
                }
            }
            let (attrs, is_test, is_pub) = Self::signature_head(tokens, &code, ci);
            self.fns.push(FnItem {
                name,
                line: tokens[code[ci]].line,
                fn_tok: code[ci],
                body,
                attrs,
                is_test,
                is_pub,
            });
        }
    }

    /// Walks backwards from the `fn` keyword (code index `fn_ci`) over
    /// signature modifiers and outer attributes, capturing attribute heads
    /// and visibility.
    fn signature_head(tokens: &[Token], code: &[usize], fn_ci: usize) -> (Vec<String>, bool, bool) {
        let tok = |ci: usize| &tokens[code[ci]].tok;
        let mut attrs_rev: Vec<String> = Vec::new();
        let mut is_test = false;
        let mut is_pub = false;
        let mut ci = fn_ci;
        while ci > 0 {
            let prev = ci - 1;
            match tok(prev) {
                // Qualifiers: `pub const unsafe extern "C" fn`, `async fn`.
                Tok::Ident(s)
                    if matches!(s.as_str(), "pub" | "const" | "unsafe" | "async" | "extern") =>
                {
                    if s == "pub" {
                        is_pub = true;
                    }
                    ci = prev;
                }
                // ABI string of `extern "C"`.
                Tok::Str => ci = prev,
                // Restricted visibility: the `(crate)` / `(in path)` of
                // `pub(crate)` — scan back to its `(`; the `pub` before it
                // is handled on the next iteration.
                Tok::Punct(')') => {
                    let mut depth = 0usize;
                    let mut k = prev;
                    loop {
                        match tok(k) {
                            Tok::Punct(')') => depth += 1,
                            Tok::Punct('(') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    // Only a visibility restriction follows `pub`; anything
                    // else ends the signature head.
                    if k > 0 && matches!(tok(k - 1), Tok::Ident(s) if s == "pub") {
                        ci = k;
                    } else {
                        break;
                    }
                }
                // Outer attribute: `#[...]` — scan back to its `[`, then
                // require the `#` before it.
                Tok::Punct(']') => {
                    let mut depth = 0usize;
                    let mut k = prev;
                    loop {
                        match tok(k) {
                            Tok::Punct(']') => depth += 1,
                            Tok::Punct('[') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    if k == 0 || *tok(k - 1) != Tok::Punct('#') {
                        break;
                    }
                    let mut head: Option<&str> = None;
                    for a in k + 1..prev {
                        if let Tok::Ident(s) = tok(a) {
                            if head.is_none() {
                                head = Some(s);
                            }
                            if s == "test" && matches!(head, Some("test") | Some("cfg")) {
                                is_test = true;
                            }
                        }
                    }
                    attrs_rev.push(head.unwrap_or("").to_string());
                    ci = k - 1;
                }
                _ => break,
            }
        }
        attrs_rev.reverse();
        (attrs_rev, is_test, is_pub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Tree {
        Tree::parse(&lex(src).expect("fixture must lex")).expect("fixture must parse")
    }

    #[test]
    fn nesting_and_roundtrip() {
        let src = r#"
            mod m {
                fn a() { if true { let s = S { x: 1 }; } }
            }
            fn b() {}
        "#;
        let tokens = lex(src).expect("lex");
        let tree = Tree::parse(&tokens).expect("parse");
        assert_eq!(tree.roots.len(), 2, "mod block + fn b block");
        assert_eq!(
            tree.flatten(tokens.len()),
            (0..tokens.len()).collect::<Vec<_>>()
        );
        // mod body > fn a body > if body > struct literal.
        let deepest = tree
            .blocks
            .iter()
            .map(|b| {
                let mut depth = 0;
                let mut p = b.parent;
                while let Some(pp) = p {
                    depth += 1;
                    p = tree.blocks[pp].parent;
                }
                depth
            })
            .max();
        assert_eq!(deepest, Some(3));
    }

    #[test]
    fn fn_items_capture_name_body_attrs_visibility() {
        let src = r#"
            /// Docs.
            #[inline(always)]
            #[cfg(feature = "x")]
            pub(crate) unsafe extern "C" fn kernel(p: *mut f32) { loop {} }
            fn helper() -> usize where usize: Sized { 0 }
            trait T { fn decl(&self); }
            #[test]
            fn check() {}
        "#;
        let tree = parse(src);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["kernel", "helper", "decl", "check"]);
        let kernel = &tree.fns[0];
        assert_eq!(kernel.attrs, vec!["inline", "cfg"]);
        assert!(kernel.is_pub);
        assert!(!kernel.is_test);
        assert!(kernel.body.is_some());
        assert!(!tree.fns[1].is_pub);
        assert!(tree.fns[2].body.is_none(), "trait decl has no body");
        assert!(tree.fns[3].is_test);
    }

    #[test]
    fn fn_bounds_and_pointer_types_are_not_items() {
        let src = "fn apply<F: Fn(u32) -> u32>(f: F, p: fn(u32) -> u32) -> u32 { f(p(1)) }";
        let tree = parse(src);
        assert_eq!(tree.fns.len(), 1);
        assert_eq!(tree.fns[0].name, "apply");
    }

    #[test]
    fn innermost_fn_handles_nesting_and_closures() {
        let src = r#"
            fn outer() {
                let c = |x: u32| { x + 1 };
                fn inner() { let v = 1; }
            }
        "#;
        let tokens = lex(src).expect("lex");
        let tree = Tree::parse(&tokens).expect("parse");
        // Token inside `inner`'s body resolves to `inner`, not `outer`.
        let v_idx = tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("v".to_string()))
            .expect("v exists");
        let fi = tree.innermost_fn_at(v_idx).expect("inside a fn");
        assert_eq!(tree.fns[fi].name, "inner");
        // Token inside the closure body still belongs to `outer`.
        let x_idx = tokens
            .iter()
            .rposition(|t| t.tok == Tok::Ident("x".to_string()))
            .expect("x exists");
        let fo = tree.innermost_fn_at(x_idx).expect("inside a fn");
        assert_eq!(tree.fns[fo].name, "outer");
        // The `fn` keyword of a top-level item is inside no fn body.
        assert_eq!(tree.innermost_fn_at(0), None);
    }

    #[test]
    fn unbalanced_braces_error_with_line() {
        let toks = lex("fn f() {\n{\n}").expect("lex");
        let err = Tree::parse(&toks).expect_err("unclosed");
        assert_eq!(err.line, 1);
        let toks = lex("fn f() {}\n}").expect("lex");
        let err = Tree::parse(&toks).expect_err("unmatched");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn flatten_roundtrips_empty_and_flat_sources() {
        for src in ["", "let x = 1;", "{}", "{}{}", "{{}}"] {
            let tokens = lex(src).expect("lex");
            let tree = Tree::parse(&tokens).expect("parse");
            assert_eq!(
                tree.flatten(tokens.len()),
                (0..tokens.len()).collect::<Vec<_>>(),
                "src = {src:?}"
            );
        }
    }
}
