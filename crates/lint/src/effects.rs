//! Interprocedural effect inference over the workspace call graph
//! (DESIGN.md §15).
//!
//! The per-file rules (§10) answer "does this token do something
//! suspicious"; the call-graph rules (§12) answer "can a declared root
//! reach this fn". This module joins the two: every fn in the call-graph
//! index gets an **effect set** — what the fn (or anything it can call)
//! may do — seeded from the same token-level detectors the per-file rules
//! run and propagated to a fixed point over the call edges. The cone
//! rules (`determinism-cone`, `no-blocking-cone`) and the refactored
//! `hot-path-alloc`/`panic-free` consumers in `lib.rs` then police
//! declared roots against these summaries instead of re-deriving their
//! own bespoke closures.
//!
//! Conservatism guarantees:
//!
//! - **Seeding is a superset of the per-file detections by
//!   construction**: the seeds come from the *same* collector functions
//!   (`rules::clock_entropy_sites`, `hash_iter_sites`, ... — see
//!   `rules.rs`) the per-file rules consume, run *before* any policy
//!   (crate exemptions, allowlists, waivers) is applied. A site the
//!   per-file rule would flag is therefore always present as a seed; the
//!   golden test in `tests/whole_workspace.rs` pins this.
//! - **Propagation traverses every edge**, including the conservative
//!   name-fallback edges (`recv.m()` resolving to every method named
//!   `m`), so a summary over-approximates: it may claim an effect the fn
//!   cannot dynamically exhibit, never the reverse (within the known
//!   token-level blind spots documented in `callgraph.rs`: derive
//!   bodies, UFCS, fn pointers).
//! - **Policy is applied by the consumers, not here.** Waivers are only
//!   consulted when a rule actually evaluates a reached site, so the
//!   unused-waiver pass stays exact.

use crate::callgraph::CallGraph;
use crate::lexer::Token;
use crate::parser::Tree;
use crate::rules;
use std::collections::VecDeque;

/// The effect lattice: one bit per effect, ordered arbitrarily. Joins are
/// bitwise-or; the fixed point exists because the lattice is finite and
/// propagation is monotone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Reads wall-clock or monotonic time (`Instant`, `SystemTime`, ...).
    ReadsClock,
    /// Reaches for OS entropy (`OsRng`, `thread_rng`, `RandomState`, ...).
    ReadsEntropy,
    /// Iterates a hash container, whose order depends on the hash seed.
    HashIter,
    /// Performs a float reduction whose summation order is not
    /// structurally fixed (`.sum::<f32>()`, float `fold`, ...).
    FloatOrderSensitive,
    /// May park the thread: mutex `lock`, condvar `wait*`, blocking
    /// channel `recv*`, `thread::sleep`, zero-arg `join()`.
    Blocks,
    /// May touch the heap (`Vec::new`, `.clone()`, `format!`, ...).
    Allocates,
    /// May panic (panic macros, `.unwrap()`/`.expect(`, slice indexing).
    Panics,
    /// Contains an `unsafe` token.
    Unsafe,
}

impl Effect {
    pub const ALL: [Effect; 8] = [
        Effect::ReadsClock,
        Effect::ReadsEntropy,
        Effect::HashIter,
        Effect::FloatOrderSensitive,
        Effect::Blocks,
        Effect::Allocates,
        Effect::Panics,
        Effect::Unsafe,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Effect::ReadsClock => "ReadsClock",
            Effect::ReadsEntropy => "ReadsEntropy",
            Effect::HashIter => "HashIter",
            Effect::FloatOrderSensitive => "FloatOrderSensitive",
            Effect::Blocks => "Blocks",
            Effect::Allocates => "Allocates",
            Effect::Panics => "Panics",
            Effect::Unsafe => "Unsafe",
        }
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of effects, packed into one word so per-node summaries stay
/// cheap to copy and compare during the fixed-point iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet(u16);

impl EffectSet {
    pub const EMPTY: EffectSet = EffectSet(0);

    pub fn of(effects: &[Effect]) -> EffectSet {
        let mut s = EffectSet::EMPTY;
        for &e in effects {
            s.insert(e);
        }
        s
    }

    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    pub fn intersects(self, other: EffectSet) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `{ReadsClock, Blocks}` — the rendering used in reports and the
    /// per-root summary lines.
    pub fn render(self) -> String {
        let names: Vec<&str> = Effect::ALL
            .iter()
            .filter(|&&e| self.contains(e))
            .map(|&e| e.name())
            .collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// One seed site: a token-level fact inside a specific fn's body, before
/// any policy. `line`/`label` feed diagnostics; `is_index` distinguishes
/// unchecked slice indexing inside [`Effect::Panics`] (policed only for
/// `+index` panic-free roots, exactly as before the refactor).
#[derive(Debug, Clone)]
pub struct EffectSite {
    pub effect: Effect,
    pub line: u32,
    pub label: String,
    pub is_index: bool,
}

/// One analyzed file feeding the seeding pass. `file` must match the id
/// used when building the [`CallGraph`] (so `graph.node_at` resolves).
pub struct SeedSource<'a> {
    pub file: usize,
    pub tokens: &'a [Token],
    pub code: &'a [usize],
    pub tree: &'a Tree,
    pub test_mask: &'a [bool],
}

/// Per-fn effect seeds and fixed-point summaries, indexed by call-graph
/// node id.
pub struct EffectIndex {
    /// Token-level seed sites inside each fn's own body.
    pub seeds: Vec<Vec<EffectSite>>,
    /// `summary[n]` = seeds of `n` ∪ summaries of everything `n` can
    /// call, over **all** edges (conservative fallbacks included).
    pub summary: Vec<EffectSet>,
}

impl EffectIndex {
    /// Seeds every node from the shared token-level collectors, then
    /// propagates bottom-up to a fixed point with a worklist over the
    /// reverse call edges.
    pub fn build(graph: &CallGraph, files: &[SeedSource<'_>]) -> EffectIndex {
        let n = graph.nodes.len();
        let mut seeds: Vec<Vec<EffectSite>> = vec![Vec::new(); n];

        for f in files {
            let mut add = |ci: usize, effect: Effect, label: String, is_index: bool| {
                let raw = f.code[ci];
                if f.test_mask[raw] {
                    return;
                }
                let Some(fn_idx) = f.tree.innermost_fn_at(raw) else {
                    return; // item scope: no fn body, nothing to attribute
                };
                if f.tree.fns[fn_idx].is_test {
                    return;
                }
                let Some(node) = graph.node_at(f.file, fn_idx) else {
                    return;
                };
                seeds[node].push(EffectSite {
                    effect,
                    line: f.tokens[raw].line,
                    label,
                    is_index,
                });
            };

            let (clock, entropy) = rules::clock_entropy_sites(f.tokens, f.code);
            for s in clock {
                add(s.ci, Effect::ReadsClock, s.label, false);
            }
            for s in entropy {
                add(s.ci, Effect::ReadsEntropy, s.label, false);
            }
            for s in rules::hash_iter_sites(f.tokens, f.code) {
                add(
                    s.ci,
                    Effect::HashIter,
                    format!("`{}` {}", s.name, s.how),
                    false,
                );
            }
            for s in rules::float_reduction_sites(f.tokens, f.code) {
                add(s.ci, Effect::FloatOrderSensitive, s.label, false);
            }
            for s in rules::blocking_sites(f.tokens, f.code) {
                add(s.ci, Effect::Blocks, s.label, false);
            }
            for s in rules::alloc_sites(f.tokens, f.code) {
                add(s.ci, Effect::Allocates, s.label, false);
            }
            for s in rules::unsafe_token_sites(f.tokens, f.code) {
                add(s.ci, Effect::Unsafe, s.label, false);
            }
            // Panic sites are already fn-attributed by the existing
            // collector; map them straight onto nodes.
            for s in rules::panic_sites(f.tokens, f.code, f.tree, f.test_mask) {
                if let Some(node) = graph.node_at(f.file, s.fn_idx) {
                    seeds[node].push(EffectSite {
                        effect: Effect::Panics,
                        line: s.line,
                        label: s.label,
                        is_index: s.is_index,
                    });
                }
            }
        }

        // Bottom-up fixed point: summary[u] = seed[u] | ⋃ summary[v] for
        // every callee v. Worklist over reverse edges; monotone joins on a
        // finite lattice terminate (cycles just stop changing).
        let mut summary: Vec<EffectSet> = seeds
            .iter()
            .map(|sites| {
                let mut s = EffectSet::EMPTY;
                for site in sites {
                    s.insert(site.effect);
                }
                s
            })
            .collect();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, callees) in graph.edges.iter().enumerate() {
            for &v in callees {
                rev[v].push(u);
            }
        }
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued = vec![true; n];
        while let Some(v) = queue.pop_front() {
            queued[v] = false;
            for &u in &rev[v] {
                let merged = summary[u].union(summary[v]);
                if merged != summary[u] {
                    summary[u] = merged;
                    if !queued[u] {
                        queued[u] = true;
                        queue.push_back(u);
                    }
                }
            }
        }

        EffectIndex { seeds, summary }
    }

    /// The joined summary over a set of roots (what a `[determinism-roots]`
    /// entry with several pattern hits may reach, total).
    pub fn summary_of(&self, roots: &[usize]) -> EffectSet {
        roots
            .iter()
            .fold(EffectSet::EMPTY, |acc, &r| acc.union(self.summary[r]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{CallGraph, FileSource};
    use crate::lexer::{lex, Tok};
    use crate::rules::FileMeta;

    struct Fixture {
        tokens: Vec<Token>,
        code: Vec<usize>,
        tree: Tree,
        test_mask: Vec<bool>,
        meta: FileMeta,
    }

    fn fixture(src: &str) -> Fixture {
        let tokens = lex(src).expect("fixture must lex");
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
            .map(|(i, _)| i)
            .collect();
        let tree = Tree::parse(&tokens).expect("fixture must parse");
        let test_mask = vec![false; tokens.len()];
        let meta = FileMeta {
            rel_path: "crates/alpha/src/lib.rs".to_string(),
            crate_key: "alpha".to_string(),
            is_test_file: false,
        };
        Fixture {
            tokens,
            code,
            tree,
            test_mask,
            meta,
        }
    }

    fn index_of(src: &str) -> (CallGraph, EffectIndex) {
        let f = fixture(src);
        let graph = CallGraph::build(&[FileSource {
            file: 0,
            meta: &f.meta,
            tokens: &f.tokens,
            code: &f.code,
            tree: &f.tree,
        }]);
        let idx = EffectIndex::build(
            &graph,
            &[SeedSource {
                file: 0,
                tokens: &f.tokens,
                code: &f.code,
                tree: &f.tree,
                test_mask: &f.test_mask,
            }],
        );
        (graph, idx)
    }

    fn node(g: &CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("no node {qual}"))
    }

    #[test]
    fn effect_set_packs_and_renders() {
        let mut s = EffectSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Effect::Blocks);
        s.insert(Effect::ReadsClock);
        assert!(s.contains(Effect::Blocks));
        assert!(!s.contains(Effect::Panics));
        assert!(s.intersects(EffectSet::of(&[Effect::Blocks])));
        assert!(!s.intersects(EffectSet::of(&[Effect::HashIter])));
        assert_eq!(s.render(), "{ReadsClock, Blocks}");
        assert_eq!(s, EffectSet::of(&[Effect::ReadsClock, Effect::Blocks]));
    }

    #[test]
    fn seeds_attribute_sites_to_their_fn() {
        let (g, idx) = index_of(
            r#"
            pub fn clocky() -> u64 { let t = Instant::now(); 0 }
            pub fn clean(x: u32) -> u32 { x + 1 }
            "#,
        );
        let clocky = node(&g, "alpha::clocky");
        let clean = node(&g, "alpha::clean");
        assert!(idx.seeds[clocky]
            .iter()
            .any(|s| s.effect == Effect::ReadsClock && s.label == "Instant"));
        assert!(idx.seeds[clean].is_empty());
        assert!(idx.summary[clocky].contains(Effect::ReadsClock));
        assert!(idx.summary[clean].is_empty());
    }

    #[test]
    fn summaries_propagate_through_calls_and_cycles() {
        let (g, idx) = index_of(
            r#"
            pub fn root() { middle(); }
            fn middle() { leaf(); root(); }
            fn leaf() { let mut m = std::sync::Mutex::new(0u32); let _g = m.lock(); }
            fn island() { let _rng = rand::thread_rng(); }
            "#,
        );
        let root = node(&g, "alpha::root");
        assert!(idx.summary[root].contains(Effect::Blocks));
        // `island` is unreached: its entropy must not leak into `root`.
        assert!(!idx.summary[root].contains(Effect::ReadsEntropy));
        assert!(idx.summary[node(&g, "alpha::island")].contains(Effect::ReadsEntropy));
        // The seed stays on the leaf only.
        assert!(idx.seeds[root].is_empty());
        assert!(!idx.seeds[node(&g, "alpha::leaf")].is_empty());
    }

    #[test]
    fn conservative_method_edges_propagate_effects() {
        // `x.helper()` on an unknown receiver falls back to every method
        // named `helper` — the summary must absorb both candidates.
        let (g, idx) = index_of(
            r#"
            pub struct A;
            pub struct B;
            impl A { pub fn helper(&self) { let v: Vec<u32> = Vec::new(); } }
            impl B { pub fn helper(&self) { panic!("boom"); } }
            pub fn entry(x: &A) { x.helper(); }
            "#,
        );
        let entry = node(&g, "alpha::entry");
        assert!(idx.summary[entry].contains(Effect::Allocates));
        assert!(idx.summary[entry].contains(Effect::Panics));
    }

    #[test]
    fn every_effect_kind_seeds() {
        let (g, idx) = index_of(
            r#"
            pub fn everything(counts: &HashMap<u32, u32>, xs: &[f32]) -> f32 {
                let t = SystemTime::now();
                let r = rand::rngs::OsRng;
                for (_, v) in counts.iter() { let _ = v; }
                let s = xs.iter().sum::<f32>();
                std::thread::sleep(core::time::Duration::from_millis(1));
                let copy = xs.to_vec();
                let first = xs[0];
                // SAFETY: fixture only.
                unsafe { std::ptr::read(xs.as_ptr()) };
                copy.len() as f32 + s + first
            }
            "#,
        );
        let n = node(&g, "alpha::everything");
        let have: EffectSet = idx.summary[n];
        for e in Effect::ALL {
            assert!(
                have.contains(e),
                "missing {} in {}",
                e.name(),
                have.render()
            );
        }
        // The slice-index panic seed keeps its `is_index` marker.
        assert!(idx.seeds[n]
            .iter()
            .any(|s| s.effect == Effect::Panics && s.is_index));
    }

    #[test]
    fn test_code_does_not_seed() {
        let src = r#"
            pub fn real() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = Instant::now(); }
            }
        "#;
        let f = fixture(src);
        let mask = crate::rules::test_mask_for(&f.tokens, &f.code, false);
        let graph = CallGraph::build(&[FileSource {
            file: 0,
            meta: &f.meta,
            tokens: &f.tokens,
            code: &f.code,
            tree: &f.tree,
        }]);
        let idx = EffectIndex::build(
            &graph,
            &[SeedSource {
                file: 0,
                tokens: &f.tokens,
                code: &f.code,
                tree: &f.tree,
                test_mask: &mask,
            }],
        );
        assert!(idx.seeds.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn summary_of_joins_roots() {
        let (g, idx) = index_of(
            r#"
            pub fn a() { let t = Instant::now(); }
            pub fn b() { let mut m = std::sync::Mutex::new(0u32); let _g = m.lock(); }
            "#,
        );
        let joined = idx.summary_of(&[node(&g, "alpha::a"), node(&g, "alpha::b")]);
        assert!(joined.contains(Effect::ReadsClock));
        assert!(joined.contains(Effect::Blocks));
        assert!(!joined.contains(Effect::Panics));
    }

    /// Golden superset pin over the real workspace: every token-level
    /// collector site in non-test code inside a non-test fn body MUST
    /// resolve to a call-graph node and appear among that node's effect
    /// seeds with matching line. This is the "superset by construction"
    /// guarantee the module docs promise — if fn attribution or node
    /// resolution ever silently dropped a site, the cones would
    /// under-approximate and this test fails.
    #[test]
    fn workspace_seeds_are_a_superset_of_the_collector_sites() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = crate::load_workspace_sources(&root).expect("load workspace sources");
        let ctxs: Vec<crate::rules::FileCtx> = files
            .iter()
            .map(|(meta, src)| {
                let tokens = lex(src).unwrap_or_else(|e| {
                    panic!(
                        "{}: lexer error at line {}: {}",
                        meta.rel_path, e.line, e.message
                    )
                });
                crate::rules::analyze_prelude(meta, tokens)
            })
            .collect();
        let graph = CallGraph::build(
            &ctxs
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.meta.is_test_file)
                .filter_map(|(i, c)| {
                    c.tree.as_ref().map(|tree| FileSource {
                        file: i,
                        meta: &c.meta,
                        tokens: &c.tokens,
                        code: &c.code,
                        tree,
                    })
                })
                .collect::<Vec<_>>(),
        );
        let idx = EffectIndex::build(
            &graph,
            &ctxs
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.meta.is_test_file)
                .filter_map(|(i, c)| {
                    c.tree.as_ref().map(|tree| SeedSource {
                        file: i,
                        tokens: &c.tokens,
                        code: &c.code,
                        tree,
                        test_mask: &c.test_mask,
                    })
                })
                .collect::<Vec<_>>(),
        );

        let mut checked = 0usize;
        for (i, c) in ctxs.iter().enumerate() {
            if c.meta.is_test_file {
                continue;
            }
            let Some(tree) = c.tree.as_ref() else {
                continue;
            };
            let mut expect = |ci: usize, effect: Effect, what: &str| {
                let raw = c.code[ci];
                if c.test_mask[raw] {
                    return;
                }
                let Some(fn_idx) = tree.innermost_fn_at(raw) else {
                    return; // item scope (consts, statics): not attributable
                };
                if tree.fns[fn_idx].is_test {
                    return;
                }
                let line = c.tokens[raw].line;
                let node = graph.node_at(i, fn_idx).unwrap_or_else(|| {
                    panic!(
                        "{}:{line}: fn containing {what} site has no call-graph node",
                        c.meta.rel_path
                    )
                });
                assert!(
                    idx.seeds[node]
                        .iter()
                        .any(|s| s.effect == effect && s.line == line),
                    "{}:{line}: {what} collector site missing from `{}` seeds",
                    c.meta.rel_path,
                    graph.nodes[node].qual,
                );
                checked += 1;
            };

            let (clock, entropy) = crate::rules::clock_entropy_sites(&c.tokens, &c.code);
            for s in &clock {
                expect(s.ci, Effect::ReadsClock, "clock");
            }
            for s in &entropy {
                expect(s.ci, Effect::ReadsEntropy, "entropy");
            }
            for s in crate::rules::hash_iter_sites(&c.tokens, &c.code) {
                expect(s.ci, Effect::HashIter, "hash-iter");
            }
            for s in crate::rules::float_reduction_sites(&c.tokens, &c.code) {
                expect(s.ci, Effect::FloatOrderSensitive, "float-reduction");
            }
            for s in crate::rules::blocking_sites(&c.tokens, &c.code) {
                expect(s.ci, Effect::Blocks, "blocking");
            }
            for s in crate::rules::alloc_sites(&c.tokens, &c.code) {
                expect(s.ci, Effect::Allocates, "alloc");
            }
            for s in crate::rules::unsafe_token_sites(&c.tokens, &c.code) {
                expect(s.ci, Effect::Unsafe, "unsafe");
            }
        }
        // The workspace is not trivially empty of effects; if this ever
        // drops to zero the test went vacuous and needs a new anchor.
        assert!(checked > 500, "only {checked} collector sites checked");
    }
}
