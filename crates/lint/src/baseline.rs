//! The ratchet baselines: committed per-crate ceilings that may only go
//! down, plus the declared reachability roots.
//!
//! Ten tables live in `lint-baseline.toml` at the workspace root:
//!
//! - `[unwrap-expect]` — per-crate ceilings on `.unwrap()` / `.expect(`
//!   counts.
//! - `[unsafe-sites]` — per-crate ceilings on `unsafe` occurrences in
//!   non-test code (all of which must also sit in the unsafe-confinement
//!   allowlist and carry SAFETY comments; the ceiling pins the exact site
//!   count so new `unsafe` shows up in review).
//! - `[hot-path-alloc]` — per-crate ceilings on unwaived allocation sites
//!   inside the *derived* hot-path fn set (reachable from
//!   `[hot-path-roots]` plus the `*_into`/`step*` naming convention, see
//!   `rules::is_hot_fn` and DESIGN.md §12).
//! - `[hot-path-roots]` — named entry points whose transitive callees form
//!   the hot-path set: `name = "qualified::fn::path"`.
//! - `[panic-free-roots]` — entry points that must not reach a panic
//!   site: `name = "qualified::fn::path"`, with an optional ` +index`
//!   suffix that additionally bans unchecked slice indexing (used for the
//!   untrusted-bytes artifact decode path).
//! - `[panic-free]` — per-root ceilings on unwaived reachable panic sites.
//! - `[determinism-roots]` — entry points whose call cones must stay
//!   bit-deterministic (no clock/entropy/hash-iteration reachable; float
//!   reductions only in the pinned-order allowlist): `name = "fn::path"`.
//! - `[determinism-cone]` — per-root ceilings on unwaived determinism
//!   violations reached from each `[determinism-roots]` entry.
//! - `[no-block-roots]` — entry points whose call cones must never park
//!   the thread (mutex `lock`, condvar `wait`, blocking `recv`, `sleep`,
//!   `join`) except at sites waived in place: `name = "fn::path"`.
//! - `[no-blocking-cone]` — per-root ceilings on unwaived blocking sites
//!   reached from each `[no-block-roots]` entry.
//!
//! We parse the tiny TOML subset we emit ourselves (`[table]` headers,
//! `key = integer` and `key = "string"` lines, `#` comments) rather than
//! pulling in a TOML crate — the linter is dependency-free by design.

use std::collections::BTreeMap;

/// One `[panic-free-roots]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootSpec {
    /// Qualified fn-path suffix (`serve::scorer::FrozenScorer::score_into`).
    pub pattern: String,
    /// Also count unchecked slice-index sites (` +index` suffix).
    pub index_strict: bool,
}

/// Per-crate ceilings, keyed by crate key (`tensor`, `nn`, ..., `root`),
/// plus the reachability roots and per-root panic-free ceilings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub unwrap_expect: BTreeMap<String, usize>,
    pub unsafe_sites: BTreeMap<String, usize>,
    pub hot_path_alloc: BTreeMap<String, usize>,
    pub hot_path_roots: BTreeMap<String, String>,
    pub panic_free_roots: BTreeMap<String, RootSpec>,
    pub panic_free: BTreeMap<String, usize>,
    pub determinism_roots: BTreeMap<String, String>,
    pub determinism_cone: BTreeMap<String, usize>,
    pub no_block_roots: BTreeMap<String, String>,
    pub no_blocking_cone: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the `lint-baseline.toml` subset. Errors carry the offending
    /// line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut baseline = Baseline::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("baseline line {lineno}: unterminated table header"));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "baseline line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let key = key.trim().trim_matches('"').to_string();
            // Strip a trailing same-line comment from unquoted values.
            let value = value.trim();
            match section.as_str() {
                "unwrap-expect" | "unsafe-sites" | "hot-path-alloc" | "panic-free"
                | "determinism-cone" | "no-blocking-cone" => {
                    let value = value.split('#').next().unwrap_or("").trim();
                    let value: usize = value.parse().map_err(|_| {
                        format!("baseline line {lineno}: value is not a non-negative integer")
                    })?;
                    let table = match section.as_str() {
                        "unwrap-expect" => &mut baseline.unwrap_expect,
                        "unsafe-sites" => &mut baseline.unsafe_sites,
                        "hot-path-alloc" => &mut baseline.hot_path_alloc,
                        "determinism-cone" => &mut baseline.determinism_cone,
                        "no-blocking-cone" => &mut baseline.no_blocking_cone,
                        _ => &mut baseline.panic_free,
                    };
                    if table.insert(key.clone(), value).is_some() {
                        return Err(format!("baseline line {lineno}: duplicate key `{key}`"));
                    }
                }
                "hot-path-roots" | "panic-free-roots" | "determinism-roots" | "no-block-roots" => {
                    let Some(s) = value
                        .strip_prefix('"')
                        .and_then(|v| v.split('"').next())
                        .filter(|s| !s.is_empty())
                    else {
                        return Err(format!(
                            "baseline line {lineno}: root value must be a non-empty quoted \
                             string, got `{value}`"
                        ));
                    };
                    if section != "panic-free-roots" {
                        if s.contains(' ') {
                            return Err(format!(
                                "baseline line {lineno}: root `{s}` in [{section}] must be a \
                                 bare fn path (no flags)"
                            ));
                        }
                        let table = match section.as_str() {
                            "hot-path-roots" => &mut baseline.hot_path_roots,
                            "determinism-roots" => &mut baseline.determinism_roots,
                            _ => &mut baseline.no_block_roots,
                        };
                        if table.insert(key.clone(), s.to_string()).is_some() {
                            return Err(format!("baseline line {lineno}: duplicate key `{key}`"));
                        }
                    } else {
                        let (pattern, index_strict) = match s.split_once(' ') {
                            None => (s.to_string(), false),
                            Some((p, "+index")) => (p.to_string(), true),
                            Some((_, flag)) => {
                                return Err(format!(
                                    "baseline line {lineno}: unknown panic-free root flag \
                                     `{flag}` (recognised: +index)"
                                ));
                            }
                        };
                        let spec = RootSpec {
                            pattern,
                            index_strict,
                        };
                        if baseline
                            .panic_free_roots
                            .insert(key.clone(), spec)
                            .is_some()
                        {
                            return Err(format!("baseline line {lineno}: duplicate key `{key}`"));
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "baseline line {lineno}: unknown table `[{other}]` (recognised: \
                         [unwrap-expect], [unsafe-sites], [hot-path-alloc], \
                         [hot-path-roots], [panic-free-roots], [panic-free], \
                         [determinism-roots], [determinism-cone], [no-block-roots], \
                         [no-blocking-cone])"
                    ));
                }
            }
        }
        Ok(baseline)
    }

    /// Serialises back to the same TOML subset `parse` accepts.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Ratchet baselines, maintained by `cargo run -p optinter-lint -- update-baseline`.\n\
             # Per-crate ceilings on `.unwrap()` / `.expect(` sites ([unwrap-expect]),\n\
             # `unsafe` sites ([unsafe-sites], which must also pass the unsafe-confinement\n\
             # allowlist + SAFETY-comment rule), and unwaived allocation sites inside the\n\
             # derived hot-path fn set ([hot-path-alloc]), all counted in non-test code.\n\
             # [hot-path-roots] and\n\
             # [panic-free-roots] declare the reachability entry points (DESIGN.md \u{a7}12);\n\
             # [panic-free] ratchets unwaived panic sites reachable from each root.\n\
             # Counts may only decrease; raising a ceiling requires `--allow-raise` or a\n\
             # hand edit in the same PR that adds the site, which is the review hook.\n\
             \n[unwrap-expect]\n",
        );
        for (k, v) in &self.unwrap_expect {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out.push_str("\n[unsafe-sites]\n");
        for (k, v) in &self.unsafe_sites {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out.push_str("\n[hot-path-alloc]\n");
        for (k, v) in &self.hot_path_alloc {
            out.push_str(&format!("{k} = {v}\n"));
        }
        if !self.hot_path_roots.is_empty() {
            out.push_str("\n[hot-path-roots]\n");
            for (k, v) in &self.hot_path_roots {
                out.push_str(&format!("{k} = \"{v}\"\n"));
            }
        }
        if !self.panic_free_roots.is_empty() {
            out.push_str("\n[panic-free-roots]\n");
            for (k, v) in &self.panic_free_roots {
                let flag = if v.index_strict { " +index" } else { "" };
                out.push_str(&format!("{k} = \"{}{flag}\"\n", v.pattern));
            }
        }
        if !self.panic_free.is_empty() {
            out.push_str("\n[panic-free]\n");
            for (k, v) in &self.panic_free {
                out.push_str(&format!("{k} = {v}\n"));
            }
        }
        if !self.determinism_roots.is_empty() {
            out.push_str("\n[determinism-roots]\n");
            for (k, v) in &self.determinism_roots {
                out.push_str(&format!("{k} = \"{v}\"\n"));
            }
        }
        if !self.determinism_cone.is_empty() {
            out.push_str("\n[determinism-cone]\n");
            for (k, v) in &self.determinism_cone {
                out.push_str(&format!("{k} = {v}\n"));
            }
        }
        if !self.no_block_roots.is_empty() {
            out.push_str("\n[no-block-roots]\n");
            for (k, v) in &self.no_block_roots {
                out.push_str(&format!("{k} = \"{v}\"\n"));
            }
        }
        if !self.no_blocking_cone.is_empty() {
            out.push_str("\n[no-blocking-cone]\n");
            for (k, v) in &self.no_blocking_cone {
                out.push_str(&format!("{k} = {v}\n"));
            }
        }
        out
    }

    /// Compares observed counts against the ceilings. Returns one message
    /// per violation: a crate above its ceiling, or a crate with sites but
    /// no baseline entry at all.
    pub fn check(
        &self,
        unwrap_expect: &BTreeMap<String, usize>,
        hot_path_alloc: &BTreeMap<String, usize>,
    ) -> Vec<String> {
        let mut problems = check_table(
            "panic-ratchet",
            "crate",
            &self.unwrap_expect,
            unwrap_expect,
            "unwrap/expect sites",
            "handle the error or, if genuinely unreachable, raise the ceiling by hand in \
             lint-baseline.toml with justification in the PR",
        );
        problems.extend(check_table(
            "hot-path-alloc",
            "crate",
            &self.hot_path_alloc,
            hot_path_alloc,
            "allocation sites in hot-path fns",
            "reuse scratch buffers (Workspace / `_into` convention), waive genuinely \
             non-allocating matches, or raise the ceiling by hand in lint-baseline.toml \
             with justification in the PR",
        ));
        problems
    }

    /// Compares observed per-crate `unsafe` site counts against
    /// `[unsafe-sites]`.
    pub fn check_unsafe_sites(&self, observed: &BTreeMap<String, usize>) -> Vec<String> {
        check_table(
            "unsafe-sites",
            "crate",
            &self.unsafe_sites,
            observed,
            "`unsafe` sites",
            "keep unsafe confined to the audited kernel modules; if the new site is \
             justified, raise the ceiling with `update-baseline --allow-raise` (or a hand \
             edit) in the same PR so the reviewer sees it",
        )
    }

    /// Compares per-root panic-free counts against `[panic-free]`.
    pub fn check_panic_free(&self, observed: &BTreeMap<String, usize>) -> Vec<String> {
        check_table(
            "panic-free",
            "root",
            &self.panic_free,
            observed,
            "reachable unwaived panic sites",
            "return a typed error instead, or waive sites that are unreachable by \
             construction with `// lint: allow(panic-free, reason=\"...\")`",
        )
    }

    /// Compares per-root determinism-violation counts against
    /// `[determinism-cone]`.
    pub fn check_determinism_cone(&self, observed: &BTreeMap<String, usize>) -> Vec<String> {
        check_table(
            "determinism-cone",
            "root",
            &self.determinism_cone,
            observed,
            "reachable unwaived determinism violations",
            "thread the seeded RNG / remove the clock read / sort before iterating, or \
             waive an order-neutral site with \
             `// lint: allow(determinism-cone, reason=\"...\")`",
        )
    }

    /// Compares per-root blocking-site counts against `[no-blocking-cone]`.
    pub fn check_no_blocking_cone(&self, observed: &BTreeMap<String, usize>) -> Vec<String> {
        check_table(
            "no-blocking-cone",
            "root",
            &self.no_blocking_cone,
            observed,
            "reachable unwaived blocking sites",
            "keep the serving path lock-free (move the blocking call off the scoring \
             cone), or waive a declared hand-off site with \
             `// lint: allow(no-blocking-cone, reason=\"...\")`",
        )
    }
}

fn check_table(
    rule: &str,
    unit: &str,
    ceilings: &BTreeMap<String, usize>,
    observed: &BTreeMap<String, usize>,
    what: &str,
    advice: &str,
) -> Vec<String> {
    let mut problems = Vec::new();
    for (key, &count) in observed {
        match ceilings.get(key) {
            Some(&ceiling) if count > ceiling => problems.push(format!(
                "[{rule}] {unit} `{key}` has {count} {what} in non-test code, above the \
                 baseline ceiling of {ceiling}; {advice}"
            )),
            None if count > 0 => problems.push(format!(
                "[{rule}] {unit} `{key}` has {count} {what} but no entry in \
                 lint-baseline.toml; run `cargo run -p optinter-lint -- update-baseline` \
                 and commit the result"
            )),
            _ => {}
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_toml() {
        let mut b = Baseline::default();
        b.unwrap_expect.insert("core".to_string(), 3);
        b.unwrap_expect.insert("data".to_string(), 0);
        b.unsafe_sites.insert("tensor".to_string(), 48);
        b.unsafe_sites.insert("nn".to_string(), 0);
        b.hot_path_alloc.insert("nn".to_string(), 0);
        b.hot_path_alloc.insert("models".to_string(), 7);
        b.hot_path_roots.insert(
            "serve-score".to_string(),
            "serve::scorer::FrozenScorer::score_into".to_string(),
        );
        b.panic_free_roots.insert(
            "artifact-decode".to_string(),
            RootSpec {
                pattern: "serve::artifact::FrozenModel::from_bytes".to_string(),
                index_strict: true,
            },
        );
        b.panic_free_roots.insert(
            "serve-score".to_string(),
            RootSpec {
                pattern: "serve::scorer::FrozenScorer::score_into".to_string(),
                index_strict: false,
            },
        );
        b.panic_free.insert("serve-score".to_string(), 0);
        b.panic_free.insert("artifact-decode".to_string(), 2);
        b.determinism_roots.insert(
            "optinter-train".to_string(),
            "core::net::OptInterNet::train_batch".to_string(),
        );
        b.determinism_cone.insert("optinter-train".to_string(), 0);
        b.no_block_roots.insert(
            "serve-score".to_string(),
            "serve::scorer::FrozenScorer::score_into".to_string(),
        );
        b.no_blocking_cone.insert("serve-score".to_string(), 0);
        let text = b.to_toml();
        assert_eq!(Baseline::parse(&text).expect("parse"), b);
    }

    #[test]
    fn cone_tables_parse_and_check() {
        let b = Baseline::parse(
            "[determinism-roots]\nt = \"m::train\"\n\n[determinism-cone]\nt = 0\n\n\
             [no-block-roots]\ns = \"m::score\"\n\n[no-blocking-cone]\ns = 0\n",
        )
        .expect("parse");
        assert_eq!(b.determinism_roots["t"], "m::train");
        assert_eq!(b.no_block_roots["s"], "m::score");
        let mut observed = BTreeMap::new();
        observed.insert("t".to_string(), 0);
        assert!(b.check_determinism_cone(&observed).is_empty());
        observed.insert("t".to_string(), 2);
        let problems = b.check_determinism_cone(&observed);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("determinism-cone"), "{problems:?}");
        let mut blocks = BTreeMap::new();
        blocks.insert("s".to_string(), 1);
        let problems = b.check_no_blocking_cone(&blocks);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("no-blocking-cone"), "{problems:?}");
        // Root tables reject flags — only panic-free-roots takes `+index`.
        assert!(Baseline::parse("[determinism-roots]\nt = \"m::f +index\"").is_err());
        assert!(Baseline::parse("[no-block-roots]\ns = 3").is_err());
    }

    #[test]
    fn check_unsafe_sites_flags_overages_and_missing_entries() {
        let mut b = Baseline::default();
        b.unsafe_sites.insert("tensor".to_string(), 2);
        let mut observed = BTreeMap::new();
        observed.insert("tensor".to_string(), 3);
        observed.insert("serve".to_string(), 1);
        observed.insert("core".to_string(), 0);
        let problems = b.check_unsafe_sites(&observed);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(
            problems.iter().any(|p| p.contains("`tensor` has 3")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("`serve`") && p.contains("no entry")),
            "{problems:?}"
        );
    }

    #[test]
    fn roots_tables_are_omitted_when_empty() {
        let b = Baseline::default();
        let text = b.to_toml();
        // The header comment names every table; only emitted table headers
        // start at column 0.
        assert!(!text.contains("\n[hot-path-roots]"));
        assert!(!text.contains("\n[panic-free-roots]"));
        assert!(!text.contains("\n[panic-free]"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[unwrap-expect\ncore = 1").is_err());
        assert!(Baseline::parse("[unwrap-expect]\ncore = many").is_err());
        assert!(Baseline::parse("[other]\ncore = 1").is_err());
        assert!(Baseline::parse("[unwrap-expect]\ncore = 1\ncore = 2").is_err());
        assert!(Baseline::parse("[hot-path-alloc]\nnn = 0\nnn = 1").is_err());
        // Root tables demand quoted strings, panic-free demands integers.
        assert!(Baseline::parse("[hot-path-roots]\na = 3").is_err());
        assert!(Baseline::parse("[hot-path-roots]\na = \"\"").is_err());
        assert!(Baseline::parse("[hot-path-roots]\na = \"x y\"").is_err());
        assert!(Baseline::parse("[panic-free-roots]\na = \"p +wat\"").is_err());
        assert!(Baseline::parse("[panic-free]\na = \"x\"").is_err());
        assert!(Baseline::parse("[panic-free-roots]\na = \"p\"\na = \"q\"").is_err());
    }

    #[test]
    fn index_flag_parses() {
        let b = Baseline::parse("[panic-free-roots]\nd = \"m::f +index\"\ns = \"m::g\"")
            .expect("parse");
        assert!(b.panic_free_roots["d"].index_strict);
        assert_eq!(b.panic_free_roots["d"].pattern, "m::f");
        assert!(!b.panic_free_roots["s"].index_strict);
    }

    #[test]
    fn check_flags_increases_and_missing_entries_only() {
        let b = Baseline::parse("[unwrap-expect]\ncore = 2\ndata = 1\n").expect("parse");
        let mut observed = BTreeMap::new();
        observed.insert("core".to_string(), 2); // at ceiling: fine
        observed.insert("data".to_string(), 0); // below: fine
        assert!(b.check(&observed, &BTreeMap::new()).is_empty());
        observed.insert("core".to_string(), 3); // above: flagged
        observed.insert("nn".to_string(), 1); // missing entry: flagged
        let problems = b.check(&observed, &BTreeMap::new());
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn hot_path_alloc_table_is_checked_independently() {
        let b = Baseline::parse("[unwrap-expect]\nnn = 1\n\n[hot-path-alloc]\nnn = 0\n")
            .expect("parse");
        let mut unwraps = BTreeMap::new();
        unwraps.insert("nn".to_string(), 1);
        let mut allocs = BTreeMap::new();
        allocs.insert("nn".to_string(), 0);
        assert!(b.check(&unwraps, &allocs).is_empty());
        allocs.insert("nn".to_string(), 2);
        let problems = b.check(&unwraps, &allocs);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("hot-path-alloc"), "{problems:?}");
    }

    #[test]
    fn panic_free_ratchet_flags_per_root() {
        let b = Baseline::parse("[panic-free-roots]\ns = \"m::f\"\n\n[panic-free]\ns = 0\n")
            .expect("parse");
        let mut observed = BTreeMap::new();
        observed.insert("s".to_string(), 0);
        assert!(b.check_panic_free(&observed).is_empty());
        observed.insert("s".to_string(), 1);
        let problems = b.check_panic_free(&observed);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("panic-free"), "{problems:?}");
        // A root with sites but no ceiling entry is flagged too.
        let mut extra = BTreeMap::new();
        extra.insert("new-root".to_string(), 2);
        assert_eq!(b.check_panic_free(&extra).len(), 1);
    }
}
