//! The panic-ratchet baseline: committed per-crate ceilings on
//! `.unwrap()` / `.expect(` counts that may only go down.
//!
//! Stored as `lint-baseline.toml` at the workspace root. We parse the tiny
//! TOML subset we emit ourselves (one `[unwrap-expect]` table of
//! `key = integer` lines, `#` comments) rather than pulling in a TOML
//! crate — the linter is dependency-free by design.

use std::collections::BTreeMap;

/// Per-crate unwrap/expect ceilings, keyed by crate key (`tensor`, `nn`,
/// ..., `root`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub unwrap_expect: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the `lint-baseline.toml` subset. Errors carry the offending
    /// line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut unwrap_expect = BTreeMap::new();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("baseline line {lineno}: unterminated table header"));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "baseline line {lineno}: expected `key = integer`, got `{line}`"
                ));
            };
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value.trim().parse().map_err(|_| {
                format!("baseline line {lineno}: value is not a non-negative integer")
            })?;
            match section.as_str() {
                "unwrap-expect" => {
                    if unwrap_expect.insert(key.clone(), value).is_some() {
                        return Err(format!("baseline line {lineno}: duplicate key `{key}`"));
                    }
                }
                other => {
                    return Err(format!(
                        "baseline line {lineno}: unknown table `[{other}]` \
                         (only [unwrap-expect] is recognised)"
                    ));
                }
            }
        }
        Ok(Self { unwrap_expect })
    }

    /// Serialises back to the same TOML subset `parse` accepts.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Panic-ratchet baseline, maintained by `cargo run -p optinter-lint -- update-baseline`.\n\
             # Per-crate ceilings on `.unwrap()` / `.expect(` sites in non-test code.\n\
             # Counts may only decrease; raising a ceiling requires editing this file\n\
             # by hand in the same PR that adds the panic site, which is the review hook.\n\
             \n[unwrap-expect]\n",
        );
        for (k, v) in &self.unwrap_expect {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out
    }

    /// Compares observed counts against the ceilings. Returns one message
    /// per violation: a crate above its ceiling, or a crate with panics but
    /// no baseline entry at all.
    pub fn check(&self, observed: &BTreeMap<String, usize>) -> Vec<String> {
        let mut problems = Vec::new();
        for (krate, &count) in observed {
            match self.unwrap_expect.get(krate) {
                Some(&ceiling) if count > ceiling => problems.push(format!(
                    "[panic-ratchet] crate `{krate}` has {count} unwrap/expect sites in \
                     non-test code, above the baseline ceiling of {ceiling}; handle the \
                     error or, if genuinely unreachable, raise the ceiling by hand in \
                     lint-baseline.toml with justification in the PR"
                )),
                None if count > 0 => problems.push(format!(
                    "[panic-ratchet] crate `{krate}` has {count} unwrap/expect sites but \
                     no entry in lint-baseline.toml; run `cargo run -p optinter-lint -- \
                     update-baseline` and commit the result"
                )),
                _ => {}
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_toml() {
        let mut b = Baseline::default();
        b.unwrap_expect.insert("core".to_string(), 3);
        b.unwrap_expect.insert("data".to_string(), 0);
        let text = b.to_toml();
        assert_eq!(Baseline::parse(&text).expect("parse"), b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[unwrap-expect\ncore = 1").is_err());
        assert!(Baseline::parse("[unwrap-expect]\ncore = many").is_err());
        assert!(Baseline::parse("[other]\ncore = 1").is_err());
        assert!(Baseline::parse("[unwrap-expect]\ncore = 1\ncore = 2").is_err());
    }

    #[test]
    fn check_flags_increases_and_missing_entries_only() {
        let b = Baseline::parse("[unwrap-expect]\ncore = 2\ndata = 1\n").expect("parse");
        let mut observed = BTreeMap::new();
        observed.insert("core".to_string(), 2); // at ceiling: fine
        observed.insert("data".to_string(), 0); // below: fine
        assert!(b.check(&observed).is_empty());
        observed.insert("core".to_string(), 3); // above: flagged
        observed.insert("nn".to_string(), 1); // missing entry: flagged
        let problems = b.check(&observed);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }
}
