//! The ratchet baselines: committed per-crate ceilings that may only go
//! down.
//!
//! Two tables live in `lint-baseline.toml` at the workspace root:
//! `[unwrap-expect]` ceilings on `.unwrap()` / `.expect(` counts and
//! `[hot-path-alloc]` ceilings on unwaived allocation sites inside the
//! hot-path function set (see `rules::is_hot_fn`). We parse the tiny TOML
//! subset we emit ourselves (`[table]` headers, `key = integer` lines, `#`
//! comments) rather than pulling in a TOML crate — the linter is
//! dependency-free by design.

use std::collections::BTreeMap;

/// Per-crate ceilings, keyed by crate key (`tensor`, `nn`, ..., `root`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub unwrap_expect: BTreeMap<String, usize>,
    pub hot_path_alloc: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the `lint-baseline.toml` subset. Errors carry the offending
    /// line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut baseline = Baseline::default();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("baseline line {lineno}: unterminated table header"));
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "baseline line {lineno}: expected `key = integer`, got `{line}`"
                ));
            };
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value.trim().parse().map_err(|_| {
                format!("baseline line {lineno}: value is not a non-negative integer")
            })?;
            let table = match section.as_str() {
                "unwrap-expect" => &mut baseline.unwrap_expect,
                "hot-path-alloc" => &mut baseline.hot_path_alloc,
                other => {
                    return Err(format!(
                        "baseline line {lineno}: unknown table `[{other}]` (recognised: \
                         [unwrap-expect], [hot-path-alloc])"
                    ));
                }
            };
            if table.insert(key.clone(), value).is_some() {
                return Err(format!("baseline line {lineno}: duplicate key `{key}`"));
            }
        }
        Ok(baseline)
    }

    /// Serialises back to the same TOML subset `parse` accepts.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Ratchet baselines, maintained by `cargo run -p optinter-lint -- update-baseline`.\n\
             # Per-crate ceilings on `.unwrap()` / `.expect(` sites ([unwrap-expect]) and on\n\
             # unwaived allocation sites inside hot-path fns ([hot-path-alloc]), both counted\n\
             # in non-test code. Counts may only decrease; raising a ceiling requires editing\n\
             # this file by hand in the same PR that adds the site, which is the review hook.\n\
             \n[unwrap-expect]\n",
        );
        for (k, v) in &self.unwrap_expect {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out.push_str("\n[hot-path-alloc]\n");
        for (k, v) in &self.hot_path_alloc {
            out.push_str(&format!("{k} = {v}\n"));
        }
        out
    }

    /// Compares observed counts against the ceilings. Returns one message
    /// per violation: a crate above its ceiling, or a crate with sites but
    /// no baseline entry at all.
    pub fn check(
        &self,
        unwrap_expect: &BTreeMap<String, usize>,
        hot_path_alloc: &BTreeMap<String, usize>,
    ) -> Vec<String> {
        let mut problems = check_table(
            "panic-ratchet",
            &self.unwrap_expect,
            unwrap_expect,
            "unwrap/expect sites",
            "handle the error or, if genuinely unreachable, raise the ceiling by hand in \
             lint-baseline.toml with justification in the PR",
        );
        problems.extend(check_table(
            "hot-path-alloc",
            &self.hot_path_alloc,
            hot_path_alloc,
            "allocation sites in hot-path fns",
            "reuse scratch buffers (Workspace / `_into` convention), waive genuinely \
             non-allocating matches, or raise the ceiling by hand in lint-baseline.toml \
             with justification in the PR",
        ));
        problems
    }
}

fn check_table(
    rule: &str,
    ceilings: &BTreeMap<String, usize>,
    observed: &BTreeMap<String, usize>,
    what: &str,
    advice: &str,
) -> Vec<String> {
    let mut problems = Vec::new();
    for (krate, &count) in observed {
        match ceilings.get(krate) {
            Some(&ceiling) if count > ceiling => problems.push(format!(
                "[{rule}] crate `{krate}` has {count} {what} in non-test code, above the \
                 baseline ceiling of {ceiling}; {advice}"
            )),
            None if count > 0 => problems.push(format!(
                "[{rule}] crate `{krate}` has {count} {what} but no entry in \
                 lint-baseline.toml; run `cargo run -p optinter-lint -- update-baseline` \
                 and commit the result"
            )),
            _ => {}
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_toml() {
        let mut b = Baseline::default();
        b.unwrap_expect.insert("core".to_string(), 3);
        b.unwrap_expect.insert("data".to_string(), 0);
        b.hot_path_alloc.insert("nn".to_string(), 0);
        b.hot_path_alloc.insert("models".to_string(), 7);
        let text = b.to_toml();
        assert_eq!(Baseline::parse(&text).expect("parse"), b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[unwrap-expect\ncore = 1").is_err());
        assert!(Baseline::parse("[unwrap-expect]\ncore = many").is_err());
        assert!(Baseline::parse("[other]\ncore = 1").is_err());
        assert!(Baseline::parse("[unwrap-expect]\ncore = 1\ncore = 2").is_err());
        assert!(Baseline::parse("[hot-path-alloc]\nnn = 0\nnn = 1").is_err());
    }

    #[test]
    fn check_flags_increases_and_missing_entries_only() {
        let b = Baseline::parse("[unwrap-expect]\ncore = 2\ndata = 1\n").expect("parse");
        let mut observed = BTreeMap::new();
        observed.insert("core".to_string(), 2); // at ceiling: fine
        observed.insert("data".to_string(), 0); // below: fine
        assert!(b.check(&observed, &BTreeMap::new()).is_empty());
        observed.insert("core".to_string(), 3); // above: flagged
        observed.insert("nn".to_string(), 1); // missing entry: flagged
        let problems = b.check(&observed, &BTreeMap::new());
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn hot_path_alloc_table_is_checked_independently() {
        let b = Baseline::parse("[unwrap-expect]\nnn = 1\n\n[hot-path-alloc]\nnn = 0\n")
            .expect("parse");
        let mut unwraps = BTreeMap::new();
        unwraps.insert("nn".to_string(), 1);
        let mut allocs = BTreeMap::new();
        allocs.insert("nn".to_string(), 0);
        assert!(b.check(&unwraps, &allocs).is_empty());
        allocs.insert("nn".to_string(), 2);
        let problems = b.check(&unwraps, &allocs);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("hot-path-alloc"), "{problems:?}");
    }
}
