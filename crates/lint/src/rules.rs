//! The four lint rules, run over the token stream of one file at a time.
//!
//! Rules are heuristic but *sound against the failure mode they police*:
//!
//! 1. **hash-iter** — iterating a `HashMap`/`HashSet` feeds nondeterministic
//!    order into whatever consumes it; with float accumulation downstream
//!    that breaks the bit-determinism contract of DESIGN.md §6. Iteration
//!    sites must either not exist or carry an explicit, reasoned waiver.
//! 2. **unsafe-confinement** — `unsafe` may only appear in the audited
//!    kernel modules, and every occurrence needs a nearby `SAFETY:` note.
//! 3. **wall-clock** — time and OS entropy make runs unreproducible, so
//!    they are confined to the bench crate.
//! 4. **panic-ratchet** — `.unwrap()`/`.expect(` counts per crate may not
//!    grow past the committed baseline (`lint-baseline.toml`).
//!
//! Suppression convention (documented in DESIGN.md §7): a comment
//! `// lint: allow(<rule>, reason="...")` on the offending line or the line
//! directly above waives rules 1 and 3 at that site. A waiver without a
//! reason is itself an error — the reason is the audit trail.

use crate::lexer::{Tok, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Rule identifiers; `Display` gives the names used in diagnostics and in
/// `lint: allow(...)` directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    HashIter,
    UnsafeConfinement,
    WallClock,
    PanicRatchet,
    Directive,
    Lex,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::UnsafeConfinement => "unsafe-confinement",
            Rule::WallClock => "wall-clock",
            Rule::PanicRatchet => "panic-ratchet",
            Rule::Directive => "lint-directive",
            Rule::Lex => "lex",
        }
    }
}

/// One finding, formatted as `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// What a file is, as far as rule scoping is concerned.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/data/src/vocab.rs`.
    pub rel_path: String,
    /// Short crate key: `tensor`, `nn`, `core`, `models`, `metrics`,
    /// `data`, `bench`, `lint`, or `root` for the top-level crate.
    pub crate_key: String,
    /// Whole file is test code (integration tests, proptest modules).
    pub is_test_file: bool,
}

/// Crates whose non-test code the hash-iter rule applies to.
const HASH_ITER_CRATES: &[&str] = &["tensor", "nn", "core", "models", "metrics", "data"];

/// Modules allowed to contain `unsafe` (with SAFETY comments).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/tensor/src/pool.rs", "crates/nn/src/embedding.rs"];

/// Crate keys exempt from the wall-clock/entropy rule.
const WALL_CLOCK_EXEMPT: &[&str] = &["bench"];

/// Identifiers that reach for wall-clock time or OS entropy.
const WALL_CLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "OsRng",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Methods that iterate a hash container.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Maximum number of non-comment tokens the SAFETY-comment search walks
/// back over before giving up (covers attributes and `pub unsafe fn` heads
/// between the comment and the `unsafe` token).
const SAFETY_LOOKBACK_TOKENS: usize = 30;

/// Per-file analysis output: diagnostics plus the panic-ratchet tally.
pub struct FileAnalysis {
    pub diagnostics: Vec<Diagnostic>,
    /// `.unwrap()` / `.expect(` sites in non-test code.
    pub unwrap_expect_count: usize,
}

/// Runs every per-file rule. (The ratchet comparison against the baseline
/// happens at workspace level, from the summed counts.)
pub fn analyze_file(meta: &FileMeta, tokens: &[Token]) -> FileAnalysis {
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.tok, Tok::Comment(_)))
        .map(|(i, _)| i)
        .collect();
    let test_mask = test_mask(tokens, &code, meta.is_test_file);
    let allows = collect_allows(meta, tokens);
    let mut diagnostics = allows.errors;

    hash_iter_rule(
        meta,
        tokens,
        &code,
        &test_mask,
        &allows.suppressed,
        &mut diagnostics,
    );
    unsafe_rule(meta, tokens, &code, &mut diagnostics);
    wall_clock_rule(meta, tokens, &code, &allows.suppressed, &mut diagnostics);
    let unwrap_expect_count = count_unwrap_expect(tokens, &code, &test_mask);

    FileAnalysis {
        diagnostics,
        unwrap_expect_count,
    }
}

/// Marks every token that lives inside `#[cfg(test)]` / `#[test]` items.
fn test_mask(tokens: &[Token], code: &[usize], whole_file: bool) -> Vec<bool> {
    let mut mask = vec![whole_file; tokens.len()];
    if whole_file {
        return mask;
    }
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut ci = 0;
    while ci < n {
        if *tok(ci) != Tok::Punct('#') || ci + 1 >= n || *tok(ci + 1) != Tok::Punct('[') {
            ci += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching ']'.
        let attr_start = ci;
        let mut depth = 0usize;
        let mut j = ci + 1;
        let mut is_test_attr = false;
        let mut attr_head: Option<&str> = None;
        while j < n {
            match tok(j) {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(name) => {
                    if attr_head.is_none() {
                        attr_head = Some(name);
                    }
                    // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`,
                    // but not `#[cfg(feature = "test-utils")]` — the bare
                    // ident `test` only appears as a predicate.
                    if name == "test" && matches!(attr_head, Some("test") | Some("cfg")) {
                        is_test_attr = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            ci = j + 1;
            continue;
        }
        // Skip any further attributes, then span the annotated item: up to
        // the matching '}' of its first top-level brace, or a ';' for
        // brace-less items (`#[cfg(test)] use ...;`, `mod tests;`).
        let mut k = j + 1;
        while k + 1 < n && *tok(k) == Tok::Punct('#') && *tok(k + 1) == Tok::Punct('[') {
            let mut d = 0usize;
            k += 1;
            while k < n {
                match tok(k) {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0usize;
        let end;
        loop {
            if k >= n {
                end = n - 1;
                break;
            }
            match tok(k) {
                Tok::Punct('{') => brace_depth += 1,
                Tok::Punct('}') => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if brace_depth == 0 {
                        end = k;
                        break;
                    }
                }
                Tok::Punct(';') if brace_depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for &ti in &code[attr_start..=end.min(n - 1)] {
            mask[ti] = true;
        }
        ci = end + 1;
    }
    mask
}

/// Parsed `lint: allow` directives: rule name -> set of lines covered
/// (the directive's own line and the line after it).
struct Allows {
    suppressed: BTreeMap<&'static str, BTreeSet<u32>>,
    errors: Vec<Diagnostic>,
}

fn collect_allows(meta: &FileMeta, tokens: &[Token]) -> Allows {
    let mut suppressed: BTreeMap<&'static str, BTreeSet<u32>> = BTreeMap::new();
    let mut errors = Vec::new();
    for t in tokens {
        let Tok::Comment(text) = &t.tok else { continue };
        // A directive must START the comment (`// lint: allow(...)`); prose
        // that merely mentions the convention mid-sentence is not one.
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            errors.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: t.line,
                rule: Rule::Directive,
                message: "malformed lint directive; expected `lint: allow(<rule>, reason=\"...\")`"
                    .to_string(),
            });
            continue;
        };
        let mut parts = args.splitn(2, ',');
        let rule_name = parts.next().unwrap_or("").trim();
        let reason = parts.next().unwrap_or("").trim();
        let known = match rule_name {
            "hash-iter" => Some(Rule::HashIter.name()),
            "wall-clock" => Some(Rule::WallClock.name()),
            _ => None,
        };
        let Some(rule_key) = known else {
            errors.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: t.line,
                rule: Rule::Directive,
                message: format!(
                    "unknown or non-waivable rule `{rule_name}` in lint directive \
                     (waivable: hash-iter, wall-clock)"
                ),
            });
            continue;
        };
        let has_reason = reason
            .strip_prefix("reason=\"")
            .map(|r| r.trim_end_matches('"').trim())
            .is_some_and(|r| !r.is_empty());
        if !has_reason {
            errors.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: t.line,
                rule: Rule::Directive,
                message: format!(
                    "lint: allow({rule_key}) without a reason — add reason=\"...\" \
                     explaining why the site is order-independent"
                ),
            });
            continue;
        }
        let entry = suppressed.entry(rule_key).or_default();
        entry.insert(t.line);
        entry.insert(t.line + 1);
    }
    Allows { suppressed, errors }
}

fn is_suppressed(allows: &BTreeMap<&'static str, BTreeSet<u32>>, rule: Rule, line: u32) -> bool {
    allows
        .get(rule.name())
        .is_some_and(|lines| lines.contains(&line))
}

/// Code-index ranges (inclusive, in `code` space) of every `fn` body.
/// Where-clauses cannot contain `{`, so the first brace after the `fn`
/// keyword opens the body; a `;` first means a bodiless declaration.
fn fn_spans(tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut spans = Vec::new();
    for ci in 0..n {
        if !matches!(tok(ci), Tok::Ident(s) if s == "fn") {
            continue;
        }
        // `fn` must introduce a named item — this skips `Fn(...)` bounds
        // and `fn(...)` pointer types, which have no name after `fn`.
        if ci + 1 >= n || !matches!(tok(ci + 1), Tok::Ident(_)) {
            continue;
        }
        let mut j = ci + 1;
        let mut open = None;
        while j < n {
            match tok(j) {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut k = open;
        while k < n {
            match tok(k) {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((ci, k.min(n - 1)));
    }
    spans
}

/// Identifiers bound (or typed) as `HashMap`/`HashSet`, each with the span
/// of its enclosing fn (`None` = item scope: struct fields, statics).
/// Scoping to the enclosing fn stops a `counts: &HashMap` parameter in one
/// function from tainting a `counts: Vec<HashMap>` local in another; within
/// a function the tracking is still flow-insensitive, which only
/// over-approximates (stricter lint, never unsound).
struct HashBindings {
    by_name: BTreeMap<String, Vec<Option<(usize, usize)>>>,
}

impl HashBindings {
    fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Is `name` hash-bound at code index `site`?
    fn is_bound_at(&self, name: &str, site: usize) -> bool {
        self.by_name.get(name).is_some_and(|spans| {
            spans
                .iter()
                .any(|s| s.is_none_or(|(a, b)| a <= site && site <= b))
        })
    }
}

/// Collects hash-container bindings: `name: [&][mut] [path::]HashMap<...>`
/// annotations (let bindings, fn params, struct fields) and
/// `let [mut] name = HashMap::new()`-style initialisations.
fn hash_bound_idents(tokens: &[Token], code: &[usize]) -> HashBindings {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let spans = fn_spans(tokens, code);
    let innermost = |site: usize| -> Option<(usize, usize)> {
        spans
            .iter()
            .filter(|&&(a, b)| a <= site && site <= b)
            .max_by_key(|&&(a, _)| a)
            .copied()
    };
    let mut out = HashBindings {
        by_name: BTreeMap::new(),
    };
    let mut bind = |name: &str, site: usize| {
        out.by_name
            .entry(name.to_string())
            .or_default()
            .push(innermost(site));
    };
    let is_hash_ty = |name: &str| name == "HashMap" || name == "HashSet";
    for ci in 0..n {
        // Pattern A: Ident ':' <type path ending in HashMap/HashSet>
        if let Tok::Ident(name) = tok(ci) {
            if ci + 2 < n && *tok(ci + 1) == Tok::Punct(':') {
                // Skip `&`, `&&`, `mut`, lifetimes before the path.
                let mut j = ci + 2;
                while j < n {
                    match tok(j) {
                        Tok::Punct('&') | Tok::Lifetime(_) => j += 1,
                        Tok::Ident(k) if k == "mut" => j += 1,
                        _ => break,
                    }
                }
                // Walk the path `a::b::HashMap` up to `<`, `(`, etc.
                let mut last_seg: Option<&str> = None;
                while j < n {
                    match tok(j) {
                        Tok::Ident(seg) => {
                            last_seg = Some(seg);
                            j += 1;
                        }
                        Tok::Punct(':') if j + 1 < n && *tok(j + 1) == Tok::Punct(':') => {
                            j += 2;
                        }
                        _ => break,
                    }
                }
                if last_seg.is_some_and(is_hash_ty) {
                    bind(name, ci);
                }
            }
        }
        // Pattern B: `let [mut] name = [path::]Hash{Map,Set}::...`
        if *tok(ci) == Tok::Ident("let".to_string()) {
            let mut j = ci + 1;
            if j < n && *tok(j) == Tok::Ident("mut".to_string()) {
                j += 1;
            }
            let Tok::Ident(name) = tok(j) else { continue };
            if j + 1 >= n || *tok(j + 1) != Tok::Punct('=') {
                continue;
            }
            let mut k = j + 2;
            let mut last_seg: Option<&str> = None;
            while k < n {
                match tok(k) {
                    Tok::Ident(seg) => {
                        if is_hash_ty(seg) {
                            last_seg = Some(seg);
                        }
                        k += 1;
                        // Only look at the head of the initialiser.
                        if !matches!(tok(k), Tok::Punct(':')) {
                            break;
                        }
                    }
                    Tok::Punct(':') if k + 1 < n && *tok(k + 1) == Tok::Punct(':') => k += 2,
                    _ => break,
                }
            }
            if last_seg.is_some() {
                bind(name, j);
            }
        }
    }
    out
}

fn hash_iter_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    test_mask: &[bool],
    allows: &BTreeMap<&'static str, BTreeSet<u32>>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if !HASH_ITER_CRATES.contains(&meta.crate_key.as_str()) {
        return;
    }
    let bindings = hash_bound_idents(tokens, code);
    if bindings.is_empty() {
        return;
    }
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let line = |ci: usize| tokens[code[ci]].line;
    let mut report = |ci: usize, name: &str, how: &str| {
        let l = line(ci);
        if test_mask[code[ci]] || is_suppressed(allows, Rule::HashIter, l) {
            return;
        }
        diagnostics.push(Diagnostic {
            path: meta.rel_path.clone(),
            line: l,
            rule: Rule::HashIter,
            message: format!(
                "iteration over hash container `{name}` ({how}): order depends on the hash \
                 seed and can break bit-determinism; sort the keys first or waive with \
                 `// lint: allow(hash-iter, reason=\"...\")`"
            ),
        });
    };
    for ci in 0..n {
        // `name.iter()` and friends.
        if let Tok::Ident(name) = tok(ci) {
            if bindings.is_bound_at(name, ci)
                && ci + 3 < n
                && *tok(ci + 1) == Tok::Punct('.')
                && matches!(tok(ci + 2), Tok::Ident(m) if HASH_ITER_METHODS.contains(&m.as_str()))
                && *tok(ci + 3) == Tok::Punct('(')
            {
                let Tok::Ident(m) = tok(ci + 2) else {
                    unreachable!()
                };
                // Report at the receiver's line so an allow directive on
                // the line above covers a multiline method chain.
                report(ci, name, &format!(".{m}()"));
            }
        }
        // `for pat in [&][mut] name {`.
        if *tok(ci) == Tok::Ident("for".to_string()) {
            // Find the `in` belonging to this `for` (patterns cannot
            // contain the `in` keyword).
            let mut j = ci + 1;
            let mut found_in = None;
            while j < n && j - ci < 64 {
                match tok(j) {
                    Tok::Ident(k) if k == "in" => {
                        found_in = Some(j);
                        break;
                    }
                    Tok::Punct('{') | Tok::Punct(';') => break,
                    _ => j += 1,
                }
            }
            let Some(in_ci) = found_in else { continue };
            let mut k = in_ci + 1;
            while k < n {
                match tok(k) {
                    Tok::Punct('&') => k += 1,
                    Tok::Ident(m) if m == "mut" => k += 1,
                    _ => break,
                }
            }
            if let Tok::Ident(name) = tok(k) {
                if bindings.is_bound_at(name, k) && k + 1 < n && *tok(k + 1) == Tok::Punct('{') {
                    report(k, name, "for-in");
                }
            }
        }
    }
}

fn unsafe_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    diagnostics: &mut Vec<Diagnostic>,
) {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&meta.rel_path.as_str());
    for (pos, &ti) in code.iter().enumerate() {
        if tokens[ti].tok != Tok::Ident("unsafe".to_string()) {
            continue;
        }
        if !allowlisted {
            diagnostics.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: tokens[ti].line,
                rule: Rule::UnsafeConfinement,
                message: format!(
                    "`unsafe` outside the audited kernel allowlist ({}); \
                     use the safe pool APIs (Pool::for_rows and friends) or move the \
                     code into an allowlisted module",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
            continue;
        }
        // Allowlisted module: still demand a SAFETY comment close by.
        // Walk the raw token stream backwards from the `unsafe`, giving up
        // after SAFETY_LOOKBACK_TOKENS non-comment tokens.
        let mut seen_code = 0usize;
        let mut found = false;
        let mut i = ti;
        while i > 0 && seen_code < SAFETY_LOOKBACK_TOKENS {
            i -= 1;
            match &tokens[i].tok {
                Tok::Comment(text) => {
                    if text.contains("SAFETY") || text.contains("# Safety") {
                        found = true;
                        break;
                    }
                }
                _ => seen_code += 1,
            }
        }
        let _ = pos;
        if !found {
            diagnostics.push(Diagnostic {
                path: meta.rel_path.clone(),
                line: tokens[ti].line,
                rule: Rule::UnsafeConfinement,
                message: "`unsafe` without a preceding `// SAFETY:` comment justifying it"
                    .to_string(),
            });
        }
    }
}

fn wall_clock_rule(
    meta: &FileMeta,
    tokens: &[Token],
    code: &[usize],
    allows: &BTreeMap<&'static str, BTreeSet<u32>>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if WALL_CLOCK_EXEMPT.contains(&meta.crate_key.as_str()) {
        return;
    }
    for &ti in code {
        let Tok::Ident(name) = &tokens[ti].tok else {
            continue;
        };
        if !WALL_CLOCK_IDENTS.contains(&name.as_str()) {
            continue;
        }
        let l = tokens[ti].line;
        if is_suppressed(allows, Rule::WallClock, l) {
            continue;
        }
        diagnostics.push(Diagnostic {
            path: meta.rel_path.clone(),
            line: l,
            rule: Rule::WallClock,
            message: format!(
                "`{name}` reads wall-clock time or OS entropy, which makes runs \
                 unreproducible; only the bench crate may do this (or waive with \
                 `// lint: allow(wall-clock, reason=\"...\")`)"
            ),
        });
    }
}

fn count_unwrap_expect(tokens: &[Token], code: &[usize], test_mask: &[bool]) -> usize {
    let n = code.len();
    let tok = |ci: usize| &tokens[code[ci]].tok;
    let mut count = 0;
    for ci in 0..n.saturating_sub(2) {
        if *tok(ci) == Tok::Punct('.')
            && matches!(tok(ci + 1), Tok::Ident(m) if m == "unwrap" || m == "expect")
            && *tok(ci + 2) == Tok::Punct('(')
            && !test_mask[code[ci + 1]]
        {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(rel_path: &str, crate_key: &str, src: &str) -> FileAnalysis {
        let meta = FileMeta {
            rel_path: rel_path.to_string(),
            crate_key: crate_key.to_string(),
            is_test_file: false,
        };
        let tokens = lex(src).expect("fixture must lex");
        analyze_file(&meta, &tokens)
    }

    fn rules_of(a: &FileAnalysis) -> Vec<Rule> {
        a.diagnostics.iter().map(|d| d.rule).collect()
    }

    // ---- rule 1: hash-iter ------------------------------------------------

    #[test]
    fn hash_iteration_fires_on_typed_binding() {
        let src = r#"
            use std::collections::HashMap;
            pub fn f(ids: &[u32]) -> f64 {
                let mut counts: HashMap<u32, u64> = HashMap::new();
                let mut acc = 0.0;
                for (k, v) in counts.iter() { acc += *v as f64; }
                acc
            }
        "#;
        let a = analyze("crates/metrics/src/fixture.rs", "metrics", src);
        assert_eq!(rules_of(&a), vec![Rule::HashIter]);
    }

    #[test]
    fn hash_iteration_fires_on_for_in_and_values_and_params() {
        let src = r#"
            fn g(counts: &HashMap<u64, u32>) -> u64 {
                let mut s = 0;
                for (_, v) in counts { s += *v as u64; }
                s += counts.values().map(|v| *v as u64).sum::<u64>();
                s
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert_eq!(rules_of(&a), vec![Rule::HashIter, Rule::HashIter]);
    }

    #[test]
    fn hash_iteration_allows_lookup_only_use() {
        let src = r#"
            fn h(map: &HashMap<String, u32>, weights: &[(String, u32)]) -> u32 {
                let total: u32 = weights.iter().map(|(_, w)| w).sum();
                *map.get("x").unwrap_or(&total)
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn hash_iteration_respects_reasoned_allow() {
        let src = r#"
            fn f(counts: &HashMap<u32, u32>) -> Vec<u32> {
                // lint: allow(hash-iter, reason="collected then sorted")
                let mut kept: Vec<u32> = counts.iter().map(|(&k, _)| k).collect();
                kept.sort_unstable();
                kept
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn hash_iteration_allow_without_reason_is_an_error() {
        let src = r#"
            fn f(counts: &HashMap<u32, u32>) -> usize {
                // lint: allow(hash-iter)
                counts.keys().count()
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        // The directive error plus the (unsuppressed) iteration itself.
        assert!(
            rules_of(&a).contains(&Rule::Directive),
            "{:?}",
            a.diagnostics
        );
        assert!(
            rules_of(&a).contains(&Rule::HashIter),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn hash_iteration_exempts_cfg_test_modules_and_other_crates() {
        let src = r#"
            pub fn real() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                use std::collections::HashSet;
                #[test]
                fn t() {
                    let mut seen: HashSet<u32> = HashSet::new();
                    for v in seen.iter() { let _ = v; }
                }
            }
        "#;
        let a = analyze("crates/models/src/fixture.rs", "models", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        // Same source in the bench crate is out of scope entirely.
        let b = analyze("crates/bench/src/fixture.rs", "bench", src);
        assert!(b.diagnostics.is_empty());
    }

    #[test]
    fn bindings_are_scoped_to_their_fn() {
        // `counts` is a HashMap in `a` but a slice in `b`; only `a`'s use
        // sites may be flagged, and `a` has none.
        let src = r#"
            fn a(counts: &HashMap<u32, u32>) -> u32 { *counts.get(&1).unwrap_or(&0) }
            fn b(counts: &[u32]) -> u32 { counts.iter().sum() }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn struct_field_hashmaps_are_tracked_across_methods() {
        let src = r#"
            pub struct S { grads: HashMap<u32, f32> }
            impl S {
                fn sum(&self) -> f32 { self.grads.values().sum() }
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert_eq!(rules_of(&a), vec![Rule::HashIter]);
    }

    #[test]
    fn vec_of_hashmaps_is_not_flagged() {
        let src = r#"
            fn f() {
                let mut lanes: Vec<HashMap<u32, u32>> = Vec::new();
                for lane in lanes.iter_mut() { lane.insert(1, 2); }
            }
        "#;
        let a = analyze("crates/nn/src/fixture.rs", "nn", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    // ---- rule 2: unsafe-confinement --------------------------------------

    #[test]
    fn unsafe_outside_allowlist_is_an_error() {
        let src = r#"
            pub fn f(p: *mut f32) {
                // SAFETY: even a comment does not make this module audited.
                unsafe { *p = 1.0; }
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(rules_of(&a), vec![Rule::UnsafeConfinement]);
    }

    #[test]
    fn unsafe_in_allowlisted_module_needs_safety_comment() {
        let bad = r#"
            pub fn f(p: *mut f32) {
                unsafe { *p = 1.0; }
            }
        "#;
        let a = analyze("crates/tensor/src/pool.rs", "tensor", bad);
        assert_eq!(rules_of(&a), vec![Rule::UnsafeConfinement]);

        let good = r#"
            pub fn f(p: *mut f32) {
                // SAFETY: p is valid and exclusively owned by this call.
                unsafe { *p = 1.0; }
            }
        "#;
        let b = analyze("crates/tensor/src/pool.rs", "tensor", good);
        assert!(b.diagnostics.is_empty(), "{:?}", b.diagnostics);
    }

    #[test]
    fn unsafe_inside_string_or_comment_is_ignored() {
        let src = r#"
            const DOC: &str = "never write unsafe code here";
            // this comment mentions unsafe too
            pub fn f() {}
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn doc_safety_section_counts_for_unsafe_fn_decl() {
        let src = r#"
            /// Does a raw write.
            ///
            /// # Safety
            /// Caller must own the pointee exclusively.
            #[inline]
            pub unsafe fn poke(p: *mut f32) {
                // SAFETY: contract forwarded to the caller.
                unsafe { *p = 0.0 }
            }
        "#;
        let a = analyze("crates/tensor/src/pool.rs", "tensor", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    // ---- rule 3: wall-clock ----------------------------------------------

    #[test]
    fn wall_clock_fires_outside_bench_and_not_inside() {
        let src = r#"
            use std::time::Instant;
            pub fn f() -> u64 { let t = Instant::now(); t.elapsed().as_nanos() as u64 }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(
            rules_of(&a),
            vec![Rule::WallClock, Rule::WallClock],
            "{:?}",
            a.diagnostics
        );
        let b = analyze("crates/bench/src/fixture.rs", "bench", src);
        assert!(b.diagnostics.is_empty());
    }

    #[test]
    fn entropy_sources_fire_and_allow_waives() {
        let src = r#"
            pub fn seed() -> u64 {
                // lint: allow(wall-clock, reason="one-shot diagnostic id, not used in training")
                let rng = rand::rngs::OsRng;
                0
            }
        "#;
        let a = analyze("crates/data/src/fixture.rs", "data", src);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        let src_no_allow = "pub fn seed() { let _ = rand::thread_rng(); }";
        let b = analyze("crates/data/src/fixture.rs", "data", src_no_allow);
        assert_eq!(rules_of(&b), vec![Rule::WallClock]);
    }

    // ---- rule 4: panic-ratchet -------------------------------------------

    #[test]
    fn unwrap_expect_counted_outside_tests_only() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                let c = x.unwrap_or(0); // not counted
                a + b + c
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        let a = analyze("crates/core/src/fixture.rs", "core", src);
        assert_eq!(a.unwrap_expect_count, 2);
    }

    #[test]
    fn whole_test_files_count_zero() {
        let meta = FileMeta {
            rel_path: "tests/fixture.rs".to_string(),
            crate_key: "root".to_string(),
            is_test_file: true,
        };
        let tokens = lex("fn f(x: Option<u32>) -> u32 { x.unwrap() }").expect("lex");
        let a = analyze_file(&meta, &tokens);
        assert_eq!(a.unwrap_expect_count, 0);
    }
}
